"""Legacy setup shim.

The environment this repository targets may lack the ``wheel`` package, in
which case PEP 517 editable installs fail; ``pip install -e .
--no-use-pep517 --no-build-isolation`` falls back to this file.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
