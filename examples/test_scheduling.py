#!/usr/bin/env python3
"""Test scheduling: order a compact set for earliest fault detection.

Production testers abort a failing device at its first failing test, so
the *order* of the compact set sets the average test time on faulty
material.  This example extends the paper's flow by one step:

1. generate + compact tests for the RC-ladder macro (as in quickstart);
2. build the full fault x test detection matrix;
3. schedule the tests greedily (optionally IFA-likelihood weighted);
4. print the coverage growth curve.

Run:  python examples/test_scheduling.py
"""

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    detection_matrix,
    greedy_order,
)
from repro.faults import ifa_fault_dictionary
from repro.macros import get_macro
from repro.reporting import render_table
from repro.testgen import GenerationSettings, generate_tests


def main() -> None:
    macro = get_macro("rc-ladder")
    configurations = macro.test_configurations()

    # IFA-weighted dictionary: likely defects matter more.
    faults = ifa_fault_dictionary(macro.circuit,
                                  nodes=macro.standard_nodes)
    weights = {f.fault_id: f.likelihood for f in faults}
    print("fault likelihoods (IFA schematic proxies):")
    for fault in faults:
        print(f"  {fault.fault_id:>20s}  {fault.likelihood:.2f}")

    generation = generate_tests(macro.circuit, configurations, faults,
                                GenerationSettings())
    testbench = macro.testbench()
    compaction = collapse_test_set(generation, testbench,
                                   CompactionSettings(delta=0.1))
    print(f"\ncompact set: {compaction.n_compact_tests} tests for "
          f"{compaction.n_original_tests} fault-specific tests")

    detected = [t for t in generation.tests if t.detected_at_dictionary]
    matrix = detection_matrix(testbench, [t.fault for t in detected],
                              list(compaction.tests))
    plan = greedy_order(matrix, weights=weights)

    rows = []
    for position, (test, inc, cum) in enumerate(
            zip(plan.tests, plan.incremental_coverage,
                plan.cumulative_coverage), start=1):
        rows.append([position, str(test), f"{inc:.0%}", f"{cum:.0%}"])
    print(render_table(
        ["#", "test", "adds", "cumulative weighted coverage"], rows,
        title="Greedy test schedule (abort-at-first-fail optimized)"))
    print(f"\n{plan.tests_for_coverage(plan.final_coverage)} of "
          f"{len(plan.tests)} scheduled tests already reach the final "
          f"coverage of {plan.final_coverage:.0%}.")


if __name__ == "__main__":
    main()
