#!/usr/bin/env python3
"""Reproduce the paper's tps-graph study (Figs 2-4) interactively.

Computes test-parameter-sensitivity graphs of the IV-converter's THD
configuration for the bridge fault between nodes n2 and n3 at the three
impact levels the paper plots (10 kOhm, 34 kOhm, 75 kOhm), renders them
as ASCII level plots, and reports the hard/soft impact-region
classification of §3.2.

Run:  python examples/tps_graph_exploration.py [--quick]
      --quick uses a coarser grid (5x5 instead of 9x9).
"""

import argparse

from repro.faults import BridgingFault
from repro.macros import get_macro
from repro.reporting import render_tps_graph
from repro.testgen import (
    MacroTestbench,
    classify_impact_regions,
    compute_tps_graph,
    optimum_drift,
    shape_correlation,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="coarser grid for a fast run")
    args = parser.parse_args()
    points = 5 if args.quick else 9

    macro = get_macro("iv-converter")
    thd_config = [c for c in macro.test_configurations()
                  if c.name == "thd"]
    bench = MacroTestbench(macro.circuit, thd_config, macro.options)
    executor = bench.executor("thd")

    fault = BridgingFault(node_a="n2", node_b="n3", impact=10e3)
    impacts = [10e3, 34e3, 75e3]  # the paper's Figs 2, 3, 4

    graphs = []
    for impact in impacts:
        graph = compute_tps_graph(executor, fault.with_impact(impact),
                                  points_per_axis=points)
        graphs.append(graph)
        print(render_tps_graph(graph))
        print(f"  detection fraction: {graph.detection_fraction:.0%}\n")

    print("Landscape stability (paper §3.2):")
    print(f"  optimum drift 10k -> 34k: "
          f"{optimum_drift(graphs[0], graphs[1]):.3f} "
          f"(hard-region models may move)")
    print(f"  optimum drift 34k -> 75k: "
          f"{optimum_drift(graphs[1], graphs[2]):.3f} "
          f"(soft-region models are stable)")
    print(f"  shape correlation 34k <-> 75k: "
          f"{shape_correlation(graphs[1], graphs[2]):.3f}")

    print("\nAutomatic impact-region classification:")
    regions = classify_impact_regions(
        executor, fault, impacts=[5e3, 10e3, 34e3, 75e3, 150e3],
        points_per_axis=max(points - 2, 5))
    for region in regions:
        drift = ("-" if region.region == "terminal"
                 else f"{region.drift_to_next:.3f}")
        print(f"  impact {region.impact:>10.3g} ohm: {region.region:8s} "
              f"(argmin drift to next: {drift})")


if __name__ == "__main__":
    main()
