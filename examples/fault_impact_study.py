#!/usr/bin/env python3
"""Fault-impact study: critical impact levels and the pinhole model.

Two mini-experiments on the IV-converter using the DC configurations
(fast):

1. **Critical impact levels** — for a handful of bridging faults, find
   the weakest bridge resistance at which each fault's best test still
   guarantees detection (the paper's "critical impact level", §2.2).
2. **Pinhole position sweep** — reproduce the Eckersall observation the
   paper cites (Fig. 7): gate-oxide defects close to the drain are less
   detectable; the paper therefore fixes defects at 25% of the channel
   length from the drain.

Run:  python examples/fault_impact_study.py
"""

from repro.faults import BridgingFault, PinholeFault
from repro.macros import get_macro
from repro.reporting import render_table
from repro.testgen import (
    GenerationSettings,
    MacroTestbench,
    generate_test_for_fault,
)


def main() -> None:
    macro = get_macro("iv-converter")
    dc_configs = [c for c in macro.test_configurations()
                  if c.name.startswith("dc-")]
    bench = MacroTestbench(macro.circuit, dc_configs, macro.options)

    # ------------------------------------------------------------------
    # 1. critical impact levels of selected bridges
    # ------------------------------------------------------------------
    bridges = [("n2", "n3"), ("n1", "n2"), ("vout", "0"),
               ("vdd", "nbias"), ("iin", "vref")]
    rows = []
    for node_a, node_b in bridges:
        fault = BridgingFault(node_a=node_a, node_b=node_b, impact=10e3)
        generated = generate_test_for_fault(bench, fault,
                                            GenerationSettings())
        rows.append([
            fault.fault_id, generated.config_name,
            f"{generated.critical_impact / 1e3:.1f}k",
            f"{generated.sensitivity_at_critical:.3g}",
            generated.adaptation_rounds,
        ])
    print(render_table(
        ["bridging fault", "best config", "critical impact",
         "S at critical", "rounds"],
        rows, title="Critical impact levels (DC configurations only)"))
    print("Higher critical impact = fault stays detectable even as the\n"
          "short weakens; these are the 'easy' defects.\n")

    # ------------------------------------------------------------------
    # 2. pinhole detectability vs defect position (paper Fig. 7 context)
    # ------------------------------------------------------------------
    executor = bench.executor("dc-output")
    rows = []
    # A moderate shunt (50 kOhm) exposes the position effect; at the
    # dictionary impact of 2 kOhm the short is so hard that detection
    # saturates regardless of position.
    for position in (0.05, 0.1, 0.25, 0.5, 0.9):
        fault = PinholeFault(device="M6", impact=50e3, position=position)
        report = executor.sensitivity(fault, [20e-6])
        rows.append([f"{position:.0%} from drain", f"{report.value:.3g}",
                     "detected" if report.detected else "hidden"])
    print(render_table(
        ["defect position", "S_f (dc-output @ 20uA)", "verdict"],
        rows, title="Pinhole detectability vs channel position "
                    "(M6, Rs = 50 kOhm)"))
    print("The paper fixes pinholes at 25% from the drain (Fig. 7):\n"
          "drain-proximal defects couple less strongly and are the\n"
          "hardest to see, exactly as Eckersall et al. observed.")


if __name__ == "__main__":
    main()
