#!/usr/bin/env python3
"""Scenario campaigns: sweep topology families x corners x dictionaries.

Builds a sweep spec in code (the TOML file form is equivalent — see
docs/scenarios.md), expands it into content-addressed cells, runs the
campaign through the sharded executors, and aggregates the manifest.
Everything is deterministic: re-running this script reproduces the
manifest bitwise, with any worker count.

Run:  python examples/campaign_sweep.py [--jobs N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.reporting import render_table
from repro.scenarios import parse_spec, run_campaign, summarize_manifest

SPEC = {
    "campaign": {"name": "example-sweep", "mode": "screen"},
    "topologies": [
        {"family": "rc-ladder", "axes": {"n_sections": [2, 4, 6]}},
        {"family": "active-filter",
         "axes": {"n_sections": [4, 8], "fault_top_n": [10]}},
    ],
    "corners": ["tt", "ss", "rhi"],
    "dictionaries": [{"label": "ifa", "kind": "ifa"}],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (results are bitwise "
                             "independent of this)")
    args = parser.parse_args()

    spec = parse_spec(SPEC)
    cells = spec.cells()
    print(f"campaign {spec.name!r}: {len(cells)} cells "
          f"({len(spec.topologies)} topology clauses x "
          f"{len(spec.corners)} corners x "
          f"{len(spec.dictionaries)} dictionaries)")
    for cell in cells[:4]:
        print(f"  {cell.describe()}")
    print(f"  ... and {len(cells) - 4} more\n")

    manifest = Path(tempfile.mkdtemp()) / "example_manifest.jsonl"
    result = run_campaign(spec, manifest, n_jobs=args.jobs)
    counts = result.counts
    print(f"ran {result.n_cells} cells: {counts['ok']} ok, "
          f"{counts['rejected']} rejected, {counts['failed']} failed")

    summary = summarize_manifest(result.records)
    rows = [[family, str(b["cells"]), str(b["faults"]),
             str(b["detected"])]
            for family, b in sorted(summary["families"].items())]
    print(render_table(["family", "cells", "faults", "detected"], rows,
                       title="Campaign summary by family"))
    print(f"mean coverage of ok cells: {summary['mean_coverage']:.1%}")
    print(f"manifest: {manifest}")


if __name__ == "__main__":
    main()
