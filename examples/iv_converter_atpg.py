#!/usr/bin/env python3
"""Full ATPG on the paper's IV-converter macro (or a subset of it).

Runs the complete generation + compaction flow on the CMOS IV-converter:
45 bridging + 10 pinhole faults against the five test configurations of
Table 1.  The full run is simulation-heavy (the paper ran overnight on an
HP700; we parallelize over faults) — use ``--faults N`` to try a subset
first.

Run:  python examples/iv_converter_atpg.py --faults 6 --jobs 4
      python examples/iv_converter_atpg.py            # all 55 faults
"""

import argparse

from repro.compaction import CompactionSettings, collapse_test_set
from repro.macros import get_macro
from repro.reporting import render_table
from repro.testgen import GenerationSettings, generate_tests


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--faults", type=int, default=None,
                        help="limit to the first N dictionary faults")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker processes")
    parser.add_argument("--calibrated-boxes", action="store_true",
                        help="Monte-Carlo-calibrate tolerance boxes "
                             "(slower first run; cached under results/)")
    args = parser.parse_args()

    macro = get_macro("iv-converter")
    box_mode = "calibrated" if args.calibrated_boxes else "fast"
    configurations = macro.test_configurations(
        box_mode=box_mode, cache_dir="results/box_cache")
    faults = macro.fault_dictionary()
    fault_list = list(faults)[:args.faults] if args.faults else list(faults)

    print(f"IV-converter: {macro.circuit.summary()}")
    print(f"running {len(fault_list)} faults x "
          f"{len(configurations)} configurations "
          f"({box_mode} boxes, {args.jobs} jobs)...\n")

    generation = generate_tests(macro.circuit, configurations, fault_list,
                                GenerationSettings(), n_jobs=args.jobs)

    # Table-2-style distribution.
    distribution = generation.distribution()
    config_names = [c.name for c in configurations] + ["<undetectable>"]
    rows = [[name,
             distribution.get(name, {}).get("bridge", 0),
             distribution.get(name, {}).get("pinhole", 0)]
            for name in config_names if name in distribution
            or not name.startswith("<")]
    print(render_table(["configuration", "bridge", "pinhole"], rows,
                       title="Best-test distribution (paper Table 2)"))
    print(f"\nsimulations: {generation.total_simulations}, "
          f"wall time {generation.wall_time_s:.0f}s")

    hard = [t for t in generation.tests if t.required_impact_increase]
    if hard:
        print(f"faults needing impact increase to detect: "
              f"{', '.join(t.fault.fault_id for t in hard)}")

    # Compaction (screening reuses the generation's configurations).
    from repro.testgen import MacroTestbench
    testbench = MacroTestbench(macro.circuit, configurations,
                               macro.options)
    compaction = collapse_test_set(generation, testbench,
                                   CompactionSettings(delta=0.1))
    print(f"\ncompaction: {compaction.n_original_tests} -> "
          f"{compaction.n_compact_tests} tests "
          f"({compaction.compaction_ratio:.1f}x, delta=0.1)")
    rows = [[g.config_name,
             ", ".join(f"{k}={v:.3g}" for k, v in
                       g.collapsed_test.as_dict().items()),
             g.size] for g in compaction.groups]
    print(render_table(["configuration", "collapsed parameters",
                        "faults covered"], rows,
                       title="Compact test set (paper section 4.2)"))


if __name__ == "__main__":
    main()
