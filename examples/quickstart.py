#!/usr/bin/env python3
"""Quickstart: generate a compact structural test set for an analog macro.

This walks the complete Kaal & Kerkhoff flow on the fast RC-ladder macro
(milliseconds per simulation), so it finishes in a few seconds:

1. build the macro and its exhaustive fault dictionary;
2. generate the optimal test per fault (Fig. 6 algorithm);
3. collapse the fault-specific tests into a compact set (§4);
4. verify fault coverage of the compact set.

Run:  python examples/quickstart.py
"""

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    evaluate_coverage,
)
from repro.macros import get_macro
from repro.reporting import render_table
from repro.testgen import GenerationSettings, generate_tests


def main() -> None:
    # 1. The macro ships its netlist, standard nodes, test-configuration
    #    implementations and fault universe.
    # Macros resolve through the registry by type name, the same
    # path the CLI and the campaign engine use.
    macro = get_macro("rc-ladder")
    print(macro.circuit.summary())
    faults = macro.fault_dictionary()
    print(f"fault dictionary: {faults}\n")

    # 2. Fault-specific test generation.
    configurations = macro.test_configurations()
    generation = generate_tests(macro.circuit, configurations, faults,
                                GenerationSettings())
    rows = []
    for generated in generation.tests:
        params = (", ".join(f"{k}={v:.3g}" for k, v in
                            generated.test.as_dict().items())
                  if generated.test is not None else "-")
        rows.append([
            generated.fault.fault_id, generated.config_name, params,
            f"{generated.sensitivity_at_critical:.3g}",
            f"{generated.critical_impact:.3g}",
        ])
    print(render_table(
        ["fault", "best configuration", "parameters", "S at critical",
         "critical impact [ohm]"], rows,
        title="Optimal test per fault (paper Fig. 6 algorithm)"))
    print(f"\nsimulations spent: {generation.total_simulations} "
          f"({generation.wall_time_s:.1f}s)\n")

    # 3. Compaction: collapse tests that cluster in parameter space.
    testbench = macro.testbench()
    compaction = collapse_test_set(generation, testbench,
                                   CompactionSettings(delta=0.1))
    print(f"compacted {compaction.n_original_tests} tests -> "
          f"{compaction.n_compact_tests} "
          f"({compaction.compaction_ratio:.1f}x)")
    for group in compaction.groups:
        print(f"  {group.collapsed_test}  covers {group.size} fault(s): "
              f"{', '.join(group.fault_ids)}")

    # 4. Coverage of the compact set at dictionary impact.
    detected = [t for t in generation.tests if t.detected_at_dictionary]
    report = evaluate_coverage(testbench, [t.fault for t in detected],
                               list(compaction.tests))
    print(f"\ncoverage of compact set: {report.n_covered}/"
          f"{report.n_faults} faults detected at dictionary impact")
    undetectable = generation.undetectable_faults()
    if undetectable:
        names = ", ".join(f.fault_id for f in undetectable)
        print(f"structurally undetectable (stiff nodes): {names}")


if __name__ == "__main__":
    main()
