#!/usr/bin/env python3
"""Bring your own macro: wire a new circuit into the ATPG flow.

Shows everything a user must supply to run the Kaal & Kerkhoff flow on
their own analog block — here a one-transistor common-source amplifier:

* a netlist built with :class:`CircuitBuilder` (or parsed from a deck);
* standard nodes (the bridging-fault universe);
* at least one test-configuration implementation (bounds, seeds,
  measurement procedure, box function);
* then: fault dictionary -> generation -> compaction, as usual.

Run:  python examples/custom_macro.py
"""

from repro.circuit import CircuitBuilder, NMOS_DEFAULT
from repro.compaction import CompactionSettings, collapse_test_set
from repro.faults import exhaustive_fault_dictionary
from repro.macros import Macro, get_macro, register_macro
from repro.reporting import render_table
from repro.testgen import (
    BoundParameter,
    DCProcedure,
    GenerationSettings,
    ParameterSpec,
    Probe,
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
    generate_tests,
)
from repro.tolerance import ConstantBoxFunction


class CommonSourceMacro(Macro):
    """A resistively loaded common-source NMOS amplifier."""

    name = "csamp"
    macro_type = "cs-amplifier"

    STANDARD_NODES = ("vdd", "0", "vin", "vout")

    def build_circuit(self):
        return (CircuitBuilder(self.name)
                .voltage_source("VDD", "vdd", "0", 5.0)
                .voltage_source("VIN", "vin", "0", 1.2)
                .resistor("RD", "vdd", "vout", "20k")
                .mosfet("M1", "vout", "vin", "0", "0", NMOS_DEFAULT,
                        "20u", "2u")
                .build())

    @property
    def standard_nodes(self):
        return self.STANDARD_NODES

    def test_configurations(self, box_mode="fast", cache_dir=None):
        description = TestConfigurationDescription(
            name="dc-transfer", macro_type=self.macro_type,
            title="DC transfer point",
            control_nodes=("vin",), observe_nodes=("vout", "vdd"),
            stimulus_template="dc(bias) at vin",
            parameters=("bias",),
            return_values=(
                ReturnValueSpec("delta_vout", "voltage",
                                "output shift vs nominal"),
                ReturnValueSpec("delta_idd", "current",
                                "supply-current shift vs nominal")))
        parameters = (BoundParameter(
            ParameterSpec("bias", "V", "gate bias"), 0.9, 2.5, 1.2),)
        procedure = DCProcedure("VIN", "bias",
                                (Probe("v", "vout"), Probe("i", "VDD")))
        # Hand-set constant boxes keep the example self-contained; use
        # repro.tolerance.calibrate_box_function for Monte-Carlo boxes.
        box = ConstantBoxFunction([0.08, 3e-6])
        return (TestConfiguration(description, parameters, procedure, box,
                                  self.equipment),)


def main() -> None:
    # Registering the macro makes it addressable by type name —
    # from the CLI, the campaign engine, and here.
    register_macro("cs-amplifier", CommonSourceMacro,
                   overwrite=True)
    macro = get_macro("cs-amplifier")
    print(macro.circuit.summary())
    print(macro.test_configurations()[0].description.describe(), "\n")

    faults = exhaustive_fault_dictionary(macro.circuit,
                                         nodes=macro.standard_nodes)
    print(f"{faults}\n")

    generation = generate_tests(macro.circuit, macro.test_configurations(),
                                faults, GenerationSettings())
    rows = [[t.fault.fault_id, t.config_name,
             "-" if t.test is None else f"{t.test.values[0]:.3g}",
             f"{t.sensitivity_at_critical:.3g}",
             "yes" if t.detected_at_dictionary else "no"]
            for t in generation.tests]
    print(render_table(
        ["fault", "config", "bias [V]", "S at critical", "detected@dict"],
        rows, title="Generated tests for the common-source amplifier"))

    compaction = collapse_test_set(generation, macro.testbench(),
                                   CompactionSettings(delta=0.1))
    print(f"\ncompact set: {compaction.n_compact_tests} test(s) for "
          f"{compaction.n_original_tests} detectable faults")
    for group in compaction.groups:
        print(f"  {group.collapsed_test} covers: "
              f"{', '.join(group.fault_ids)}")


if __name__ == "__main__":
    main()
