"""Pre-flight static analysis for circuits, fault dictionaries and
test programs.

The paper's premise is structural: fault lists and compact tests are
derived from netlist structure before any simulation runs.  This
package brings the matching static gate — a rule-based lint framework
that rejects or flags bad (topology x dictionary x test) scenarios
*before* any compile or factorization, instead of letting them surface
mid-run as cryptic singular-matrix or convergence errors.

Three pass families (see :mod:`repro.lint.circuit_rules`,
:mod:`repro.lint.fault_rules`, :mod:`repro.lint.testgen_rules`) feed
deterministic :class:`Diagnostic` records into a :class:`LintReport`::

    from repro.lint import lint_scenario

    report = lint_scenario(macro.circuit, macro.fault_dictionary(),
                           macro.test_configurations())
    if not report.ok(strict=True):
        print(render_text(report))

The same gate is exposed as the ``repro lint`` CLI subcommand and as
the ``preflight=`` hook on ``SimulationEngine`` / ``generate_tests``.
The rule catalog lives in ``docs/lint.md``.
"""

from repro.lint.core import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintContext,
    LintReport,
    LintRule,
    all_rules,
    get_rule,
    register_rule,
    rule,
)
from repro.lint.reporters import render_json, render_text, report_to_dict
from repro.lint.runner import (
    lint_circuit,
    lint_faults,
    lint_scenario,
    lint_tests,
    preflight_check,
)

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "all_rules",
    "get_rule",
    "lint_circuit",
    "lint_faults",
    "lint_scenario",
    "lint_tests",
    "preflight_check",
    "register_rule",
    "render_json",
    "render_text",
    "report_to_dict",
    "rule",
]
