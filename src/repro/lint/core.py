"""Core of the lint framework: diagnostics, rules and reports.

The framework is deliberately small: a rule is a named, registered
function from a :class:`LintContext` (circuit + fault list + test
configurations) to zero or more :class:`Diagnostic` records.  Reports
collect diagnostics in a deterministic order — sorted by severity, rule
id, subject and message — so lint output is stable across runs, Python
hash seeds and machines, which the CI job and the back-compat
``validate_circuit`` wrapper both rely on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace

from repro.errors import LintError

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "all_rules",
    "get_rule",
    "register_rule",
    "rule",
]

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: Pass families a rule can belong to.
SCOPES = ("circuit", "faults", "tests")


@dataclass(frozen=True)
class Diagnostic:
    """One structured lint finding.

    Attributes:
        rule_id: stable identifier of the producing rule
            (e.g. ``"circuit.structural-rank"``).
        severity: ``"error"``, ``"warning"`` or ``"info"``.
        subject: the thing being complained about — a node, fault id,
            element or configuration name.  Used as a sort key, so it
            must be stable.
        location: human-readable place, e.g. ``"circuit 'ota'"``.
        message: one-line description of the finding.
        hint: optional fix suggestion.
    """

    rule_id: str
    severity: str
    subject: str
    location: str
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def sort_key(self) -> tuple:
        return (_SEVERITY_RANK[self.severity], self.rule_id,
                self.subject, self.message)

    def to_dict(self) -> dict[str, str]:
        """JSON-ready mapping (keys in stable order)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "subject": self.subject,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One text-report line."""
        text = (f"{self.severity:7s} [{self.rule_id}] "
                f"{self.location}: {self.message}")
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


@dataclass
class LintContext:
    """Everything a rule may inspect.

    Rules must tolerate missing parts: a circuit-only lint leaves
    ``faults``/``configurations`` empty, and fault rules receive the
    *raw* fault sequence (which, unlike a
    :class:`~repro.faults.dictionary.FaultDictionary`, may contain
    duplicate ids — that is exactly what some rules look for).

    Attributes:
        circuit: the circuit under test (``None`` only for pure
            fault/test lints without a reference netlist).
        elements: raw element sequence as supplied by the caller.  When
            the input was a :class:`~repro.circuit.netlist.Circuit` this
            equals ``tuple(circuit)``; when it was a plain element list
            it may contain duplicate names the ``Circuit`` constructor
            would have rejected.
        faults: fault models to vet (possibly with duplicate ids).
        configurations: test configurations to vet.
        cache: per-run scratch space shared by rules (e.g. compiled
            overlay-base node indices), never part of the result.
    """

    circuit: object | None = None
    elements: tuple = ()
    faults: tuple = ()
    configurations: tuple = ()
    cache: dict = field(default_factory=dict)


@dataclass(frozen=True)
class LintRule:
    """A registered, named static check.

    Attributes:
        rule_id: stable dotted identifier, ``<scope>.<slug>``.
        scope: pass family — ``"circuit"``, ``"faults"`` or ``"tests"``.
        severity: default severity of the diagnostics it emits.
        summary: one-line description (rule catalog).
        rationale: why the finding matters (rule catalog).
        check: the rule body; yields :class:`Diagnostic` records.
    """

    rule_id: str
    scope: str
    severity: str
    summary: str
    rationale: str
    check: Callable[[LintContext], Iterable[Diagnostic]]

    def run(self, context: LintContext) -> tuple[Diagnostic, ...]:
        """Execute the rule; diagnostics come back deterministically sorted."""
        return tuple(sorted(self.check(context), key=lambda d: d.sort_key))


_RULES: dict[str, LintRule] = {}


def register_rule(lint_rule: LintRule) -> LintRule:
    """Add a rule to the global registry (ids must be unique)."""
    if lint_rule.scope not in SCOPES:
        raise ValueError(f"unknown rule scope {lint_rule.scope!r}")
    if lint_rule.rule_id in _RULES:
        raise ValueError(f"duplicate lint rule id {lint_rule.rule_id!r}")
    _RULES[lint_rule.rule_id] = lint_rule
    return lint_rule


def rule(rule_id: str, *, scope: str, severity: str,
         summary: str, rationale: str = ""):
    """Decorator registering a check function as a :class:`LintRule`."""
    def decorate(fn):
        register_rule(LintRule(rule_id=rule_id, scope=scope,
                               severity=severity, summary=summary,
                               rationale=rationale, check=fn))
        return fn
    return decorate


def all_rules(scope: str | None = None) -> tuple[LintRule, ...]:
    """Registered rules, sorted by id; optionally one scope only."""
    rules = sorted(_RULES.values(), key=lambda r: r.rule_id)
    if scope is not None:
        rules = [r for r in rules if r.scope == scope]
    return tuple(rules)


def get_rule(rule_id: str) -> LintRule:
    """Look up one rule by id."""
    try:
        return _RULES[rule_id]
    except KeyError:
        raise LintError(f"no such lint rule: {rule_id!r}") from None


@dataclass(frozen=True)
class LintReport:
    """Deterministically ordered collection of diagnostics."""

    diagnostics: tuple[Diagnostic, ...]

    @staticmethod
    def from_iterable(diagnostics: Iterable[Diagnostic]) -> "LintReport":
        return LintReport(tuple(sorted(diagnostics,
                                       key=lambda d: d.sort_key)))

    @staticmethod
    def merge(*reports: "LintReport") -> "LintReport":
        """Combine reports, re-sorting into canonical order."""
        combined: list[Diagnostic] = []
        for report in reports:
            combined.extend(report.diagnostics)
        return LintReport.from_iterable(combined)

    def of_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(INFO)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def ok(self, strict: bool = False) -> bool:
        """Clean bill: no errors (strict: no warnings either)."""
        if strict:
            return not (self.errors or self.warnings)
        return not self.errors

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}``."""
        return {severity: len(self.of_severity(severity))
                for severity in (ERROR, WARNING, INFO)}

    def raise_for_errors(self, strict: bool = False,
                         stage: str = "lint") -> None:
        """Raise :class:`~repro.errors.LintError` if not :meth:`ok`."""
        if self.ok(strict):
            return
        blocking = self.errors + (self.warnings if strict else ())
        shown = "\n".join(d.render() for d in blocking[:8])
        more = len(blocking) - min(len(blocking), 8)
        if more:
            shown += f"\n... and {more} more"
        raise LintError(
            f"{stage} failed with {len(blocking)} blocking "
            f"finding(s):\n{shown}", diagnostics=blocking)

    def restricted(self, rule_ids: Sequence[str]) -> "LintReport":
        """Sub-report containing only the given rule ids."""
        wanted = set(rule_ids)
        return LintReport(tuple(d for d in self.diagnostics
                                if d.rule_id in wanted))

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)


def downgraded(diagnostic: Diagnostic, severity: str) -> Diagnostic:
    """Copy of *diagnostic* at a different severity (rule-local use)."""
    return replace(diagnostic, severity=severity)
