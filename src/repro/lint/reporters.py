"""Text and JSON rendering of lint reports."""

from __future__ import annotations

import json

from repro.lint.core import LintReport

__all__ = ["render_text", "render_json", "report_to_dict"]


def render_text(report: LintReport, *, title: str | None = None,
                strict: bool = False) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines: list[str] = []
    if title:
        lines.append(title)
    for diagnostic in report.diagnostics:
        lines.append("  " + diagnostic.render() if title
                     else diagnostic.render())
    counts = report.counts()
    summary = (f"{counts['error']} error(s), "
               f"{counts['warning']} warning(s), "
               f"{counts['info']} info")
    verdict = "clean" if report.ok(strict) else "FAILED"
    prefix = "  " if title else ""
    lines.append(f"{prefix}{verdict}: {summary}"
                 + (" [strict]" if strict else ""))
    return "\n".join(lines)


def report_to_dict(report: LintReport, *, strict: bool = False) -> dict:
    """JSON-ready mapping with stable key order."""
    return {
        "ok": report.ok(strict),
        "strict": strict,
        "counts": report.counts(),
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }


def render_json(report: LintReport, *, strict: bool = False,
                indent: int = 2) -> str:
    """Machine-readable report (stable ordering, ASCII-safe)."""
    return json.dumps(report_to_dict(report, strict=strict),
                      indent=indent, sort_keys=False)
