"""Test-program lint rules.

Vets test configurations against the circuit and against each other:
stimulus parameter ranges must be finite and physically plausible for
their declared unit, every referenced node / source / probe must exist,
tolerance-box functions must produce positive finite half-widths of the
right arity (and not spike non-monotonically inside the parameter box),
and configuration names must be unique.

Configurations are accessed duck-typed (``name`` / ``description`` /
``parameters`` / ``procedure`` / ``box_function``) so this module never
imports :mod:`repro.testgen` — which keeps the import graph acyclic
when ``generate_tests`` itself calls into the linter for pre-flight.
"""

from __future__ import annotations

import itertools
import math

from repro.circuit.elements import (
    CurrentSource,
    Inductor,
    VCVS,
    VoltageSource,
)
from repro.lint.core import (
    ERROR,
    WARNING,
    Diagnostic,
    LintContext,
    rule,
)
from repro.units import format_value

__all__ = []

#: Plausible stimulus ranges per declared parameter unit.  Deliberately
#: generous — they catch unit-suffix mistakes (mV vs kV), not tight
#: design limits.  Unknown units are not checked.
_PLAUSIBLE_BY_UNIT = {
    "V": (-1e3, 1e3),
    "A": (-10.0, 10.0),
    "Hz": (0.0, 1e10),
    "s": (0.0, 1e3),
    "ohm": (0.0, 1e12),
}

#: Cap on corner samples per configuration (2**n grows fast).
_MAX_BOX_CORNERS = 16

#: Spike factor for the monotonicity probe: the half-width at an axis
#: midpoint may not exceed 10x (or undercut 1/10x) both axis endpoints.
_BOX_SPIKE_FACTOR = 10.0


def _config_location(config) -> str:
    return f"configuration {config.name!r}"


@rule("test.duplicate-config", scope="tests", severity=ERROR,
      summary="duplicate test-configuration names",
      rationale="executors and compaction key tests by configuration "
                "name; duplicates make results ambiguous")
def check_duplicate_config(ctx: LintContext):
    seen: dict[str, int] = {}
    for config in ctx.configurations:
        key = config.name.lower()
        seen[key] = seen.get(key, 0) + 1
    for name in sorted(n for n, count in seen.items() if count > 1):
        yield Diagnostic(
            "test.duplicate-config", ERROR, name,
            f"configuration {name!r}",
            f"configuration name {name!r} appears {seen[name]} times",
            hint="rename the duplicates")

    # Same content under different names wastes generation slots.
    def signature(config):
        # Full procedure state (plain __init__ attributes: sources,
        # probes, post-processing modes, sample rates, ...) plus the
        # parameter space.  Two configurations matching on all of it
        # measure the same thing.
        parts = [type(config.procedure).__name__]
        state = getattr(config.procedure, "__dict__", {})
        for attr in sorted(state):
            parts.append(f"{attr}={state[attr]!r}")
        for parameter in config.parameters:
            parts.append(f"{parameter.name}:{parameter.lower!r}:"
                         f"{parameter.upper!r}:{parameter.seed!r}")
        return "|".join(parts)

    groups: dict[str, list[str]] = {}
    for config in ctx.configurations:
        groups.setdefault(signature(config), []).append(config.name)
    for sig in sorted(groups, key=lambda s: sorted(groups[s])[0]):
        names = sorted(set(groups[sig]))
        if len(names) > 1:
            yield Diagnostic(
                "test.duplicate-config", WARNING, names[0],
                f"configurations {', '.join(names)}",
                f"configurations {', '.join(names)} share procedure "
                "and parameter space (identical measurements under "
                "different names)",
                hint="keep one; duplicates only inflate the search")


@rule("test.unknown-node", scope="tests", severity=ERROR,
      summary="configuration references a node or source absent from "
              "the circuit",
      rationale="the mismatch would only surface as a mid-run "
                "TestGenerationError inside a worker process")
def check_unknown_node(ctx: LintContext):
    circuit = ctx.circuit
    if circuit is None:
        return
    for config in ctx.configurations:
        missing: list[str] = []
        description = getattr(config, "description", None)
        if description is not None:
            for group, nodes in (("control", description.control_nodes),
                                 ("observe", description.observe_nodes)):
                for node in nodes:
                    if not circuit.has_node(node):
                        missing.append(f"{group} node {node!r}")
        procedure = getattr(config, "procedure", None)
        source = getattr(procedure, "source", None)
        if source is not None:
            if source not in circuit:
                missing.append(f"stimulus source {source!r}")
            elif not isinstance(circuit.element(source),
                                (VoltageSource, CurrentSource)):
                missing.append(f"stimulus element {source!r} "
                               "(not a source)")
        observe = getattr(procedure, "observe", None)
        if observe is not None and not circuit.has_node(observe):
            missing.append(f"observe node {observe!r}")
        for probe in getattr(procedure, "probes", ()):
            if probe.kind == "v":
                if not circuit.has_node(probe.target):
                    missing.append(f"probed node {probe.target!r}")
            elif probe.target not in circuit:
                missing.append(f"probed element {probe.target!r}")
            elif not isinstance(circuit.element(probe.target),
                                (VoltageSource, Inductor, VCVS)):
                missing.append(
                    f"probed element {probe.target!r} (carries no "
                    "branch current in MNA)")
        for what in missing:
            yield Diagnostic(
                "test.unknown-node", ERROR, config.name,
                _config_location(config),
                f"configuration {config.name!r} references {what} not "
                f"present in circuit {circuit.name!r}",
                hint="match the configuration to the macro's node and "
                     "source names")


@rule("test.stimulus-range", scope="tests", severity=ERROR,
      summary="stimulus parameter bounds non-finite or outside the "
              "plausible range of their unit",
      rationale="infinite bounds break the normalized optimizer space; "
                "kilovolt 'levels' are unit-suffix typos that would "
                "drive every device into absurd regions")
def check_stimulus_range(ctx: LintContext):
    for config in ctx.configurations:
        for parameter in config.parameters:
            values = ((parameter.lower, "lower bound"),
                      (parameter.upper, "upper bound"),
                      (parameter.seed, "seed"))
            bad = [what for value, what in values
                   if not math.isfinite(value)]
            for what in bad:
                yield Diagnostic(
                    "test.stimulus-range", ERROR,
                    f"{config.name}:{parameter.name}",
                    _config_location(config),
                    f"parameter {parameter.name!r} of {config.name!r} "
                    f"has non-finite {what}",
                    hint="stimulus bounds must be finite to normalize")
            if bad:
                continue
            unit = getattr(parameter.spec, "unit", "")
            plausible = _PLAUSIBLE_BY_UNIT.get(unit)
            if plausible is None:
                continue
            low, high = plausible
            for value, what in values:
                if not low <= value <= high:
                    yield Diagnostic(
                        "test.stimulus-range", WARNING,
                        f"{config.name}:{parameter.name}",
                        _config_location(config),
                        f"parameter {parameter.name!r} of "
                        f"{config.name!r} has {what} "
                        f"{format_value(value, unit)} outside the "
                        f"plausible range "
                        f"[{format_value(low, unit)}, "
                        f"{format_value(high, unit)}]",
                        hint="check the SPICE unit suffix")


def _box_samples(config):
    """Representative points of the parameter box: seed, center, corners."""
    bounds = config.parameters.bounds
    seeds = tuple(float(s) for s in config.parameters.seeds)
    center = tuple(float(lo + hi) / 2.0 for lo, hi in bounds)
    samples = [("seed", seeds), ("center", center)]
    corners = itertools.product(*[(float(lo), float(hi))
                                  for lo, hi in bounds])
    for k, corner in enumerate(corners):
        if k >= _MAX_BOX_CORNERS:
            break
        samples.append((f"corner {corner}", corner))
    return samples


@rule("test.box-sanity", scope="tests", severity=ERROR,
      summary="tolerance-box function fails, returns the wrong arity "
              "or non-positive half-widths",
      rationale="a box with the wrong number of half-widths (or zero / "
                "negative ones) makes every detection verdict "
                "meaningless, and only fails deep inside generation")
def check_box_sanity(ctx: LintContext):
    for config in ctx.configurations:
        box = getattr(config, "box_function", None)
        if box is None:
            continue
        expected = config.n_return_values
        for label, point in _box_samples(config):
            try:
                widths = [float(w) for w in box.half_widths(point)]
            except Exception as exc:  # noqa: BLE001 - any failure is a finding
                yield Diagnostic(
                    "test.box-sanity", ERROR, config.name,
                    _config_location(config),
                    f"box function of {config.name!r} raised at "
                    f"{label}: {exc}",
                    hint="the box must be evaluable everywhere inside "
                         "the parameter bounds")
                break
            if len(widths) != expected:
                yield Diagnostic(
                    "test.box-sanity", ERROR, config.name,
                    _config_location(config),
                    f"box function of {config.name!r} returns "
                    f"{len(widths)} half-width(s) at {label} but the "
                    f"procedure produces {expected} return value(s)",
                    hint="one tolerance half-width per return value")
                break
            if any(not math.isfinite(w) or w <= 0.0 for w in widths):
                yield Diagnostic(
                    "test.box-sanity", ERROR, config.name,
                    _config_location(config),
                    f"box function of {config.name!r} yields "
                    f"non-positive or non-finite half-width(s) "
                    f"{widths} at {label}",
                    hint="tolerance half-widths must be positive")
                break


@rule("test.box-monotonic", scope="tests", severity=WARNING,
      summary="tolerance box spikes non-monotonically along a "
              "parameter axis",
      rationale="measurement accuracy varies smoothly with stimulus "
                "level; an interior spike usually means a bad "
                "calibration point or an inverted interpolation")
def check_box_monotonic(ctx: LintContext):
    for config in ctx.configurations:
        box = getattr(config, "box_function", None)
        if box is None:
            continue
        bounds = config.parameters.bounds
        seeds = [float(s) for s in config.parameters.seeds]
        names = config.parameters.names
        for axis, (lo, hi) in enumerate(bounds):
            lo, hi = float(lo), float(hi)
            probes = []
            for level in (lo, (lo + hi) / 2.0, hi):
                point = list(seeds)
                point[axis] = level
                try:
                    probes.append([float(w)
                                   for w in box.half_widths(point)])
                except Exception:  # noqa: BLE001 - box-sanity reports it
                    probes = None
                    break
            if probes is None:
                continue
            low_w, mid_w, high_w = probes
            for k, (wl, wm, wh) in enumerate(zip(low_w, mid_w, high_w)):
                if min(wl, wh) <= 0.0:
                    continue  # box-sanity's finding, not ours
                ceiling = _BOX_SPIKE_FACTOR * max(wl, wh)
                floor = min(wl, wh) / _BOX_SPIKE_FACTOR
                if wm > ceiling or wm < floor:
                    yield Diagnostic(
                        "test.box-monotonic", WARNING,
                        f"{config.name}:{names[axis]}",
                        _config_location(config),
                        f"box half-width #{k} of {config.name!r} "
                        f"spikes to {wm:g} at the midpoint of "
                        f"parameter {names[axis]!r} (endpoints "
                        f"{wl:g} / {wh:g})",
                        hint="inspect the calibration points feeding "
                             "the box function")
