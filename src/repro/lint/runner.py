"""Entry points that assemble a context and run registered rules."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.errors import LintError, NetlistError
from repro.lint import circuit_rules, fault_rules, testgen_rules  # noqa: F401 - rule registration
from repro.lint.core import (
    Diagnostic,
    LintContext,
    LintReport,
    all_rules,
    get_rule,
)

__all__ = [
    "lint_circuit",
    "lint_faults",
    "lint_scenario",
    "lint_tests",
    "preflight_check",
]


def _coerce_circuit(circuit_or_elements):
    """Accept a :class:`Circuit` or a raw element iterable.

    Raw sequences may contain duplicate names (which ``Circuit``
    rejects); the duplicates are dropped from the working circuit and
    left in ``elements`` for the ``circuit.duplicate-name`` rule.
    """
    if circuit_or_elements is None:
        return None, ()
    if isinstance(circuit_or_elements, Circuit):
        return circuit_or_elements, tuple(circuit_or_elements)
    elements = tuple(circuit_or_elements)
    circuit = Circuit("lint-input")
    for element in elements:
        try:
            circuit.add(element)
        except NetlistError:
            pass
    return circuit, elements


def _run(context: LintContext, scopes: Sequence[str],
         rules: Sequence[str] | None) -> LintReport:
    if rules is not None:
        selected = [get_rule(rule_id) for rule_id in rules]
    else:
        selected = [r for scope in scopes for r in all_rules(scope)]
    diagnostics: list[Diagnostic] = []
    for lint_rule in selected:
        diagnostics.extend(lint_rule.run(context))
    return LintReport.from_iterable(diagnostics)


def lint_circuit(circuit_or_elements, *,
                 rules: Sequence[str] | None = None) -> LintReport:
    """Run the circuit pass family.

    Args:
        circuit_or_elements: a :class:`Circuit` or any iterable of
            elements (raw sequences additionally enable the
            duplicate-name rule, which circuits structurally preclude).
        rules: optional explicit rule-id subset.
    """
    circuit, elements = _coerce_circuit(circuit_or_elements)
    context = LintContext(circuit=circuit, elements=elements)
    return _run(context, ("circuit",), rules)


def lint_faults(circuit, faults: Iterable, *,
                rules: Sequence[str] | None = None) -> LintReport:
    """Run the fault-dictionary pass family against *circuit*.

    *faults* may be a :class:`~repro.faults.dictionary.FaultDictionary`
    or any fault-model sequence (raw sequences may carry duplicate ids,
    which is itself a reportable finding).
    """
    circuit, elements = _coerce_circuit(circuit)
    context = LintContext(circuit=circuit, elements=elements,
                          faults=tuple(faults))
    return _run(context, ("faults",), rules)


def lint_tests(circuit, configurations: Iterable, *,
               rules: Sequence[str] | None = None) -> LintReport:
    """Run the test-program pass family against *circuit*."""
    circuit, elements = _coerce_circuit(circuit)
    context = LintContext(circuit=circuit, elements=elements,
                          configurations=tuple(configurations))
    return _run(context, ("tests",), rules)


def lint_scenario(circuit, faults: Iterable = (),
                  configurations: Iterable = (), *,
                  rules: Sequence[str] | None = None) -> LintReport:
    """Run every applicable pass family over one (circuit, dictionary,
    test-program) scenario — the full pre-flight gate."""
    circuit_obj, elements = _coerce_circuit(circuit)
    context = LintContext(circuit=circuit_obj, elements=elements,
                          faults=tuple(faults),
                          configurations=tuple(configurations))
    scopes = ["circuit"]
    if context.faults:
        scopes.append("faults")
    if context.configurations:
        scopes.append("tests")
    return _run(context, tuple(scopes), rules)


def preflight_check(circuit, faults: Iterable = (),
                    configurations: Iterable = (), *,
                    strict: bool = False,
                    stage: str = "pre-flight lint") -> LintReport:
    """Lint a scenario and raise :class:`~repro.errors.LintError` when
    it is not clean (``strict`` promotes warnings to blocking)."""
    report = lint_scenario(circuit, faults, configurations)
    report.raise_for_errors(strict=strict, stage=stage)
    return report
