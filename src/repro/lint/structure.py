"""Structural (symbolic) analysis of the MNA incidence pattern.

Everything here works on *which* matrix entries a circuit stamps, never
on their values — so these predicates run before any compile or
factorization:

* :class:`MNAPattern` mirrors the unknown ordering of
  :class:`repro.analysis.mna.CompiledCircuit` (node unknowns first, then
  the branch currents of voltage sources / inductors / VCVS, in netlist
  order) and records the structural nonzero pattern of the DC Jacobian,
  including the bias-dependent MOSFET/diode entries, which are present
  at every operating point.
* :func:`structural_rank` computes the maximum bipartite matching
  between equations and unknowns (Hopcroft–Karp, iterative — ladder
  macros reach thousands of unknowns).  A structural rank below the
  system size means the matrix is singular for *every* choice of element
  values; with ``gmin`` diagonals included this flags exactly the
  systems the engine cannot rescue.
* :func:`voltage_source_loops` finds cycles made purely of ideal
  voltage-defined branches (V sources, DC-shorted inductors, VCVS
  outputs).  These are structurally full rank but numerically singular
  — the complementary failure mode.
* :func:`dc_components` / :func:`dc_conducting_pairs` expose the DC
  connectivity used by the floating-node and current-source-cutset
  rules (shared with the legacy ``validate_circuit`` checks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.circuit.diode import Diode
from repro.circuit.elements import (
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
    is_ground,
)
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit

__all__ = [
    "MNAPattern",
    "UnionFind",
    "build_pattern",
    "canonical",
    "dc_components",
    "dc_conducting_pairs",
    "structural_rank",
    "voltage_source_loops",
]


def canonical(node: str) -> str:
    """Canonical node name (all ground aliases collapse to ``"0"``)."""
    return "0" if is_ground(node) else node


class UnionFind:
    """Union-find over node names, iterative with path compression.

    Iterative on purpose: resistor chains in the large-macro zoo produce
    parent chains thousands deep, which a recursive walk cannot survive.
    """

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        root = self._parent.setdefault(key, key)
        while root != self._parent[root]:
            root = self._parent[root]
        while key != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: str, b: str) -> bool:
        """Merge the sets of *a* and *b*; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[ra] = rb
        return True


def dc_conducting_pairs(circuit: Circuit) -> list[tuple[str, str]]:
    """Node pairs joined by an element that conducts DC current."""
    pairs: list[tuple[str, str]] = []
    for element in circuit:
        if isinstance(element, Diode):
            pairs.append((element.anode, element.cathode))
        elif isinstance(element, (Resistor, Inductor, VoltageSource)):
            pairs.append((element.n1, element.n2))
        elif isinstance(element, VCVS):
            pairs.append((element.np, element.nn))
        elif isinstance(element, Mosfet):
            # Channel conducts d<->s; the bulk junctions conduct weakly.
            pairs.append((element.d, element.s))
            pairs.append((element.s, element.b))
    return pairs


def dc_components(circuit: Circuit) -> UnionFind:
    """Union-find of DC connectivity (ground seeded at ``"0"``)."""
    uf = UnionFind()
    uf.find("0")
    for a, b in dc_conducting_pairs(circuit):
        uf.union(canonical(a), canonical(b))
    return uf


@dataclass(frozen=True)
class MNAPattern:
    """Structural nonzero pattern of a circuit's DC MNA Jacobian.

    Attributes:
        unknown_names: unknown labels in system order — node names, then
            ``i(<element>)`` branch currents.
        rows: for each equation index, the sorted tuple of structurally
            nonzero column indices (without gmin).
    """

    unknown_names: tuple[str, ...]
    rows: tuple[tuple[int, ...], ...]

    @property
    def size(self) -> int:
        return len(self.unknown_names)


def build_pattern(circuit: Circuit) -> MNAPattern:
    """Mirror ``CompiledCircuit``'s stamping, keeping only the pattern."""
    node_names = circuit.nodes()
    node_index = {name: i for i, name in enumerate(node_names)}
    branch_elements = [e for e in circuit
                       if isinstance(e, (VoltageSource, Inductor, VCVS))]
    n_nodes = len(node_names)
    size = n_nodes + len(branch_elements)
    branch_index = {e.name: n_nodes + k
                    for k, e in enumerate(branch_elements)}
    gnd = size  # augmented ground slot, dropped at the end

    def idx(node: str) -> int:
        return gnd if is_ground(node) else node_index[node]

    rows: list[set[int]] = [set() for _ in range(size + 1)]

    def stamp(i: int, j: int) -> None:
        rows[i].add(j)

    def stamp_pair(p: int, n: int) -> None:
        # Conductance-style two-terminal stamp; a self-loop (p == n)
        # cancels arithmetically, so it contributes no pattern either.
        if p == n:
            return
        for i in (p, n):
            for j in (p, n):
                stamp(i, j)

    for element in circuit:
        if isinstance(element, Resistor):
            stamp_pair(idx(element.n1), idx(element.n2))
        elif isinstance(element, Diode):
            stamp_pair(idx(element.anode), idx(element.cathode))
        elif isinstance(element, Mosfet):
            # Level-1 Jacobian: KCL rows d and s carry derivatives with
            # respect to every terminal voltage (vgs, vds, vbs).
            d, g = idx(element.d), idx(element.g)
            s, b = idx(element.s), idx(element.b)
            if d != s:
                for i in (d, s):
                    for j in (d, g, s, b):
                        stamp(i, j)
        elif isinstance(element, VCCS):
            p, n = idx(element.np), idx(element.nn)
            cp, cn = idx(element.cp), idx(element.cn)
            if p != n and cp != cn:
                for i in (p, n):
                    for j in (cp, cn):
                        stamp(i, j)
        elif isinstance(element, (VoltageSource, Inductor)):
            r = branch_index[element.name]
            p, n = idx(element.n1), idx(element.n2)
            if p != n:
                stamp(p, r)
                stamp(n, r)
                stamp(r, p)
                stamp(r, n)
        elif isinstance(element, VCVS):
            r = branch_index[element.name]
            p, n = idx(element.np), idx(element.nn)
            cp, cn = idx(element.cp), idx(element.cn)
            if p != n:
                stamp(p, r)
                stamp(n, r)
                stamp(r, p)
                stamp(r, n)
            if element.gain != 0.0 and cp != cn:
                stamp(r, cp)
                stamp(r, cn)

    # Drop the augmented ground row/column, exactly like the compiler.
    trimmed = tuple(tuple(sorted(j for j in rows[i] if j != gnd))
                    for i in range(size))
    unknowns = tuple(node_names) + tuple(
        f"i({e.name})" for e in branch_elements)
    return MNAPattern(unknown_names=unknowns, rows=trimmed)


def structural_rank(pattern: MNAPattern,
                    with_gmin: bool = True) -> tuple[int, list[str]]:
    """Maximum-matching structural rank of the pattern.

    Args:
        pattern: output of :func:`build_pattern`.
        with_gmin: include the gmin diagonals the engine adds to every
            *node* row.  With them, only deficiencies no conductance can
            fix remain — e.g. an all-zero branch row from a voltage
            source strapped between two ground aliases.

    Returns:
        ``(rank, unmatched)`` where *unmatched* names the unknowns whose
        columns no equation can pivot on (empty when full rank).
    """
    size = pattern.size
    n_nodes = sum(1 for name in pattern.unknown_names
                  if not name.startswith("i("))
    adjacency: list[tuple[int, ...]] = []
    for i in range(size):
        cols = set(pattern.rows[i])
        if with_gmin and i < n_nodes:
            cols.add(i)
        adjacency.append(tuple(sorted(cols)))

    # Maximum bipartite matching, rows (equations) -> cols (unknowns).
    # Greedy seed first: with gmin every node row matches its own
    # diagonal immediately, so BFS augmentation below only ever runs for
    # the handful of branch rows — even 2000-unknown ladder macros stay
    # effectively linear.
    match_row = [-1] * size
    match_col = [-1] * size
    for r in range(size):
        for c in adjacency[r]:
            if match_col[c] == -1:
                match_row[r], match_col[c] = c, r
                break

    def augment(start: int) -> bool:
        # BFS over alternating paths: rows expand to all adjacent
        # columns, columns continue only through their matched row.  On
        # reaching a free column, flip the path via the parent links
        # (iterative — no recursion-depth limits on long chains).
        parent_col: dict[int, int] = {}
        queue: deque[int] = deque([start])
        while queue:
            r = queue.popleft()
            for c in adjacency[r]:
                if c in parent_col:
                    continue
                parent_col[c] = r
                r2 = match_col[c]
                if r2 == -1:
                    while True:
                        row = parent_col[c]
                        previous = match_row[row]
                        match_row[row], match_col[c] = c, row
                        if previous == -1:
                            return True
                        c = previous
                else:
                    queue.append(r2)
        return False

    rank = sum(1 for c in match_row if c != -1)
    for r in range(size):
        if match_row[r] == -1 and augment(r):
            rank += 1
    unmatched = tuple(pattern.unknown_names[c] for c in range(size)
                      if match_col[c] == -1)
    return rank, unmatched


def voltage_source_loops(circuit: Circuit) -> list[tuple[str, str, str]]:
    """Elements closing a loop of ideal voltage-defined DC branches.

    Walks V sources, inductors (DC shorts) and VCVS outputs in netlist
    order, union-finding their terminal nodes; any branch whose
    endpoints are already connected through earlier such branches closes
    a loop in which the branch currents are undetermined.

    Returns:
        ``(element_name, node_a, node_b)`` per loop-closing branch.
    """
    uf = UnionFind()
    loops: list[tuple[str, str, str]] = []
    for element in circuit:
        if isinstance(element, (VoltageSource, Inductor)):
            a, b = canonical(element.n1), canonical(element.n2)
        elif isinstance(element, VCVS):
            a, b = canonical(element.np), canonical(element.nn)
        else:
            continue
        if a == b or not uf.union(a, b):
            loops.append((element.name, a, b))
    return loops
