"""Circuit-scope lint rules.

The first five rules reproduce the historical ``validate_circuit``
checks with byte-identical messages — that function is now a thin
wrapper collecting their diagnostics (see
:data:`LEGACY_VALIDATE_RULES`).  The remaining rules are new purely
structural predicates: they reject or flag topologies that would
otherwise surface mid-run as singular-matrix or convergence failures.
"""

from __future__ import annotations

from repro.circuit.diode import Diode
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    TwoTerminal,
    VCCS,
    VCVS,
    VoltageSource,
    is_ground,
)
from repro.circuit.mosfet import Mosfet
from repro.lint.core import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintContext,
    rule,
)
from repro.lint.structure import (
    build_pattern,
    canonical,
    dc_components,
    dc_conducting_pairs,
    structural_rank,
    voltage_source_loops,
)
from repro.units import format_value

__all__ = ["LEGACY_VALIDATE_RULES"]

#: Rule ids whose diagnostics the back-compat ``validate_circuit``
#: wrapper re-emits (errors raise NetlistError, warnings become the
#: returned string list).  Order here is the legacy emission order.
LEGACY_VALIDATE_RULES = (
    "circuit.empty",
    "circuit.no-ground",
    "circuit.dangling-node",
    "circuit.dc-path",
    "circuit.isource-dc-path",
)


def _ready(ctx: LintContext) -> bool:
    """Circuit present, non-empty and grounded (gate for deeper rules)."""
    circuit = ctx.circuit
    return (circuit is not None and len(circuit) > 0
            and any(is_ground(n) for e in circuit for n in e.nodes))


def _location(ctx: LintContext) -> str:
    return f"circuit {ctx.circuit.name!r}" if ctx.circuit else "circuit"


@rule("circuit.empty", scope="circuit", severity=ERROR,
      summary="circuit has no elements",
      rationale="an empty netlist has nothing to compile or test")
def check_empty(ctx: LintContext):
    if ctx.circuit is not None and len(ctx.circuit) == 0:
        yield Diagnostic(
            "circuit.empty", ERROR, ctx.circuit.name, _location(ctx),
            f"circuit {ctx.circuit.name!r} has no elements",
            hint="add elements before analysing")


@rule("circuit.no-ground", scope="circuit", severity=ERROR,
      summary="no ground reference node",
      rationale="MNA needs a reference; without one every node floats")
def check_no_ground(ctx: LintContext):
    circuit = ctx.circuit
    if circuit is None or len(circuit) == 0:
        return
    if not any(is_ground(n) for e in circuit for n in e.nodes):
        yield Diagnostic(
            "circuit.no-ground", ERROR, circuit.name, _location(ctx),
            f"circuit {circuit.name!r} has no ground reference "
            "('0' or 'gnd')",
            hint="tie one net to node '0'")


@rule("circuit.dangling-node", scope="circuit", severity=WARNING,
      summary="node with a single element terminal",
      rationale="a one-terminal net usually indicates a typo in a "
                "node name")
def check_dangling(ctx: LintContext):
    if not _ready(ctx):
        return
    terminal_count: dict[str, int] = {}
    for element in ctx.circuit:
        for node in element.nodes:
            node = canonical(node)
            terminal_count[node] = terminal_count.get(node, 0) + 1
    for node, count in sorted(terminal_count.items()):
        if node != "0" and count < 2:
            yield Diagnostic(
                "circuit.dangling-node", WARNING, node, _location(ctx),
                f"node {node!r} has a single terminal (dangling)",
                hint="check the node name for typos")


@rule("circuit.dc-path", scope="circuit", severity=WARNING,
      summary="node without a DC path to ground",
      rationale="its bias is set only by the engine's gmin leakage, so "
                "operating points are gmin-dependent")
def check_dc_path(ctx: LintContext):
    if not _ready(ctx):
        return
    uf = dc_components(ctx.circuit)
    ground_root = uf.find("0")
    for node in ctx.circuit.nodes():
        if uf.find(canonical(node)) != ground_root:
            yield Diagnostic(
                "circuit.dc-path", WARNING, node, _location(ctx),
                f"node {node!r} has no DC path to ground "
                "(only capacitors/gates attach; gmin will be relied on)",
                hint="add a bias resistor or DC-conducting element")


@rule("circuit.isource-dc-path", scope="circuit", severity=WARNING,
      summary="current source into a node with no DC-conducting element",
      rationale="all injected current must leave through gmin, driving "
                "the node to an extreme voltage")
def check_isource_dc_path(ctx: LintContext):
    if not _ready(ctx):
        return
    circuit = ctx.circuit
    dc_nodes = {canonical(a) for a, b in dc_conducting_pairs(circuit)}
    dc_nodes |= {canonical(b) for a, b in dc_conducting_pairs(circuit)}
    for source in circuit.elements_of_type(CurrentSource):
        for node in source.nodes:
            node = canonical(node)
            if node != "0" and node not in dc_nodes:
                attached = [e.name for e in circuit.elements_at(node)
                            if not isinstance(e, (CurrentSource,
                                                  Capacitor))]
                if not attached:
                    yield Diagnostic(
                        "circuit.isource-dc-path", WARNING,
                        f"{source.name}:{node}", _location(ctx),
                        f"current source {source.name!r} drives node "
                        f"{node!r} which has no DC-conducting element",
                        hint="give the node a resistive return path")


@rule("circuit.duplicate-name", scope="circuit", severity=ERROR,
      summary="duplicate element names in the input sequence",
      rationale="later stamps silently shadow earlier ones in most "
                "SPICE-like flows; the Circuit class rejects them, raw "
                "element lists cannot")
def check_duplicate_name(ctx: LintContext):
    seen: dict[str, int] = {}
    for element in ctx.elements:
        key = element.name.lower()
        seen[key] = seen.get(key, 0) + 1
    for name in sorted(name for name, count in seen.items() if count > 1):
        yield Diagnostic(
            "circuit.duplicate-name", ERROR, name, _location(ctx),
            f"element name {name!r} appears {seen[name]} times "
            "(names are case-insensitive)",
            hint="rename the duplicates")


@rule("circuit.self-loop", scope="circuit", severity=WARNING,
      summary="element with both terminals on the same net",
      rationale="its stamps cancel exactly, so the element contributes "
                "nothing — almost always a netlist mistake")
def check_self_loop(ctx: LintContext):
    if ctx.circuit is None:
        return
    for element in ctx.circuit:
        pairs = ()
        if isinstance(element, TwoTerminal):
            pairs = ((element.n1, element.n2),)
        elif isinstance(element, Diode):
            pairs = ((element.anode, element.cathode),)
        elif isinstance(element, (VCVS, VCCS)):
            pairs = ((element.np, element.nn),)
        for a, b in pairs:
            if canonical(a) == canonical(b):
                yield Diagnostic(
                    "circuit.self-loop", WARNING, element.name,
                    _location(ctx),
                    f"element {element.name!r} connects node {a!r} to "
                    f"itself (stamps cancel; the element is a no-op)",
                    hint="check the terminal node names")


@rule("circuit.control-loop", scope="circuit", severity=WARNING,
      summary="controlled source with a degenerate control pair",
      rationale="a control voltage measured across one net is "
                "identically zero, so the source never acts")
def check_control_loop(ctx: LintContext):
    if ctx.circuit is None:
        return
    for element in ctx.circuit:
        if isinstance(element, (VCVS, VCCS)):
            if canonical(element.cp) == canonical(element.cn):
                yield Diagnostic(
                    "circuit.control-loop", WARNING, element.name,
                    _location(ctx),
                    f"controlled source {element.name!r} senses "
                    f"V({element.cp},{element.cn}) which is "
                    "identically zero",
                    hint="check the control node names")


@rule("circuit.value-sanity", scope="circuit", severity=WARNING,
      summary="element value outside plausible physical decades",
      rationale="values like a 1e15-ohm resistor or a 1-farad on-chip "
                "capacitor are usually unit mistakes (k vs meg, pF vs F)")
def check_value_sanity(ctx: LintContext):
    if ctx.circuit is None:
        return
    # (low, high) plausibility decades per element family.  Deliberately
    # generous: bridging-fault injection uses few-ohm resistors and
    # supply rails sit at tens of volts.
    for element in ctx.circuit:
        findings: list[tuple[str, str]] = []
        if isinstance(element, Resistor):
            if not 1e-3 <= element.resistance <= 1e12:
                findings.append((format_value(element.resistance, "ohm"),
                                 "expected 1 mohm .. 1 Tohm"))
        elif isinstance(element, Capacitor):
            if not 1e-18 <= element.capacitance <= 1e-2:
                findings.append((format_value(element.capacitance, "F"),
                                 "expected 1 aF .. 10 mF"))
        elif isinstance(element, Inductor):
            if not 1e-12 <= element.inductance <= 1e3:
                findings.append((format_value(element.inductance, "H"),
                                 "expected 1 pH .. 1 kH"))
        elif isinstance(element, VoltageSource):
            if abs(element.dc_value) > 1e3:
                findings.append((format_value(element.dc_value, "V"),
                                 "expected |V| <= 1 kV"))
        elif isinstance(element, CurrentSource):
            if abs(element.dc_value) > 10.0:
                findings.append((format_value(element.dc_value, "A"),
                                 "expected |I| <= 10 A"))
        elif isinstance(element, VCVS):
            if element.gain == 0.0:
                findings.append(("gain=0",
                                 "a zero-gain VCVS is a plain short"))
            elif abs(element.gain) > 1e9:
                findings.append((f"gain={element.gain:g}",
                                 "expected |gain| <= 1e9"))
        elif isinstance(element, VCCS):
            if element.gm == 0.0:
                findings.append(("gm=0", "a zero-gm VCCS is a no-op"))
            elif abs(element.gm) > 1e3:
                findings.append((f"gm={element.gm:g} S",
                                 "expected |gm| <= 1 kS"))
        for value, expectation in findings:
            yield Diagnostic(
                "circuit.value-sanity", WARNING, element.name,
                _location(ctx),
                f"element {element.name!r} has implausible value "
                f"{value} ({expectation})",
                hint="check the SPICE unit suffix")


@rule("circuit.floating-gate", scope="circuit", severity=WARNING,
      summary="MOSFET gate driven only by a floating net",
      rationale="the gate bias is then set by gmin alone, so the device "
                "operating region is an accident of solver defaults")
def check_floating_gate(ctx: LintContext):
    if not _ready(ctx):
        return
    circuit = ctx.circuit
    uf = dc_components(circuit)
    ground_root = uf.find("0")
    floating: dict[str, list[str]] = {}
    for device in circuit.elements_of_type(Mosfet):
        gate = canonical(device.g)
        if gate != "0" and uf.find(gate) != ground_root:
            floating.setdefault(gate, []).append(device.name)
    for gate in sorted(floating):
        devices = ", ".join(sorted(floating[gate]))
        yield Diagnostic(
            "circuit.floating-gate", WARNING, gate, _location(ctx),
            f"node {gate!r} floats at DC and drives the gate(s) of "
            f"{devices}",
            hint="bias the gate resistively or from a source")


@rule("circuit.isource-cutset", scope="circuit", severity=WARNING,
      summary="current source bridging disconnected DC components",
      rationale="its current has no conductive return path, so KCL can "
                "only balance through gmin leakage")
def check_isource_cutset(ctx: LintContext):
    if not _ready(ctx):
        return
    circuit = ctx.circuit
    uf = dc_components(circuit)
    for source in circuit.elements_of_type(CurrentSource):
        a, b = canonical(source.n1), canonical(source.n2)
        if uf.find(a) != uf.find(b):
            yield Diagnostic(
                "circuit.isource-cutset", WARNING, source.name,
                _location(ctx),
                f"current source {source.name!r} is a cutset between "
                f"{source.n1!r} and {source.n2!r}: no DC return path "
                "connects its terminals",
                hint="add a conductive path between the two sides")


@rule("circuit.vsource-loop", scope="circuit", severity=ERROR,
      summary="loop of ideal voltage-defined branches",
      rationale="the branch currents in such a loop are mathematically "
                "undetermined: the MNA matrix is numerically singular "
                "at every operating point")
def check_vsource_loop(ctx: LintContext):
    if not _ready(ctx):
        return
    for name, a, b in voltage_source_loops(ctx.circuit):
        yield Diagnostic(
            "circuit.vsource-loop", ERROR, name, _location(ctx),
            f"element {name!r} closes a loop of ideal voltage-defined "
            f"branches between {a!r} and {b!r} (V sources, inductors "
            "and VCVS outputs short at DC)",
            hint="break the loop with a series resistance")


@rule("circuit.structural-rank", scope="circuit", severity=ERROR,
      summary="MNA system structurally singular",
      rationale="no choice of element values can make the Jacobian "
                "invertible — factorization is guaranteed to fail, "
                "so reject before compiling")
def check_structural_rank(ctx: LintContext):
    if not _ready(ctx):
        return
    pattern = build_pattern(ctx.circuit)
    if pattern.size == 0:
        return
    # Computed WITH the gmin diagonals the engine adds to node rows:
    # deficiencies that remain (e.g. the all-zero branch row of a
    # voltage source strapped between two ground aliases) are the ones
    # gmin cannot repair.
    rank, unmatched = structural_rank(pattern, with_gmin=True)
    if rank < pattern.size:
        shown = ", ".join(unmatched[:6])
        if len(unmatched) > 6:
            shown += f", ... ({len(unmatched)} total)"
        yield Diagnostic(
            "circuit.structural-rank", ERROR,
            unmatched[0] if unmatched else ctx.circuit.name,
            _location(ctx),
            f"MNA system is structurally singular even with gmin: "
            f"structural rank {rank} < size {pattern.size} "
            f"(undetermined unknowns: {shown})",
            hint="every unknown needs an equation that can pivot on it; "
                 "look for branch elements strapped across ground "
                 "aliases or fully degenerate subcircuits")
