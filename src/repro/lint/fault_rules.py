"""Fault-dictionary lint rules.

These vet a fault list against its target circuit *before* any base is
compiled or factorized: overlay stamps must resolve to real nodes of
their overlay base, must not collapse onto a single net, and must carry
sane conductances; structurally equivalent faults (identical canonical
stamp patterns) are surfaced as pre-simulation collapse candidates for
:mod:`repro.compaction.collapse`.

The rules accept the *raw* fault sequence — unlike
:class:`~repro.faults.dictionary.FaultDictionary` they tolerate (and
report) duplicate fault ids.  Stamp resolution uses
:class:`StampResolutionView`, a duck-typed stand-in for a compiled
circuit that carries only the ``node_index``/``circuit`` attributes the
``stamp_delta`` contract actually reads — so linting a 2000-unknown
ladder never allocates the dense work matrices a real compile would.
"""

from __future__ import annotations

import math

from repro.circuit.mosfet import Mosfet
from repro.errors import FaultModelError, NetlistError
from repro.lint.core import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintContext,
    rule,
)
from repro.lint.structure import canonical

__all__ = ["StampResolutionView", "canonical_stamp_signature"]


class StampResolutionView:
    """Node-resolution stand-in for a :class:`CompiledCircuit`.

    ``FaultModel.stamp_delta`` implementations only consult
    ``compiled.node_index`` (membership / ordering of non-ground nodes)
    and ``compiled.circuit`` (element lookup); this view provides
    exactly that from an uncompiled circuit.
    """

    def __init__(self, circuit) -> None:
        self.circuit = circuit
        self.node_index = {name: i
                           for i, name in enumerate(circuit.nodes())}


def _fault_location(fault) -> str:
    return f"fault {fault.fault_id!r}"


def _overlay_views(ctx: LintContext) -> dict:
    views = ctx.cache.setdefault("overlay_views", {})
    return views


def _resolve_stamps(ctx: LintContext, fault):
    """``(view, stamps, error_message)`` for one overlay-capable fault.

    The overlay base is built (cheaply — a netlist copy at most) and
    memoized per ``overlay_base_key``; failures come back as a message
    instead of an exception so each rule can phrase its own diagnostic.
    """
    views = _overlay_views(ctx)
    key = fault.overlay_base_key
    view = views.get(key)
    if view is None:
        try:
            view = StampResolutionView(fault.overlay_base(ctx.circuit))
        except (FaultModelError, NetlistError) as exc:
            return None, (), str(exc)
        views[key] = view
    try:
        stamps = fault.stamp_delta(view)
    except (FaultModelError, NetlistError) as exc:
        return view, (), str(exc)
    return view, stamps, None


@rule("fault.duplicate-id", scope="faults", severity=ERROR,
      summary="duplicate fault ids in the sequence",
      rationale="dictionaries key results by fault_id; duplicates make "
                "verdicts ambiguous (FaultDictionary rejects them, raw "
                "lists cannot)")
def check_duplicate_id(ctx: LintContext):
    seen: dict[str, int] = {}
    for fault in ctx.faults:
        seen[fault.fault_id] = seen.get(fault.fault_id, 0) + 1
    for fault_id in sorted(fid for fid, n in seen.items() if n > 1):
        yield Diagnostic(
            "fault.duplicate-id", ERROR, fault_id,
            f"fault {fault_id!r}",
            f"fault id {fault_id!r} appears {seen[fault_id]} times",
            hint="drop or re-site the duplicates")


@rule("fault.site-unknown", scope="faults", severity=ERROR,
      summary="fault references a node or device absent from the circuit",
      rationale="the injection would only fail at solve time, deep "
                "inside a generation run")
def check_site_unknown(ctx: LintContext):
    if ctx.circuit is None:
        return
    circuit = ctx.circuit
    for fault in ctx.faults:
        missing: list[str] = []
        node_a = getattr(fault, "node_a", None)
        node_b = getattr(fault, "node_b", None)
        device = getattr(fault, "device", None)
        if node_a is not None and node_b is not None:
            for node in (node_a, node_b):
                if not circuit.has_node(node):
                    missing.append(f"node {node!r}")
        elif device is not None:
            try:
                element = circuit.element(device)
            except NetlistError:
                element = None
            if element is None:
                missing.append(f"device {device!r}")
            elif not isinstance(element, Mosfet):
                missing.append(f"device {device!r} (not a MOSFET)")
        else:
            # Generic fault model: the injection itself is the check.
            try:
                fault.apply(circuit)
            except (FaultModelError, NetlistError) as exc:
                missing.append(str(exc))
        for what in missing:
            yield Diagnostic(
                "fault.site-unknown", ERROR, fault.fault_id,
                _fault_location(fault),
                f"fault {fault.fault_id!r} references {what} not "
                f"present in circuit {circuit.name!r}",
                hint="restrict the fault universe to circuit nodes "
                     "(e.g. the macro's standard node list)")


@rule("fault.stamp-range", scope="faults", severity=ERROR,
      summary="overlay stamp does not resolve in its base circuit",
      rationale="push_overlay would raise mid-run; stamps whose nodes "
                "collapse to one net are rank-0 no-ops the engine "
                "rejects at solve time")
def check_stamp_range(ctx: LintContext):
    if ctx.circuit is None:
        return
    for fault in ctx.faults:
        if not fault.supports_overlay:
            continue
        view, stamps, failure = _resolve_stamps(ctx, fault)
        if failure is not None:
            yield Diagnostic(
                "fault.stamp-range", ERROR, fault.fault_id,
                _fault_location(fault),
                f"overlay stamps of {fault.fault_id!r} cannot be "
                f"resolved: {failure}",
                hint="the fault site must exist in the overlay base")
            continue
        for stamp in stamps:
            for node in (stamp.node_a, stamp.node_b):
                if canonical(node) != "0" and \
                        node not in view.node_index:
                    yield Diagnostic(
                        "fault.stamp-range", ERROR, fault.fault_id,
                        _fault_location(fault),
                        f"stamp of {fault.fault_id!r} references node "
                        f"{node!r} outside its overlay base "
                        f"(index range 0..{len(view.node_index) - 1})",
                        hint="the stamp must address compiled unknowns")
            if canonical(stamp.node_a) == canonical(stamp.node_b):
                yield Diagnostic(
                    "fault.stamp-range", ERROR, fault.fault_id,
                    _fault_location(fault),
                    f"stamp of {fault.fault_id!r} connects node "
                    f"{stamp.node_a!r} to itself (rank-0 overlay)",
                    hint="a conductance stamp needs two distinct nets")


@rule("fault.stamp-sanity", scope="faults", severity=ERROR,
      summary="overlay stamp with non-finite, negative or zero "
              "conductance",
      rationale="defect models add conductance; a negative delta can "
                "make the system indefinite or singular, a zero delta "
                "is a no-op masquerading as a fault")
def check_stamp_sanity(ctx: LintContext):
    if ctx.circuit is None:
        return
    for fault in ctx.faults:
        if not fault.supports_overlay:
            continue
        _, stamps, failure = _resolve_stamps(ctx, fault)
        if failure is not None:
            continue  # fault.stamp-range already reports this
        for stamp in stamps:
            g = stamp.conductance
            if not math.isfinite(g) or g < 0.0:
                yield Diagnostic(
                    "fault.stamp-sanity", ERROR, fault.fault_id,
                    _fault_location(fault),
                    f"stamp ({stamp.node_a!r}, {stamp.node_b!r}) of "
                    f"{fault.fault_id!r} has conductance {g!r} "
                    "(must be finite and >= 0)",
                    hint="impact resistances must be positive and "
                         "finite")
            elif g == 0.0:
                yield Diagnostic(
                    "fault.stamp-sanity", WARNING, fault.fault_id,
                    _fault_location(fault),
                    f"stamp ({stamp.node_a!r}, {stamp.node_b!r}) of "
                    f"{fault.fault_id!r} has zero conductance "
                    "(the fault is a no-op)",
                    hint="check the impact value")


def canonical_stamp_signature(base_key: str, stamps,
                              with_conductance: bool = True) -> tuple:
    """Hashable canonical form of an overlay stamp set.

    Node pairs are ground-canonicalized and sorted, the stamp list is
    sorted, and conductances (when included) are rounded to 12
    significant digits so ``bridge:0:x`` and ``bridge:gnd:x`` — or two
    impact values differing only in the last ulp — collapse to the same
    signature.
    """
    rows = []
    for stamp in stamps:
        a, b = sorted((canonical(stamp.node_a), canonical(stamp.node_b)))
        if with_conductance:
            g = float(stamp.conductance)
            rows.append((a, b, float(f"{g:.12g}") if math.isfinite(g)
                         else g))
        else:
            rows.append((a, b))
    return (base_key, tuple(sorted(rows)))


@rule("fault.equivalent-stamps", scope="faults", severity=WARNING,
      summary="faults with identical canonical overlay stamps",
      rationale="simulating both wastes a full generation slot; "
                "identical stamps provably produce identical verdicts, "
                "so collapse them before simulation")
def check_equivalent_stamps(ctx: LintContext):
    if ctx.circuit is None:
        return
    exact: dict[tuple, list[str]] = {}
    pattern: dict[tuple, list[str]] = {}
    conductances: dict[tuple, set[float]] = {}
    for fault in ctx.faults:
        if not fault.supports_overlay:
            continue
        _, stamps, failure = _resolve_stamps(ctx, fault)
        if failure is not None or not stamps:
            continue
        key = fault.overlay_base_key
        sig = canonical_stamp_signature(key, stamps)
        exact.setdefault(sig, []).append(fault.fault_id)
        pat = canonical_stamp_signature(key, stamps,
                                        with_conductance=False)
        pattern.setdefault(pat, []).append(fault.fault_id)
        conductances.setdefault(pat, set()).add(
            tuple(row[2] for row in sig[1]))
    for sig in sorted(exact, key=lambda s: sorted(exact[s])[0]):
        ids = sorted(set(exact[sig]))
        if len(ids) > 1:
            yield Diagnostic(
                "fault.equivalent-stamps", WARNING, ids[0],
                f"faults {', '.join(ids)}",
                f"faults {', '.join(ids)} stamp identical overlays "
                "(same base, same nodes, same conductance): their "
                "verdicts are provably identical",
                hint="keep one representative; see "
                     "compaction/collapse.py")
    for pat in sorted(pattern, key=lambda s: sorted(pattern[s])[0]):
        ids = sorted(set(pattern[pat]))
        if len(ids) > 1 and len(conductances[pat]) > 1:
            yield Diagnostic(
                "fault.equivalent-stamps", INFO, ids[0],
                f"faults {', '.join(ids)}",
                f"faults {', '.join(ids)} share one structural stamp "
                "pattern (conductances differ): strong collapse "
                "candidates for test compaction",
                hint="collapse_test_set can merge their tests")
