"""Engineering-notation helpers shared across the library.

Analog design tools conventionally express quantities with SPICE suffixes
(``10k``, ``2.5u``, ``100meg``).  This module converts between such strings
and floats, and pretty-prints floats back into engineering notation for
reports and tables.

The parser accepts the classic SPICE suffix set (case-insensitive):

====== =======  ====== =======
suffix factor   suffix factor
====== =======  ====== =======
``t``  1e12     ``m``  1e-3
``g``  1e9      ``u``  1e-6
``meg``1e6      ``n``  1e-9
``k``  1e3      ``p``  1e-12
``mil``25.4e-6  ``f``  1e-15
====== =======  ====== =======

Trailing unit letters after the suffix are ignored, as in SPICE
(``10kohm``, ``5vdc``): ``parse_value("10kohm") == 10_000.0``.
"""

from __future__ import annotations

import math
import re

__all__ = ["parse_value", "format_value", "format_si", "ENG_SUFFIXES"]

#: Suffix -> multiplication factor, longest-match-first where ambiguous
#: (``meg`` and ``mil`` must win over ``m``).
ENG_SUFFIXES: dict[str, float] = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "mil": 25.4e-6,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<rest>[a-zA-Z]*)\s*$""",
    re.VERBOSE,
)

# Order matters: check three-letter suffixes before their one-letter prefixes.
_SUFFIX_ORDER = ("meg", "mil", "t", "g", "k", "m", "u", "n", "p", "f")

# Mega is spelled "meg": SPICE suffixes are case-insensitive, so "M"
# would read back as milli and break the format->parse round-trip.
_SI_PREFIXES = (
    (1e12, "T"), (1e9, "G"), (1e6, "meg"), (1e3, "k"), (1.0, ""),
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style value string (or pass a number through).

    >>> parse_value("10k")
    10000.0
    >>> round(parse_value("2.5u"), 9)
    2.5e-06
    >>> parse_value("100meg")
    100000000.0
    >>> parse_value(47.0)
    47.0

    Raises:
        ValueError: if *text* is not a number with an optional suffix.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse engineering value: {text!r}")
    number = float(match.group("number"))
    rest = match.group("rest").lower()
    if not rest:
        return number
    for suffix in _SUFFIX_ORDER:
        if rest.startswith(suffix):
            return number * ENG_SUFFIXES[suffix]
    # No recognized suffix: the letters are a bare unit ("10ohm", "5v").
    return number


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format *value* with a SPICE suffix, e.g. ``format_value(10400) == '10.4k'``.

    Args:
        value: the quantity to format.
        unit: optional unit string appended after the suffix.
        digits: significant digits to keep.
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            scaled = value / factor
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{digits}g}{prefix}{unit}"


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Alias of :func:`format_value`, reads better in reporting code."""
    return format_value(value, unit=unit, digits=digits)
