"""DC analyses: operating point and source sweeps."""

from __future__ import annotations

import numpy as np

from repro.analysis.mna import CompiledCircuit
from repro.analysis.newton import robust_solve
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.analysis.results import OperatingPoint, SweepResult
from repro.circuit.elements import CurrentSource, VoltageSource
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.waveforms import DCWave

__all__ = ["operating_point", "dc_sweep"]


def operating_point(
    circuit: Circuit | CompiledCircuit,
    options: SimOptions = DEFAULT_OPTIONS,
    x0: np.ndarray | None = None,
) -> OperatingPoint:
    """Solve the DC operating point (capacitors open, inductors short).

    Args:
        circuit: a circuit or an already-compiled circuit.
        options: numerical options.
        x0: optional warm-start solution vector (e.g. a neighbouring sweep
            point); defaults to the flat zero start.

    Raises:
        ConvergenceError: when Newton and all homotopies fail.
    """
    compiled = (circuit if isinstance(circuit, CompiledCircuit)
                else CompiledCircuit(circuit))
    b = compiled.source_vector(None)
    start = np.zeros(compiled.size) if x0 is None else np.asarray(x0, float)
    x, iterations, strategy = robust_solve(compiled, start, b, options)
    return OperatingPoint(
        node_voltages=compiled.node_voltages(x),
        branch_currents=compiled.branch_currents(x),
        iterations=iterations,
        strategy=strategy,
        x=x,
    )


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: np.ndarray,
    options: SimOptions = DEFAULT_OPTIONS,
) -> SweepResult:
    """Sweep the DC level of one independent source.

    The circuit is compiled **once**; each sweep point patches the source
    level into the compiled source bank and warm-starts Newton from the
    previous solution, so sweeps through nonlinear regions converge
    quickly and the per-point cost is a handful of dense solves.

    Args:
        circuit: the circuit to analyze (not modified).
        source_name: name of a :class:`VoltageSource` or
            :class:`CurrentSource` whose DC value is swept.
        values: sweep values (any 1-D sequence).
    """
    element = circuit.element(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise AnalysisError(
            f"{source_name!r} is not an independent source")
    values = np.asarray(values, dtype=float)

    compiled = CompiledCircuit(circuit)
    points: list[OperatingPoint] = []
    x_prev: np.ndarray | None = None
    for value in values:
        with compiled.patched_source(source_name, DCWave(float(value))):
            op = operating_point(compiled, options, x0=x_prev)
        points.append(op)
        x_prev = op.x
    return SweepResult(sweep_name=source_name, values=values,
                       points=tuple(points))
