"""Modified nodal analysis (MNA) compilation and stamping.

:class:`CompiledCircuit` turns a :class:`~repro.circuit.Circuit` into dense
index-based numpy structures once, so the Newton loop only performs array
work:

* node unknowns first, then branch-current unknowns (voltage sources,
  inductors, VCVS), exactly like SPICE;
* the *ground trick*: stamping happens in an augmented ``(size+1)`` system
  whose last row/column represents ground and is dropped before solving —
  this removes all per-stamp ground special-casing;
* bias-independent stamps (resistors, controlled-source incidence) are
  assembled once into a static matrix that each Newton iteration copies;
* MOSFETs and diodes are evaluated as vector banks
  (:func:`repro.circuit.mosfet.mos_level1`, :func:`repro.circuit.diode.diode_eval`).

Work buffers are reused across calls: the ``(G, b)`` views returned by
:meth:`CompiledCircuit.linearize` are invalidated by the next call.

Compilation is the expensive step, so a compiled circuit also supports two
forms of in-place mutation that avoid recompiling (both are exactly
reversible and both feed the fault-overlay machinery of
:mod:`repro.analysis.engine`):

* **conductance overlays** — :meth:`CompiledCircuit.push_overlay` stamps
  extra node-to-node conductances straight into the static matrix (a
  rank-2 update per stamp) and :meth:`CompiledCircuit.pop_overlay`
  restores the exact prior entries (saved values, not arithmetic inverse,
  so floating-point state is bit-identical after a pop);
* **source patches** — :meth:`CompiledCircuit.patched_source` swaps the
  waveform of one independent source without touching the netlist, which
  is all a stimulus-parameter change needs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace

import numpy as np

from repro.analysis.backend import (
    BACKEND_SPARSE,
    SparseLU,
    factorize_matrix,
    select_backend,
    solve_dense,
)
from repro.circuit.diode import Diode, diode_eval
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
    is_ground,
)
from repro.circuit.mosfet import Mosfet, mos_level1
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, SingularMatrixError
from repro.waveforms.sources import Waveform

__all__ = ["CompiledCircuit", "Factorization"]


class Factorization:
    """Reusable LU factorization of one linearized MNA system.

    This is the "factorize once, solve many" primitive behind batched
    fault screening (:mod:`repro.analysis.batched`): the Jacobian at a
    fixed operating point is decomposed a single time, after which every
    right-hand side — including whole matrices of stacked per-fault RHS
    columns — costs only triangular solves.

    Backends (see :mod:`repro.analysis.backend`): dense SciPy
    ``lu_factor``/``lu_solve`` (NumPy explicit-inverse fallback on
    SciPy-less installs) for small systems, CSC + ``splu`` (SuperLU) for
    large ones.  Selection is automatic by system size; the
    ``REPRO_BACKEND=dense|sparse|auto`` environment override and the
    *mode* argument pin it explicitly.

    Args:
        matrix: the square system matrix.  Copied — callers may pass the
            reusable views returned by :meth:`CompiledCircuit.linearize`.
        mode: optional backend mode overriding the environment selection
            (``"dense"``, ``"sparse"`` or ``"auto"``).

    Attributes:
        count: class-level counter of factorizations performed since
            process start (instrumentation, like
            :attr:`CompiledCircuit.compile_count`).
        backend: the backend actually serving this factorization —
            ``"dense"`` or ``"sparse"`` (a sparse request degrades to
            dense when SciPy is absent).
    """

    #: Process-wide factorization counter (instrumentation, monotonic).
    count: int = 0

    def __init__(self, matrix: np.ndarray,
                 mode: str | None = None) -> None:
        Factorization.count += 1
        self._impl = factorize_matrix(matrix, mode)
        self.n = self._impl.n
        self.backend = self._impl.backend

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a vector or a matrix of RHS columns."""
        return self._impl.solve(rhs)


class CompiledCircuit:
    """Index-compiled form of a circuit, ready for repeated stamping.

    Args:
        circuit: the netlist to compile.  The compiled object keeps no
            reference to mutable state; recompile after deriving a new
            circuit, or use the overlay / source-patch facilities to apply
            the two mutations (extra conductances, new stimulus waveforms)
            that never require one.

    Attributes:
        compile_count: class-level counter of compilations performed since
            process start.  The engine benchmarks read it to prove the
            steady-state inner loop performs **zero** recompilations.
    """

    #: Process-wide compilation counter (instrumentation, monotonic).
    compile_count: int = 0

    def __init__(self, circuit: Circuit) -> None:
        CompiledCircuit.compile_count += 1
        self.circuit = circuit
        self.node_names: tuple[str, ...] = circuit.nodes()
        self.node_index: dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)}
        self.n_nodes = len(self.node_names)

        branch_elements = [e for e in circuit
                           if isinstance(e, (VoltageSource, Inductor, VCVS))]
        self.branch_names: tuple[str, ...] = tuple(
            e.name for e in branch_elements)
        self.branch_index: dict[str, int] = {
            e.name: self.n_nodes + k for k, e in enumerate(branch_elements)}
        self.size = self.n_nodes + len(branch_elements)
        self._gnd = self.size  # augmented ground slot

        self._compile_static()
        self._compile_sources()
        self._compile_capacitors()
        self._compile_inductors()
        self._compile_mosfets()
        self._compile_diodes()

        # Reusable work buffers (augmented).
        self._g_work = np.zeros((self.size + 1, self.size + 1))
        self._b_work = np.zeros(self.size + 1)

        # Overlay stack: each entry is the list of (i, j, prior value)
        # matrix slots touched by one push, restored verbatim on pop.
        self._overlays: list[list[tuple[int, int, float]]] = []

        self._compile_nonlinear_mask()

    def _compile_nonlinear_mask(self) -> None:
        """Mark node unknowns attached to nonlinear devices.

        Newton step limiting (the junction-limiting surrogate) applies
        only to these nodes: linear unknowns may jump straight to their
        solution, which keeps linear circuits converging in one step.
        """
        mask = np.zeros(self.size, dtype=bool)
        for element in self.circuit:
            if isinstance(element, (Mosfet, Diode)):
                for node in element.nodes:
                    if not is_ground(node):
                        mask[self.node_index[node]] = True
        self.nonlinear_node_mask = mask

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _idx(self, node: str) -> int:
        """Augmented index of a node name (ground maps to the extra slot)."""
        if is_ground(node):
            return self._gnd
        return self.node_index[node]

    def _compile_static(self) -> None:
        ga = np.zeros((self.size + 1, self.size + 1))
        for element in self.circuit:
            if isinstance(element, Resistor):
                g = element.conductance
                p, n = self._idx(element.n1), self._idx(element.n2)
                ga[p, p] += g
                ga[p, n] -= g
                ga[n, p] -= g
                ga[n, n] += g
            elif isinstance(element, VCCS):
                p, n = self._idx(element.np), self._idx(element.nn)
                cp, cn = self._idx(element.cp), self._idx(element.cn)
                ga[p, cp] += element.gm
                ga[p, cn] -= element.gm
                ga[n, cp] -= element.gm
                ga[n, cn] += element.gm
            elif isinstance(element, VoltageSource):
                r = self.branch_index[element.name]
                p, n = self._idx(element.n1), self._idx(element.n2)
                ga[p, r] += 1.0
                ga[n, r] -= 1.0
                ga[r, p] += 1.0
                ga[r, n] -= 1.0
            elif isinstance(element, Inductor):
                r = self.branch_index[element.name]
                p, n = self._idx(element.n1), self._idx(element.n2)
                ga[p, r] += 1.0
                ga[n, r] -= 1.0
                ga[r, p] += 1.0
                ga[r, n] -= 1.0
            elif isinstance(element, VCVS):
                r = self.branch_index[element.name]
                p, n = self._idx(element.np), self._idx(element.nn)
                cp, cn = self._idx(element.cp), self._idx(element.cn)
                ga[p, r] += 1.0
                ga[n, r] -= 1.0
                ga[r, p] += 1.0
                ga[r, n] -= 1.0
                ga[r, cp] -= element.gain
                ga[r, cn] += element.gain
        self._g_static = ga

    def _compile_sources(self) -> None:
        self._vsources = [
            (self.branch_index[e.name], e)
            for e in self.circuit.elements_of_type(VoltageSource)]
        self._isources = [
            (self._idx(e.n1), self._idx(e.n2), e)
            for e in self.circuit.elements_of_type(CurrentSource)]
        # Name -> (bank, position) lookup for waveform patching.
        self._source_slot: dict[str, tuple[str, int]] = {}
        for pos, (_, e) in enumerate(self._vsources):
            self._source_slot[e.name.lower()] = ("v", pos)
        for pos, (_, _, e) in enumerate(self._isources):
            self._source_slot[e.name.lower()] = ("i", pos)

    def _compile_capacitors(self) -> None:
        """Capacitor bank: explicit caps plus constant MOS gate caps."""
        cp: list[int] = []
        cn: list[int] = []
        cv: list[float] = []
        for element in self.circuit.elements_of_type(Capacitor):
            cp.append(self._idx(element.n1))
            cn.append(self._idx(element.n2))
            cv.append(element.capacitance)
        for mos in self.circuit.elements_of_type(Mosfet):
            cp.append(self._idx(mos.g))
            cn.append(self._idx(mos.s))
            cv.append(mos.cgs)
            cp.append(self._idx(mos.g))
            cn.append(self._idx(mos.d))
            cv.append(mos.cgd)
        self.cap_p = np.array(cp, dtype=np.intp)
        self.cap_n = np.array(cn, dtype=np.intp)
        self.cap_value = np.array(cv, dtype=float)
        self.n_caps = len(cv)

    def _compile_inductors(self) -> None:
        rows: list[int] = []
        values: list[float] = []
        for element in self.circuit.elements_of_type(Inductor):
            rows.append(self.branch_index[element.name])
            values.append(element.inductance)
        self.ind_row = np.array(rows, dtype=np.intp)
        self.ind_value = np.array(values, dtype=float)
        self.n_inductors = len(values)

    def _compile_mosfets(self) -> None:
        devices = self.circuit.elements_of_type(Mosfet)
        self.n_mosfets = len(devices)
        self.mos_names = tuple(m.name for m in devices)
        self.mos_d = np.array([self._idx(m.d) for m in devices], dtype=np.intp)
        self.mos_g = np.array([self._idx(m.g) for m in devices], dtype=np.intp)
        self.mos_s = np.array([self._idx(m.s) for m in devices], dtype=np.intp)
        self.mos_b = np.array([self._idx(m.b) for m in devices], dtype=np.intp)
        self.mos_sign = np.array([m.params.sign for m in devices])
        self.mos_beta = np.array([m.beta for m in devices])
        self.mos_vto = np.array([m.params.vto for m in devices])
        self.mos_lam = np.array([m.params.lam for m in devices])
        self.mos_gamma = np.array([m.params.gamma for m in devices])
        self.mos_phi = np.array([m.params.phi for m in devices])

    def _compile_diodes(self) -> None:
        devices = self.circuit.elements_of_type(Diode)
        self.n_diodes = len(devices)
        self.dio_a = np.array([self._idx(d.anode) for d in devices],
                              dtype=np.intp)
        self.dio_c = np.array([self._idx(d.cathode) for d in devices],
                              dtype=np.intp)
        self.dio_is = np.array([d.i_s for d in devices])
        self.dio_n = np.array([d.n for d in devices])

    # ------------------------------------------------------------------
    # per-timepoint source vector
    # ------------------------------------------------------------------
    def source_vector(self, t: float | None, scale: float = 1.0) -> np.ndarray:
        """RHS contribution of the independent sources at time *t*.

        ``t=None`` selects the DC value of every waveform (operating
        point).  Returns a fresh augmented vector.
        """
        b = np.zeros(self.size + 1)
        for row, src in self._vsources:
            value = src.dc_value if t is None else src.value_at(t)
            b[row] += value * scale
        for p, n, src in self._isources:
            value = src.dc_value if t is None else src.value_at(t)
            b[p] -= value * scale
            b[n] += value * scale
        return b

    # ------------------------------------------------------------------
    # conductance overlays (fault stamping without recompilation)
    # ------------------------------------------------------------------
    def resolve_node(self, node: str) -> int:
        """Augmented index of *node*; raises :class:`AnalysisError` when
        the name is neither ground nor a compiled node."""
        if is_ground(node):
            return self._gnd
        try:
            return self.node_index[node]
        except KeyError:
            raise AnalysisError(
                f"no node {node!r} in compiled circuit "
                f"{self.circuit.name!r}") from None

    def push_overlay(
            self, stamps: "list[tuple[str, str, float]] | tuple") -> int:
        """Stamp extra conductances onto the static matrix, reversibly.

        Each stamp ``(node_a, node_b, g)`` adds a conductance *g* between
        two existing nodes (either may be ground) — the rank-2 update
        that both paper fault models reduce to.  The touched matrix
        entries' prior values are recorded so :meth:`pop_overlay`
        restores them bit-exactly.

        Returns:
            The overlay stack depth after the push (a token the
            :meth:`overlay` context manager uses to enforce LIFO order).
        """
        saved: list[tuple[int, int, float]] = []
        ga = self._g_static
        for node_a, node_b, g in stamps:
            p = self.resolve_node(node_a)
            n = self.resolve_node(node_b)
            if p == n:
                raise AnalysisError(
                    f"overlay stamp between {node_a!r} and {node_b!r} "
                    "collapses to one node")
            for i, j in ((p, p), (p, n), (n, p), (n, n)):
                saved.append((i, j, ga[i, j]))
            ga[p, p] += g
            ga[n, n] += g
            ga[p, n] -= g
            ga[n, p] -= g
        self._overlays.append(saved)
        return len(self._overlays)

    def pop_overlay(self) -> None:
        """Undo the most recent :meth:`push_overlay` (exact restore)."""
        if not self._overlays:
            raise AnalysisError("overlay stack is empty")
        ga = self._g_static
        for i, j, value in reversed(self._overlays.pop()):
            ga[i, j] = value

    @property
    def overlay_depth(self) -> int:
        """Number of overlays currently applied."""
        return len(self._overlays)

    @contextmanager
    def overlay(self, stamps):
        """Context manager: push *stamps*, pop on exit, enforce LIFO."""
        token = self.push_overlay(stamps)
        try:
            yield self
        finally:
            if len(self._overlays) != token:
                raise AnalysisError(
                    f"overlay stack depth {len(self._overlays)} != {token} "
                    "at context exit (non-LIFO overlay use)")
            self.pop_overlay()

    # ------------------------------------------------------------------
    # source patching (stimulus changes without recompilation)
    # ------------------------------------------------------------------
    def has_source(self, name: str) -> bool:
        """True if *name* is an independent source of this circuit."""
        return name.lower() in self._source_slot

    def patch_source(self, name: str,
                     waveform: "Waveform | float") -> None:
        """Replace the waveform of one independent source in place.

        Only :meth:`source_vector` consults waveforms, so this is the
        complete stimulus change — no topology or matrix work.  Patches
        persist until overwritten or cleared; prefer
        :meth:`patched_source` for scoped use.
        """
        try:
            kind, pos = self._source_slot[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"no independent source {name!r} in compiled circuit "
                f"{self.circuit.name!r}") from None
        if kind == "v":
            row, element = self._vsources[pos]
            self._vsources[pos] = (row, replace(element, waveform=waveform))
        else:
            p, n, element = self._isources[pos]
            self._isources[pos] = (p, n, replace(element, waveform=waveform))

    def clear_source_patches(self) -> None:
        """Restore every source waveform to its compiled netlist value."""
        for key, (kind, pos) in self._source_slot.items():
            original = self.circuit.element(key)
            if kind == "v":
                row, _ = self._vsources[pos]
                self._vsources[pos] = (row, original)
            else:
                p, n, _ = self._isources[pos]
                self._isources[pos] = (p, n, original)

    @contextmanager
    def patched_source(self, name: str, waveform: "Waveform | float"):
        """Context manager: patch one source, restore the prior waveform
        on exit (nests correctly)."""
        try:
            kind, pos = self._source_slot[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"no independent source {name!r} in compiled circuit "
                f"{self.circuit.name!r}") from None
        bank = self._vsources if kind == "v" else self._isources
        previous = bank[pos]
        self.patch_source(name, waveform)
        try:
            yield self
        finally:
            bank[pos] = previous

    # ------------------------------------------------------------------
    # linearization (one Newton iteration's matrix/RHS)
    # ------------------------------------------------------------------
    def linearize(
        self,
        x: np.ndarray,
        b_sources: np.ndarray,
        gmin: float,
        cap_geq: np.ndarray | None = None,
        cap_ieq: np.ndarray | None = None,
        ind_geq: np.ndarray | None = None,
        ind_veq: np.ndarray | None = None,
        breakdown_voltage: float = float("inf"),
        breakdown_conductance: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the linearized MNA system around solution estimate *x*.

        Args:
            x: current solution estimate, shape (size,).
            b_sources: augmented source vector from :meth:`source_vector`.
            gmin: node-to-ground conductance added on every node diagonal.
            cap_geq / cap_ieq: companion conductance/current per capacitor
                (transient only; omit for DC where capacitors are open).
            ind_geq / ind_veq: companion resistance/voltage per inductor
                branch (transient only; omit for DC where inductors short).

        Returns:
            ``(G, b)`` dense views of shape (size, size) and (size,).
            Valid until the next call on this object.
        """
        ga = self._g_work
        np.copyto(ga, self._g_static)
        ba = self._b_work
        np.copyto(ba, b_sources)

        # gmin on node diagonals only.
        idx = np.arange(self.n_nodes)
        ga[idx, idx] += gmin

        xa = np.append(x, 0.0)  # augmented state (ground = 0)

        # Breakdown clamp: beyond +-breakdown_voltage a strong
        # conductance pulls the node back (junction-breakdown surrogate;
        # see SimOptions).  Piecewise-linear, so the Jacobian is exact.
        if np.isfinite(breakdown_voltage) and breakdown_conductance > 0.0:
            v = xa[:self.n_nodes]
            over = v > breakdown_voltage
            under = v < -breakdown_voltage
            if np.any(over) or np.any(under):
                gbd = breakdown_conductance
                clamp_idx = idx[over | under]
                ga[clamp_idx, clamp_idx] += gbd
                ba[idx[over]] += gbd * breakdown_voltage
                ba[idx[under]] -= gbd * breakdown_voltage

        if self.n_mosfets:
            d, g, s, b = self.mos_d, self.mos_g, self.mos_s, self.mos_b
            vgs = xa[g] - xa[s]
            vds = xa[d] - xa[s]
            vbs = xa[b] - xa[s]
            ids, gm, gds, gmb = mos_level1(
                vgs, vds, vbs, self.mos_sign, self.mos_beta, self.mos_vto,
                self.mos_lam, self.mos_gamma, self.mos_phi)
            ieq = ids - gm * vgs - gds * vds - gmb * vbs
            gsum = gm + gds + gmb
            np.add.at(ga, (d, g), gm)
            np.add.at(ga, (d, d), gds)
            np.add.at(ga, (d, b), gmb)
            np.add.at(ga, (d, s), -gsum)
            np.add.at(ga, (s, g), -gm)
            np.add.at(ga, (s, d), -gds)
            np.add.at(ga, (s, b), -gmb)
            np.add.at(ga, (s, s), gsum)
            np.add.at(ba, d, -ieq)
            np.add.at(ba, s, ieq)

        if self.n_diodes:
            a, c = self.dio_a, self.dio_c
            vd = xa[a] - xa[c]
            idio, gdio = diode_eval(vd, self.dio_is, self.dio_n)
            ieq = idio - gdio * vd
            np.add.at(ga, (a, a), gdio)
            np.add.at(ga, (a, c), -gdio)
            np.add.at(ga, (c, a), -gdio)
            np.add.at(ga, (c, c), gdio)
            np.add.at(ba, a, -ieq)
            np.add.at(ba, c, ieq)

        if cap_geq is not None and self.n_caps:
            p, n = self.cap_p, self.cap_n
            np.add.at(ga, (p, p), cap_geq)
            np.add.at(ga, (p, n), -cap_geq)
            np.add.at(ga, (n, p), -cap_geq)
            np.add.at(ga, (n, n), cap_geq)
            np.add.at(ba, p, cap_ieq)
            np.add.at(ba, n, -cap_ieq)

        if ind_geq is not None and self.n_inductors:
            r = self.ind_row
            np.add.at(ga, (r, r), -ind_geq)
            np.add.at(ba, r, ind_veq)

        # Neutralize anything stamped into the ground slot, then trim.
        return ga[:self.size, :self.size], ba[:self.size]

    def factorize(
        self,
        x: np.ndarray,
        b_sources: np.ndarray,
        gmin: float,
        breakdown_voltage: float = float("inf"),
        breakdown_conductance: float = 0.0,
    ) -> Factorization:
        """LU-factorize the DC Jacobian linearized at solution *x*.

        One factorization per (compiled base, stimulus) pair is the
        economy batched fault screening is built on: the returned
        :class:`Factorization` serves every Sherman-Morrison-Woodbury
        rank-k overlay solve at this operating point.  Any overlay
        currently pushed is part of the factorized matrix, so callers
        batching *against* overlays must factorize the clean base.
        """
        g, _ = self.linearize(
            x, b_sources, gmin,
            breakdown_voltage=breakdown_voltage,
            breakdown_conductance=breakdown_conductance)
        return Factorization(g)

    # ------------------------------------------------------------------
    # device current recovery (for measurements / companion updates)
    # ------------------------------------------------------------------
    def capacitor_voltages(self, x: np.ndarray) -> np.ndarray:
        """Voltage across every capacitor in the bank at solution *x*."""
        if not self.n_caps:
            return np.zeros(0)
        xa = np.append(x, 0.0)
        return xa[self.cap_p] - xa[self.cap_n]

    def small_signal_matrices(
            self, x_op: np.ndarray,
            gmin: float) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(G, C)`` for AC analysis, linearized at *x_op*.

        ``G`` is the Jacobian at the operating point; ``C`` collects
        capacitances (node-referred) and inductor branch terms such that
        the AC system is ``(G + j*2*pi*f*C) x = b_ac``.
        """
        b_zero = np.zeros(self.size + 1)
        g_view, _ = self.linearize(x_op, b_zero, gmin)
        g = g_view.copy()

        ca = np.zeros((self.size + 1, self.size + 1))
        if self.n_caps:
            p, n = self.cap_p, self.cap_n
            np.add.at(ca, (p, p), self.cap_value)
            np.add.at(ca, (p, n), -self.cap_value)
            np.add.at(ca, (n, p), -self.cap_value)
            np.add.at(ca, (n, n), self.cap_value)
        if self.n_inductors:
            r = self.ind_row
            np.add.at(ca, (r, r), -self.ind_value)
        return g, ca[:self.size, :self.size]

    # ------------------------------------------------------------------
    # solution unpacking
    # ------------------------------------------------------------------
    def solve_linear(self, g: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One-shot solve with a clear error on singular systems.

        Routed through the size-selected backend
        (:func:`repro.analysis.backend.select_backend`): large systems
        assemble CSC and solve via SuperLU, so a single Newton iteration
        on a 500-node macro costs ``O(nnz)``-ish instead of ``O(n^3)``;
        small systems keep the dense LAPACK path.
        """
        try:
            if select_backend(self.size) == BACKEND_SPARSE:
                return SparseLU(g).solve(b)
            return solve_dense(g, b)
        except SingularMatrixError as exc:
            raise SingularMatrixError(
                f"singular MNA matrix for circuit {self.circuit.name!r}: "
                f"{exc}") from exc

    def node_value(self, x: np.ndarray, node: str) -> float:
        """Voltage of *node* in solution vector *x* (0.0 for ground)."""
        i = self.resolve_node(node)
        return 0.0 if i == self._gnd else float(x[i])

    def branch_value(self, x: np.ndarray, element: str) -> float:
        """Branch current of a voltage-defined *element* in solution *x*.

        Case-insensitive on the element name, matching
        :meth:`~repro.analysis.results.OperatingPoint.i`.
        """
        wanted = element.lower()
        for name, i in self.branch_index.items():
            if name.lower() == wanted:
                return float(x[i])
        raise AnalysisError(
            f"element {element!r} has no branch current in compiled "
            f"circuit {self.circuit.name!r}")

    def node_voltages(self, x: np.ndarray) -> dict[str, float]:
        """Map a solution vector to named node voltages."""
        return {name: float(x[i]) for name, i in self.node_index.items()}

    def branch_currents(self, x: np.ndarray) -> dict[str, float]:
        """Map a solution vector to named branch currents."""
        return {name: float(x[i]) for name, i in self.branch_index.items()}
