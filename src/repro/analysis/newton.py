"""Newton-Raphson solver with homotopy escalation.

:func:`newton_solve` performs plain damped Newton on a compiled circuit;
:func:`robust_solve` escalates through the SPICE-style convergence aids —
gmin stepping, then source stepping — before raising
:class:`~repro.errors.ConvergenceError`.

Every iteration's linear solve goes through
:meth:`CompiledCircuit.solve_linear`, which routes by system size to the
dense-or-sparse backend of :mod:`repro.analysis.backend` — on the large
macro zoo each Newton iteration costs a SuperLU factorization of a
sparse CSC matrix instead of a dense ``O(n^3)`` LAPACK solve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.mna import CompiledCircuit
from repro.analysis.options import SimOptions
from repro.errors import ConvergenceError, SingularMatrixError

__all__ = ["NewtonOutcome", "newton_solve", "robust_solve",
           "absolute_tolerances", "step_converged"]


def absolute_tolerances(compiled: CompiledCircuit,
                        options: SimOptions) -> np.ndarray:
    """Per-unknown absolute convergence tolerances (voltage for node
    unknowns, current for branch unknowns), shape ``(size,)``.

    Shared by :func:`newton_solve` and the batched screening solver so
    both certify solutions against the *same* convergence contract."""
    abs_tol = np.empty(compiled.size)
    abs_tol[:compiled.n_nodes] = options.vntol
    abs_tol[compiled.n_nodes:] = options.abstol
    return abs_tol


def step_converged(dx: np.ndarray, x: np.ndarray, abs_tol: np.ndarray,
                   reltol: float) -> np.ndarray | bool:
    """Newton convergence test ``|dx_i| <= abs_tol_i + reltol*|x_i|``.

    Accepts 1-D vectors (returns a scalar bool) or ``(size, n)`` stacks
    of solution columns (returns a per-column bool array), so the
    batched screening path applies the exact single-solve criterion."""
    tol = abs_tol.reshape(-1, *([1] * (dx.ndim - 1))) + reltol * np.abs(x)
    return np.all(np.abs(dx) <= tol, axis=0)


@dataclass(frozen=True)
class NewtonOutcome:
    """Result of one Newton attempt."""

    x: np.ndarray
    iterations: int
    converged: bool


def newton_solve(
    compiled: CompiledCircuit,
    x0: np.ndarray,
    b_sources: np.ndarray,
    options: SimOptions,
    gmin: float | None = None,
    cap_geq: np.ndarray | None = None,
    cap_ieq: np.ndarray | None = None,
    ind_geq: np.ndarray | None = None,
    ind_veq: np.ndarray | None = None,
) -> NewtonOutcome:
    """Damped Newton iteration from initial estimate *x0*.

    Companion-model arrays are passed straight through to
    :meth:`CompiledCircuit.linearize`.  Convergence requires every solution
    component to move less than ``tol_i = vntol/abstol + reltol*|x_i|``
    between iterations (voltage tolerance for node unknowns, current
    tolerance for branch unknowns).

    Node-voltage updates are clamped to ``options.vstep_limit`` per
    iteration — a blunt but effective stand-in for SPICE's per-junction
    limiting on circuits of this size.
    """
    x = np.array(x0, dtype=float, copy=True)
    gmin_val = options.gmin if gmin is None else gmin
    abs_tol = absolute_tolerances(compiled, options)

    for iteration in range(1, options.max_iter + 1):
        g, b = compiled.linearize(
            x, b_sources, gmin_val,
            cap_geq=cap_geq, cap_ieq=cap_ieq,
            ind_geq=ind_geq, ind_veq=ind_veq,
            breakdown_voltage=options.breakdown_voltage,
            breakdown_conductance=options.breakdown_conductance)
        try:
            x_new = compiled.solve_linear(g, b)
        except SingularMatrixError:
            if iteration == 1:
                raise
            return NewtonOutcome(x, iteration, False)
        if not np.all(np.isfinite(x_new)):
            return NewtonOutcome(x, iteration, False)

        dx = x_new - x
        # Clamp voltage steps at nonlinear-device nodes only (junction
        # limiting surrogate); purely linear unknowns may jump freely.
        mask = compiled.nonlinear_node_mask
        if mask.any():
            vmax = float(np.max(np.abs(dx[mask])))
            if vmax > options.vstep_limit:
                dx *= options.vstep_limit / vmax
        x = x + dx

        if step_converged(dx, x, abs_tol, options.reltol):
            return NewtonOutcome(x, iteration, True)
    return NewtonOutcome(x, options.max_iter, False)


def robust_solve(
    compiled: CompiledCircuit,
    x0: np.ndarray,
    b_sources: np.ndarray,
    options: SimOptions,
    cap_geq: np.ndarray | None = None,
    cap_ieq: np.ndarray | None = None,
    ind_geq: np.ndarray | None = None,
    ind_veq: np.ndarray | None = None,
) -> tuple[np.ndarray, int, str]:
    """Newton with gmin-stepping and source-stepping fallbacks.

    Returns:
        ``(x, total_iterations, strategy)`` where strategy is one of
        ``"direct"``, ``"damped"``, ``"restart"``, ``"gmin"``,
        ``"source"``, ``"ptran"``.

    Raises:
        ConvergenceError: if every homotopy fails.
    """
    companion = dict(cap_geq=cap_geq, cap_ieq=cap_ieq,
                     ind_geq=ind_geq, ind_veq=ind_veq)

    outcome = newton_solve(compiled, x0, b_sources, options, **companion)
    total = outcome.iterations
    if outcome.converged:
        return outcome.x, total, "direct"

    # Damped retry: high-gain feedback loops make undamped Newton cycle;
    # a much smaller step limit with a larger iteration budget walks into
    # the solution instead.
    damped_options = replace(options, vstep_limit=options.vstep_limit / 8.0,
                             max_iter=options.max_iter * 4)
    outcome = newton_solve(compiled, x0, b_sources, damped_options,
                           **companion)
    total += outcome.iterations
    if outcome.converged:
        return outcome.x, total, "damped"

    # Cold restart: a warm start inherited from a neighbouring stimulus
    # or fault overlay can sit in the wrong basin, in which case the flat
    # start is *better* than x0.  Retrying from zero before the homotopy
    # ladder guarantees warm-start reuse never degrades robustness below
    # the cold-start envelope.  The ladder itself still runs warm-first
    # (the pre-engine behaviour), falling back to a cold ladder pass, so
    # neither envelope is lost.
    x0 = np.asarray(x0, dtype=float)
    warm_started = bool(np.any(x0 != 0.0))
    if warm_started:
        cold = np.zeros(compiled.size)
        outcome = newton_solve(compiled, cold, b_sources, options,
                               **companion)
        total += outcome.iterations
        if outcome.converged:
            return outcome.x, total, "restart"
        outcome = newton_solve(compiled, cold, b_sources, damped_options,
                               **companion)
        total += outcome.iterations
        if outcome.converged:
            return outcome.x, total, "restart"

    def attempt(x_start, b, gmin):
        """One rung: plain Newton, then the damped variant."""
        nonlocal total
        rung = newton_solve(compiled, x_start, b, options, gmin=gmin,
                            **companion)
        total += rung.iterations
        if rung.converged:
            return rung
        rung = newton_solve(compiled, x_start, b, damped_options,
                            gmin=gmin, **companion)
        total += rung.iterations
        return rung

    # gmin stepping: start heavily damped toward ground, relax to gmin.
    # Warm-first (the original behaviour), then a cold ladder pass for
    # warm-started callers whose estimate poisoned the first pass.
    ladder = tuple(options.gmin_steps) + (options.gmin,)
    ladder_starts = [x0] + ([np.zeros(compiled.size)] if warm_started
                            else [])
    for start in ladder_starts:
        x = np.array(start, dtype=float, copy=True)
        ok = True
        for gmin in ladder:
            outcome = attempt(x, b_sources, gmin)
            if not outcome.converged:
                ok = False
                break
            x = outcome.x
        if ok:
            return x, total, "gmin"

    # Combined source+gmin stepping: ramp the sources from zero while a
    # raised gmin (1 uS) keeps otherwise-floating nodes tame (with all
    # transistors off, a current source into a high-impedance node would
    # otherwise demand kilovolt iterates), then walk gmin back down at
    # full drive.  The source ramp is adaptive: a failed step is retried
    # at half size.
    ramp_gmin = max(1e-6, options.gmin)
    x = np.zeros(compiled.size)
    scale = 0.0
    step = 1.0 / options.source_steps
    min_step = step / 256.0
    while scale < 1.0:
        target = min(scale + step, 1.0)
        outcome = attempt(x, b_sources * target, ramp_gmin)
        if outcome.converged:
            x = outcome.x
            scale = target
            step = min(step * 1.5, 0.25)
        else:
            step /= 2.0
            if step < min_step:
                break  # stalled; fall through to pseudo-transient

    # Relax gmin back to the target at full drive.
    source_failure: str | None = None
    if scale >= 1.0:
        gmin = ramp_gmin
        while gmin > options.gmin:
            gmin = max(gmin * 1e-1, options.gmin)
            outcome = attempt(x, b_sources, gmin)
            if not outcome.converged:
                source_failure = f"gmin relaxation diverged at {gmin:.2g}"
                break
            x = outcome.x
        if source_failure is None:
            return x, total, "source"

    # Last resort: pseudo-transient continuation.  The circuit's real
    # reactive elements damp the multi-loop feedback that makes static
    # Newton cycle; integrating from a cold start with growing steps
    # settles into the DC solution, which a final Newton then polishes.
    x, extra = _pseudo_transient(compiled, b_sources, options)
    total += extra
    outcome = newton_solve(compiled, x, b_sources, options, **companion)
    total += outcome.iterations
    if not outcome.converged:
        outcome = newton_solve(compiled, x, b_sources, damped_options,
                               **companion)
        total += outcome.iterations
    if outcome.converged:
        return outcome.x, total, "ptran"
    raise ConvergenceError(
        f"all homotopies failed for circuit {compiled.circuit.name!r} "
        f"({source_failure or 'source stepping stalled'}; pseudo-"
        f"transient did not settle; {total} total Newton iterations)")


def _pseudo_transient(compiled: CompiledCircuit, b_sources: np.ndarray,
                      options: SimOptions,
                      n_steps: int = 400) -> tuple[np.ndarray, int]:
    """Integrate toward DC with the circuit's own capacitors.

    Backward-Euler steps with a geometrically growing dt from a cold
    start.  Capacitor companion conductances (C/dt) stabilize the
    Jacobian exactly where static Newton cycles.  Inductors are treated
    as DC shorts (their static branch rows already enforce v = 0), which
    is the steady state anyway.  Returns the final state and the Newton
    iterations spent; the caller polishes with a true static solve.
    """
    x = np.zeros(compiled.size)
    cap_v = np.zeros(compiled.n_caps)
    if compiled.n_caps == 0:
        return x, 0
    # Start near the smallest circuit time constant, grow ~5 decades.
    dt = 1e-10
    growth = 10.0 ** (5.0 / n_steps)
    total = 0
    for _ in range(n_steps):
        geq = compiled.cap_value / dt
        ieq = geq * cap_v
        outcome = newton_solve(compiled, x, b_sources, options,
                               cap_geq=geq, cap_ieq=ieq)
        total += outcome.iterations
        if outcome.converged:
            x = outcome.x
            cap_v = compiled.capacitor_voltages(x)
            dt *= growth
        else:
            dt *= 0.25
    return x, total
