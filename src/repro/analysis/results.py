"""Result containers returned by the analyses.

All containers expose node voltages by *name* (``result.v("vout")``) and
branch currents of voltage-defined elements by element name
(``result.i("VDD")``), hiding the MNA index bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError

__all__ = ["OperatingPoint", "SweepResult", "TransientResult", "ACResult"]


@dataclass(frozen=True)
class OperatingPoint:
    """Converged DC solution.

    Attributes:
        node_voltages: node name -> voltage [V] (ground omitted).
        branch_currents: element name -> branch current [A] for voltage
            sources, inductors and VCVS (positive from ``n1``/``np``
            through the element to ``n2``/``nn``).
        iterations: Newton iterations spent (including homotopy restarts).
        strategy: which homotopy produced convergence
            (``"direct"``, ``"gmin"``, ``"source"``).
        x: raw MNA solution vector (nodes then branches).
    """

    node_voltages: dict[str, float]
    branch_currents: dict[str, float]
    iterations: int
    strategy: str
    x: np.ndarray

    def v(self, node: str) -> float:
        """Voltage of *node* (0.0 for ground)."""
        if node.lower() in ("0", "gnd"):
            return 0.0
        try:
            return self.node_voltages[node]
        except KeyError:
            raise AnalysisError(f"unknown node {node!r}") from None

    def i(self, element: str) -> float:
        """Branch current of a voltage-defined element."""
        for key, value in self.branch_currents.items():
            if key.lower() == element.lower():
                return value
        raise AnalysisError(
            f"element {element!r} has no branch current "
            "(only voltage sources, inductors and VCVS do)")


@dataclass(frozen=True)
class SweepResult:
    """DC sweep: one operating point per sweep value."""

    sweep_name: str
    values: np.ndarray
    points: tuple[OperatingPoint, ...]

    def v(self, node: str) -> np.ndarray:
        """Voltage of *node* across the sweep."""
        return np.array([p.v(node) for p in self.points])

    def i(self, element: str) -> np.ndarray:
        """Branch current of *element* across the sweep."""
        return np.array([p.i(element) for p in self.points])

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class TransientResult:
    """Fixed-step transient waveforms.

    Attributes:
        t: sample times [s], shape (n,).
        node_voltages: node name -> waveform array, shape (n,).
        branch_currents: element name -> branch current waveform.
        newton_iterations: total Newton iterations spent.
    """

    t: np.ndarray
    node_voltages: dict[str, np.ndarray]
    branch_currents: dict[str, np.ndarray]
    newton_iterations: int = 0

    def v(self, node: str) -> np.ndarray:
        """Waveform of *node* (zeros for ground)."""
        if node.lower() in ("0", "gnd"):
            return np.zeros_like(self.t)
        try:
            return self.node_voltages[node]
        except KeyError:
            raise AnalysisError(f"unknown node {node!r}") from None

    def i(self, element: str) -> np.ndarray:
        """Branch-current waveform of a voltage-defined element."""
        for key, value in self.branch_currents.items():
            if key.lower() == element.lower():
                return value
        raise AnalysisError(
            f"element {element!r} has no branch current waveform")

    @property
    def dt(self) -> float:
        """Fixed integration/sampling step [s]."""
        return float(self.t[1] - self.t[0]) if len(self.t) > 1 else 0.0

    def __len__(self) -> int:
        return len(self.t)


@dataclass(frozen=True)
class ACResult:
    """Small-signal frequency sweep (complex phasors, unit stimulus)."""

    freqs: np.ndarray
    node_phasors: dict[str, np.ndarray] = field(default_factory=dict)

    def v(self, node: str) -> np.ndarray:
        """Complex node phasor across frequency."""
        if node.lower() in ("0", "gnd"):
            return np.zeros_like(self.freqs, dtype=complex)
        try:
            return self.node_phasors[node]
        except KeyError:
            raise AnalysisError(f"unknown node {node!r}") from None

    def mag_db(self, node: str) -> np.ndarray:
        """Magnitude response in dB."""
        return 20.0 * np.log10(np.maximum(np.abs(self.v(node)), 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        """Phase response in degrees."""
        return np.angle(self.v(node), deg=True)
