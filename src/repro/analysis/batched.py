"""Batched overlay-fault solves via Sherman-Morrison-Woodbury updates.

Candidate-fault screening evaluates one fault *family* — e.g. all 45
bridging faults of the IV-converter, which share one compiled base — at a
fixed operating point.  The PR 2 overlay path charges every fault a full
warm-started Newton solve; this module charges the whole family **one**
LU factorization of the nominal Jacobian (:meth:`CompiledCircuit.factorize`)
and serves each fault as a rank-k update of it:

1. **SMW screen** — every fault is a set of conductance stamps
   ``Delta_f = U_f C_f U_f^T`` on the factorized system ``G0 x = b0``, so
   its linearized solution comes from the Woodbury identity

       (G0 + U C U^T)^-1 = G0^-1 - G0^-1 U (C^-1 + U^T G0^-1 U)^-1 U^T G0^-1

   at the cost of k extra triangular solves — *no* per-fault dense solve,
   and all families' ``U`` columns go through one stacked solve.

2. **Chord certification** — the linear solution is only trustworthy
   where the circuit behaves linearly.  A few frozen-Jacobian (chord)
   iterations, applied through the same SMW identity and vectorized
   across the whole family (device models evaluate on ``(devices,
   faults)`` arrays), drive the *true nonlinear* residual down; a fault
   whose step passes the exact Newton convergence test of
   :func:`repro.analysis.newton.step_converged` is certified — its
   verdict provably matches what a full Newton solve would return.

3. **Batched Newton confirm** — overlays too nonlinear for the frozen
   Jacobian (a bridge that flips a MOSFET's operating region) fall
   through to true per-fault Newton, still batched: stacked Jacobians,
   one LAPACK call per iteration for the whole remaining set.

Faults that even batched Newton cannot converge are reported as
``"failed"`` and the caller (:meth:`SimulationEngine.screen_faults`)
falls back to the full per-fault robust-Newton overlay path, so the
screen can only ever *accelerate* — never change — a detection verdict.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.backend import (
    BACKEND_DENSE,
    solve_columns,
    solve_dense,
    static_operator,
)
from repro.analysis.mna import CompiledCircuit, Factorization
from repro.analysis.newton import absolute_tolerances, step_converged
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.circuit.diode import diode_eval
from repro.circuit.mosfet import mos_level1
from repro.errors import AnalysisError, SingularMatrixError

__all__ = ["ScreenedSolution", "BatchedOverlaySolver",
           "MonteCarloOverlaySolver"]

#: Screening statuses, in escalation order.
STATUS_SCREENED = "screened"    # certified by SMW + chord iterations
STATUS_CONFIRMED = "confirmed"  # needed the batched Newton confirm
STATUS_FAILED = "failed"        # caller must run the robust per-fault path


@dataclass(frozen=True)
class ScreenedSolution:
    """Outcome of screening one overlay fault.

    Attributes:
        x: solution vector — converged to Newton tolerance for
            ``"screened"``/``"confirmed"``, the best available iterate
            (a warm start for the fallback solve) for ``"failed"``.
        status: ``"screened"``, ``"confirmed"`` or ``"failed"``.
        iterations: chord + Newton iterations spent on this fault.
        linear_step: infinity-norm of the SMW linear correction at the
            fault's nonlinear nodes — the nonlinearity gauge (small
            values mean the linear screen alone was nearly exact).
    """

    x: np.ndarray
    status: str
    iterations: int
    linear_step: float

    @property
    def converged(self) -> bool:
        """True when *x* satisfies the Newton convergence contract."""
        return self.status != STATUS_FAILED


class _StampStack:
    """Flattened per-fault conductance stamps, ready for vector math.

    Every stamp of every fault becomes one entry of four parallel arrays
    (augmented node indices ``p``/``n``, conductance ``g`` and the fault
    column it belongs to), so residual and Jacobian assembly vectorize
    over arbitrary per-fault ranks.

    ``woodbury=False`` skips the SMW apparatus (the stacked ``Z``
    columns and capacitance inverses) for stacks that only assemble
    residuals/Jacobians, e.g. the batched Newton confirm stage.

    ``allow_empty=True`` accepts columns with no stamps at all (their
    Woodbury correction is the identity).  Monte Carlo screening needs
    this for fault-free process-sample columns whose perturbation
    carries no resistive part.
    """

    def __init__(self, compiled: CompiledCircuit,
                 stamp_sets: Sequence[Sequence[tuple[str, str, float]]],
                 factorization: Factorization, *,
                 woodbury: bool = True, allow_empty: bool = False) -> None:
        size = compiled.size
        self.n_faults = len(stamp_sets)
        sp: list[int] = []
        sn: list[int] = []
        sg: list[float] = []
        scol: list[int] = []
        offsets = [0]
        for col, stamps in enumerate(stamp_sets):
            if not stamps and not allow_empty:
                raise AnalysisError(
                    f"fault column {col} carries no overlay stamps")
            for node_a, node_b, g in stamps:
                p = compiled.resolve_node(node_a)
                n = compiled.resolve_node(node_b)
                if p == n:
                    raise AnalysisError(
                        f"overlay stamp between {node_a!r} and {node_b!r} "
                        "collapses to one node")
                sp.append(p)
                sn.append(n)
                sg.append(float(g))
                scol.append(col)
            offsets.append(len(sp))
        self.sp = np.array(sp, dtype=np.intp)
        self.sn = np.array(sn, dtype=np.intp)
        self.sg = np.array(sg, dtype=float)
        self.scol = np.array(scol, dtype=np.intp)
        self.offsets = np.array(offsets, dtype=np.intp)
        self.woodbury = woodbury
        if not woodbury:
            self.singular = np.zeros(self.n_faults, dtype=bool)
            return

        # One stacked triangular solve covers every stamp of every fault:
        # U holds one incidence column (e_p - e_n, ground dropped) per
        # stamp, Z = G0^-1 U feeds both the Woodbury capacitance matrices
        # and every later inverse application.
        u_all = np.zeros((size, len(sp)))
        in_p = self.sp < size
        in_n = self.sn < size
        u_all[self.sp[in_p], np.flatnonzero(in_p)] += 1.0
        u_all[self.sn[in_n], np.flatnonzero(in_n)] -= 1.0
        self.u_all = u_all
        self.z_all = factorization.solve(u_all)

        # Per-fault Woodbury capacitance factor-and-solve: instead of an
        # explicit (C^-1 + U^T Z)^-1 — the last dense inverses that used
        # to live on the hot path — precombine M = Z (C^-1 + U^T Z)^-1
        # via transposed solves, so every later inverse application is a
        # single small matmul.  A singular capacitance marks the fault
        # unscreenable up front, exactly as before.
        ranks = np.diff(self.offsets)
        self.rank1 = bool(self.n_faults and np.all(ranks == 1))
        self.singular = np.zeros(self.n_faults, dtype=bool)
        self.cap_m3: np.ndarray | None = None
        if self.rank1:
            duz = (self._gather(self.z_all, self.sp, np.arange(len(sp)))
                   - self._gather(self.z_all, self.sn, np.arange(len(sp))))
            denom = 1.0 / self.sg + duz
            self.singular = ~np.isfinite(denom) | (np.abs(denom) < 1e-300)
            with np.errstate(divide="ignore"):
                self.cap_inv_1 = np.where(self.singular, 0.0, 1.0 / denom)
            self.cap_m: list[np.ndarray | None] = []
            return
        self.cap_m = []
        uniform = bool(self.n_faults and ranks[0] > 1
                       and np.all(ranks == ranks[0]))
        if uniform:
            # Uniform rank k: one batched solve serves every column
            # (the Monte Carlo layout — each column carries the same
            # resistor-delta stamps plus at most one fault stamp).
            k = int(ranks[0])
            u3 = self.u_all.reshape(size, self.n_faults, k)
            z3 = self.z_all.reshape(size, self.n_faults, k)
            cap = np.einsum("scx,scy->cxy", u3, z3)
            diag = np.arange(k)
            with np.errstate(divide="ignore"):
                cap[:, diag, diag] += 1.0 / self.sg.reshape(self.n_faults, k)
            self.cap_m3 = None  # per-column loop unless the solve lands
            if np.all(np.isfinite(cap)):
                try:
                    # M3[:, c, :] = Z3[:, c, :] @ cap[c]^-1, one batched
                    # LAPACK solve on cap^T instead of explicit inverses.
                    m3t = solve_dense(np.swapaxes(cap, 1, 2),
                                      z3.transpose(1, 2, 0))
                except SingularMatrixError:
                    pass
                else:
                    self.cap_m3 = m3t.transpose(2, 0, 1)
                    self.u3 = u3
                    return
        for col in range(self.n_faults):
            lo, hi = self.offsets[col], self.offsets[col + 1]
            u = self.u_all[:, lo:hi]
            z = self.z_all[:, lo:hi]
            cap = np.diag(1.0 / self.sg[lo:hi]) + u.T @ z
            try:
                # M = Z cap^-1 by factor-and-solve on cap^T.
                self.cap_m.append(solve_dense(cap.T, z.T).T)
            except SingularMatrixError:
                self.cap_m.append(None)
                self.singular[col] = True

    @staticmethod
    def _gather(y: np.ndarray, rows: np.ndarray,
                cols: np.ndarray) -> np.ndarray:
        """``y[rows, cols]`` with the augmented ground row reading 0."""
        ya = np.vstack([y, np.zeros((1, y.shape[1]))])
        clipped = np.minimum(rows, y.shape[0])
        return ya[clipped, cols]

    def add_residual(self, r_aug: np.ndarray, xa: np.ndarray) -> None:
        """Accumulate the stamp currents into augmented residuals."""
        du = xa[self.sp, self.scol] - xa[self.sn, self.scol]
        contrib = self.sg * du
        np.add.at(r_aug, (self.sp, self.scol), contrib)
        np.add.at(r_aug, (self.sn, self.scol), -contrib)

    def add_jacobian(self, ga: np.ndarray) -> None:
        """Accumulate the stamps into stacked augmented Jacobians."""
        np.add.at(ga, (self.scol, self.sp, self.sp), self.sg)
        np.add.at(ga, (self.scol, self.sn, self.sn), self.sg)
        np.add.at(ga, (self.scol, self.sp, self.sn), -self.sg)
        np.add.at(ga, (self.scol, self.sn, self.sp), -self.sg)

    def apply_inverse(self, y: np.ndarray) -> np.ndarray:
        """Per-column ``(G0 + Delta_f)^-1 (G0 y_f)`` via SMW.

        *y* holds ``G0^-1 r_f`` columns; the Woodbury correction turns
        each into the frozen faulty-Jacobian inverse application without
        any dense solve.  Columns of singular-capacitance faults pass
        through uncorrected (they are already marked unscreenable).
        """
        if self.rank1:
            cols = np.arange(self.n_faults)
            stamp_idx = self.offsets[:-1]
            duy = (self._gather(y, self.sp[stamp_idx], cols)
                   - self._gather(y, self.sn[stamp_idx], cols))
            return y - self.z_all[:, stamp_idx] * (duy * self.cap_inv_1)
        if self.cap_m3 is not None:
            w = np.einsum("sck,sc->ck", self.u3, y)
            return y - np.einsum("sck,ck->sc", self.cap_m3, w)
        out = y.copy()
        for col in range(self.n_faults):
            if self.cap_m[col] is None:
                continue
            lo, hi = self.offsets[col], self.offsets[col + 1]
            w = self.u_all[:, lo:hi].T @ y[:, col]
            out[:, col] -= self.cap_m[col] @ w
        return out


class BatchedOverlaySolver:
    """Screens overlay-fault families at one (base, stimulus) pair.

    Args:
        compiled: the clean compiled base (no overlay may be pushed; the
            solver snapshots its static matrix, so later overlay use of
            *compiled* does not disturb an existing solver).
        x_op: converged nominal operating point at the target stimulus.
        b_sources: augmented source vector at that stimulus
            (:meth:`CompiledCircuit.source_vector` with the stimulus
            patched in).
        options: simulator options — convergence tolerances and step
            limits are shared with :func:`newton_solve`, so certification
            uses the exact single-solve contract.
        factorization: optional pre-built factorization of the Jacobian
            at *x_op* (one is computed otherwise).
        max_chord_iter: frozen-Jacobian certification budget.  Chord
            iterations cost one vectorized device sweep each and certify
            the near-linear part of the family; overlays still moving
            after this budget escalate to batched Newton.  The default
            is deliberately tight — a fault the frozen Jacobian cannot
            settle in two sweeps converges faster under true Newton than
            under many linearly-converging chord steps.
        max_newton_iter: batched true-Newton budget before a fault is
            reported ``"failed"`` (robust per-fault fallback territory).
            Defaults to ``options.max_iter`` so the confirm stage has
            exactly the budget of a plain :func:`newton_solve` attempt.
        chord_trust: infinity-norm bound [V] on how far a chord-certified
            solution may sit from the nominal linear solution when the
            iteration started from the SMW screen (rather than from a
            caller-provided warm estimate).  Strongly-shifted operating
            points can be multi-stable, and a per-fault solve starting
            cold may select a different branch — such faults are sent to
            the Newton confirm stage, which reproduces the per-fault
            path's own starting estimate and therefore its branch choice.
    """

    def __init__(self, compiled: CompiledCircuit,
                 x_op: np.ndarray, b_sources: np.ndarray,
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 factorization: Factorization | None = None,
                 max_chord_iter: int = 2,
                 max_newton_iter: int | None = None,
                 chord_trust: float = 0.2) -> None:
        if compiled.overlay_depth:
            raise AnalysisError(
                "BatchedOverlaySolver needs the clean base: "
                f"{compiled.overlay_depth} overlay(s) currently pushed")
        self.compiled = compiled
        self.options = options
        self.max_chord_iter = max_chord_iter
        self.max_newton_iter = (options.max_iter if max_newton_iter is None
                                else max_newton_iter)
        self.chord_trust = chord_trust
        self.x_op = np.array(x_op, dtype=float)
        self.b_aug = np.array(b_sources, dtype=float)

        g0, b0 = compiled.linearize(
            self.x_op, self.b_aug, options.gmin,
            breakdown_voltage=options.breakdown_voltage,
            breakdown_conductance=options.breakdown_conductance)
        self.b0 = b0.copy()
        self.factorization = (factorization if factorization is not None
                              else Factorization(g0))
        #: Backend kind serving this solver ("dense" or "sparse") — taken
        #: from the factorization so every stage (SMW solves, chord
        #: residual matmuls, batched Newton columns) routes consistently.
        self.backend = getattr(self.factorization, "backend", BACKEND_DENSE)
        #: Linear nominal solution (== the Newton iterate after x_op).
        self.x_base = self.factorization.solve(self.b0)

        # Snapshots for batched residual/Jacobian assembly: the static
        # matrix is copied so overlays pushed on the base later (e.g. by
        # the fallback path) cannot corrupt this solver.  Under the
        # sparse backend the residual matmul runs on a CSR copy, making
        # the per-chord-sweep cost O(nnz * faults) instead of
        # O(n^2 * faults); the dense snapshot stays for stacked-Jacobian
        # assembly in the Newton confirm stage.
        self._a_static = compiled._g_static.copy()
        self._a_op = static_operator(self._a_static, self.backend)
        self._abs_tol = absolute_tolerances(compiled, options)
        self._nl_mask = compiled.nonlinear_node_mask
        # Stamp stacks are pure functions of (stamps, factorization);
        # repeated screens of the same family reuse them.
        self._stack_cache: dict[tuple, _StampStack] = {}
        #: Subclasses may permit stamp-free columns (identity Woodbury).
        self._allow_empty_stamps = False
        # Per-fault warm memory at THIS stimulus.  Engine warm-start
        # slots are shared across stimuli, so on alternating stimulus
        # points they always hold the *other* point's solution; the
        # solver is pinned to one (base, stimulus) pair and can remember
        # each fault's own converged solution here instead.
        self._warm_memory: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # batched nonlinear assembly
    # ------------------------------------------------------------------
    def _assemble(self, x: np.ndarray, stack: _StampStack,
                  jacobian: bool, cols: np.ndarray | None = None,
                  gmin: float | None = None,
                  b_scale: np.ndarray | None = None,
                  cap_geq: np.ndarray | None = None,
                  cap_ieq: np.ndarray | None = None,
                  ) -> tuple[np.ndarray, np.ndarray | None]:
        """True residuals (and optionally stacked Jacobians) per column.

        The residual of column *f* is the KCL/KVL defect of the faulty
        nonlinear system ``r_f(x_f) = A x_f + i_devices(x_f) - b``: the
        companion-linearization terms of :meth:`CompiledCircuit.linearize`
        cancel exactly, so a root of *r* is precisely a fixed point of
        :func:`newton_solve` on the overlaid circuit.  One device-model
        evaluation on ``(devices, faults)`` arrays serves both outputs.

        *cols* carries the global column indices of ``x``'s columns when
        the caller works on a subset (the Newton confirm stage); the
        per-column device-parameter hook (:meth:`_mos_params`) uses it to
        slice its arrays — the nominal base implementation ignores it.
        *gmin* overrides the node-to-ground conductance for homotopy
        retries; ``None`` keeps ``options.gmin``.  *b_scale* scales the
        source vector per column (source-stepping ramps); *cap_geq* /
        *cap_ieq* are per-column capacitor companion arrays of shape
        ``(n_caps, n_columns)`` (pseudo-transient continuation), exactly
        the companion model :meth:`CompiledCircuit.linearize` applies.
        """
        compiled = self.compiled
        options = self.options
        if gmin is None:
            gmin = options.gmin
        size = compiled.size
        n_nodes = compiled.n_nodes
        n_faults = x.shape[1]
        xa = np.vstack([x, np.zeros((1, n_faults))])

        r = self._a_op @ xa
        if b_scale is None:
            r -= self.b_aug[:, None]
        else:
            r -= self.b_aug[:, None] * b_scale[None, :]
        r[:n_nodes] += gmin * xa[:n_nodes]
        stack.add_residual(r, xa)

        ga = None
        if jacobian:
            ga = np.repeat(self._a_static[None, :, :], n_faults, axis=0)
            stack.add_jacobian(ga)
            diag = np.arange(n_nodes)
            ga[:, diag, diag] += gmin

        bv = options.breakdown_voltage
        gbd = options.breakdown_conductance
        if np.isfinite(bv) and gbd > 0.0:
            v = xa[:n_nodes]
            r[:n_nodes] += gbd * (np.maximum(v - bv, 0.0)
                                  + np.minimum(v + bv, 0.0))
            if ga is not None:
                clamped = np.abs(v) > bv
                fi, ni = np.nonzero(clamped.T)
                np.add.at(ga, (fi, ni, ni), gbd)

        fi = np.arange(n_faults)
        if cap_geq is not None and compiled.n_caps:
            p = compiled.cap_p[:, None]
            n = compiled.cap_n[:, None]
            ci = fi[None, :]
            vcap = xa[compiled.cap_p] - xa[compiled.cap_n]
            icap = cap_geq * vcap - cap_ieq
            np.add.at(r, (np.broadcast_to(p, icap.shape), ci), icap)
            np.add.at(r, (np.broadcast_to(n, icap.shape), ci), -icap)
            if ga is not None:
                for rows, against, val in (
                        (p, p, cap_geq), (p, n, -cap_geq),
                        (n, p, -cap_geq), (n, n, cap_geq)):
                    np.add.at(
                        ga,
                        (np.broadcast_to(ci, val.shape),
                         np.broadcast_to(rows, val.shape),
                         np.broadcast_to(against, val.shape)), val)

        if compiled.n_mosfets:
            d = compiled.mos_d[:, None]
            g = compiled.mos_g[:, None]
            s = compiled.mos_s[:, None]
            b = compiled.mos_b[:, None]
            ci = fi[None, :]
            vgs = xa[compiled.mos_g] - xa[compiled.mos_s]
            vds = xa[compiled.mos_d] - xa[compiled.mos_s]
            vbs = xa[compiled.mos_b] - xa[compiled.mos_s]
            mos_beta, mos_vto = self._mos_params(cols)
            ids, gm, gds, gmb = mos_level1(
                vgs, vds, vbs, compiled.mos_sign[:, None],
                mos_beta, mos_vto,
                compiled.mos_lam[:, None], compiled.mos_gamma[:, None],
                compiled.mos_phi[:, None])
            np.add.at(r, (np.broadcast_to(d, ids.shape), ci), ids)
            np.add.at(r, (np.broadcast_to(s, ids.shape), ci), -ids)
            if ga is not None:
                gsum = gm + gds + gmb
                for rows, against, val in (
                        (d, g, gm), (d, d, gds), (d, b, gmb), (d, s, -gsum),
                        (s, g, -gm), (s, d, -gds), (s, b, -gmb),
                        (s, s, gsum)):
                    np.add.at(
                        ga,
                        (np.broadcast_to(ci, val.shape),
                         np.broadcast_to(rows, val.shape),
                         np.broadcast_to(against, val.shape)), val)

        if compiled.n_diodes:
            a = compiled.dio_a[:, None]
            c = compiled.dio_c[:, None]
            ci = fi[None, :]
            vd = xa[compiled.dio_a] - xa[compiled.dio_c]
            idio, gdio = diode_eval(vd, compiled.dio_is[:, None],
                                    compiled.dio_n[:, None])
            np.add.at(r, (np.broadcast_to(a, idio.shape), ci), idio)
            np.add.at(r, (np.broadcast_to(c, idio.shape), ci), -idio)
            if ga is not None:
                for rows, against, val in (
                        (a, a, gdio), (a, c, -gdio),
                        (c, a, -gdio), (c, c, gdio)):
                    np.add.at(
                        ga,
                        (np.broadcast_to(ci, val.shape),
                         np.broadcast_to(rows, val.shape),
                         np.broadcast_to(against, val.shape)), val)

        if ga is not None:
            ga = ga[:, :size, :size]
        return r[:size], ga

    def _mos_params(self, cols: np.ndarray | None,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-column MOSFET (beta, vto) arrays for :meth:`_assemble`.

        The base solver serves every column from the nominal model cards;
        :class:`MonteCarloOverlaySolver` overrides this to inject
        process-perturbed parameters per column.
        """
        compiled = self.compiled
        return compiled.mos_beta[:, None], compiled.mos_vto[:, None]

    def _accept_chord(self, x: np.ndarray, stamp_sets,
                      certified: np.ndarray) -> np.ndarray:
        """Columns whose chord certificate is accepted as final.

        The base solver trusts the chord step-size test as-is: its
        columns differ from the nominal system only by their stamps,
        which the chord operator carries exactly.
        """
        return certified

    def _limit_steps(self, dx: np.ndarray,
                     limit: float | None = None) -> np.ndarray:
        """Per-column junction-limiting clamp (same rule as newton_solve)."""
        mask = self._nl_mask
        if not mask.any():
            return dx
        vmax = np.max(np.abs(dx[mask]), axis=0)
        if limit is None:
            limit = self.options.vstep_limit
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(vmax > limit, limit / np.maximum(vmax, 1e-300),
                             1.0)
        return dx * scale

    def _stack_for(self, stamp_sets,
                   fault_keys: tuple[tuple, ...] | None = None, *,
                   woodbury: bool = True) -> _StampStack:
        """Stamp stack for *stamp_sets*, LRU-cached on stamp content.

        A cached Woodbury-capable stack satisfies any request; a
        residual-only request builds (and caches) the light variant.
        """
        if fault_keys is None:
            fault_keys = tuple(
                tuple(map(tuple, stamps)) for stamps in stamp_sets)
        stack = self._stack_cache.get(fault_keys)
        if stack is None or (woodbury and not stack.woodbury):
            stack = _StampStack(self.compiled, stamp_sets,
                                self.factorization, woodbury=woodbury,
                                allow_empty=self._allow_empty_stamps)
            while len(self._stack_cache) >= 8:
                self._stack_cache.pop(next(iter(self._stack_cache)))
        else:
            self._stack_cache.pop(fault_keys)  # refresh LRU recency
        self._stack_cache[fault_keys] = stack
        return stack

    def _remember(self, fault_key: tuple, x: np.ndarray) -> None:
        """Store one fault's converged solution (bounded memory)."""
        if len(self._warm_memory) >= 4096:
            self._warm_memory.pop(next(iter(self._warm_memory)))
        self._warm_memory[fault_key] = x

    # ------------------------------------------------------------------
    # screening driver
    # ------------------------------------------------------------------
    def screen(self, stamp_sets: Sequence[Sequence[tuple[str, str, float]]],
               warm: Sequence[np.ndarray | None] | None = None,
               *, memory: bool = True) -> list[ScreenedSolution]:
        """Screen one stamp set per fault; returns one solution each.

        Stamp tuples are ``(node_a, node_b, conductance)`` exactly as
        accepted by :meth:`CompiledCircuit.push_overlay` (the engine
        feeds :meth:`FaultModel.stamp_delta` output straight through).

        Args:
            stamp_sets: per-fault stamp collections.
            warm: optional per-fault warm solution estimates — pass the
                same warm-start slots the per-fault overlay path uses so
                both paths track identical solution branches on
                multi-stable circuits.  ``None`` entries start from the
                SMW linear solution (chord) / a cold start (Newton
                confirm), exactly as a fresh per-fault solve would.
            memory: when True (default) the solver reads and updates its
                own per-fault solution memory at this stimulus, which
                beats any caller-provided estimate.  Canonical-mode
                callers (the serving layer) pass False so repeated
                screens stay bitwise equal to the first one: the iterate
                then depends only on *warm* and the stamps.
        """
        n_faults = len(stamp_sets)
        if n_faults == 0:
            return []
        fault_keys = tuple(
            tuple(map(tuple, stamps)) for stamps in stamp_sets)
        stack = self._stack_for(stamp_sets, fault_keys)
        warm_list = list(warm) if warm is not None else [None] * n_faults
        if len(warm_list) != n_faults:
            raise AnalysisError(
                f"{len(warm_list)} warm estimates for {n_faults} faults")
        # This solver's own memory of a fault's solution *at this
        # stimulus* beats any caller-provided estimate (engine slots are
        # shared across stimuli and trail by one stimulus change).
        if memory:
            for f, key in enumerate(fault_keys):
                remembered = self._warm_memory.get(key)
                if remembered is not None:
                    warm_list[f] = remembered
        warmed = np.array([w is not None for w in warm_list], dtype=bool)

        # Stage 1 — SMW linear screen: one Woodbury application turns
        # the factorized nominal solution into every fault's linearized
        # solution. No dense solve, no device evaluation.
        x = stack.apply_inverse(
            np.repeat(self.x_base[:, None], n_faults, axis=1))
        linear_step = np.zeros(n_faults)
        probe = np.abs(x - self.x_base[:, None])
        if self._nl_mask.any():
            linear_step = np.max(probe[self._nl_mask], axis=0)
        elif probe.size:
            linear_step = np.max(probe, axis=0)
        for f, w in enumerate(warm_list):
            if w is not None:
                x[:, f] = np.asarray(w, dtype=float)

        iterations = np.zeros(n_faults, dtype=np.intp)
        certified = np.zeros(n_faults, dtype=bool)
        status = np.full(n_faults, STATUS_FAILED, dtype=object)
        bad = stack.singular | ~np.isfinite(x).all(axis=0)
        x[:, bad] = self.x_base[:, None]

        # Stage 2 — chord certification with the frozen SMW Jacobian.
        # SMW-started columns may only certify inside the trust region
        # around the nominal linear solution; warm-started columns are
        # already on the per-fault path's own solution branch, so a
        # converged chord step certifies them at any distance.
        reltol = self.options.reltol
        for _ in range(self.max_chord_iter):
            active = ~certified & ~bad
            if not active.any():
                break
            r, _ = self._assemble(x, stack, jacobian=False)
            y = self.factorization.solve(r)
            dx = -stack.apply_inverse(y)
            dx[:, certified | bad] = 0.0
            blown = ~np.isfinite(dx).all(axis=0)
            if blown.any():
                dx[:, blown] = 0.0
                x[:, blown & ~certified] = self.x_base[:, None]
                bad |= blown
            dx = self._limit_steps(dx)
            x += dx
            iterations[active] += 1
            # chord_trust is a *voltage* bound: branch-current unknowns
            # (amps) are excluded from the distance measure.
            moved = np.max(np.abs(
                (x - self.x_base[:, None])[:self.compiled.n_nodes]), axis=0)
            trusted = warmed | (moved <= self.chord_trust)
            newly = (step_converged(dx, x, self._abs_tol, reltol)
                     & active & ~bad & trusted)
            certified |= newly
            status[newly] = STATUS_SCREENED

        # Chord acceptance hook: subclasses may impose a stronger
        # certificate than the chord step-size test (the Monte Carlo
        # solver demands a true-Newton step check, because per-column
        # parameter perturbations can fold a solution branch away while
        # the frozen chord operator still contracts onto its ghost).
        accepted = self._accept_chord(x, stamp_sets, certified)
        rejected = certified & ~accepted
        if rejected.any():
            certified &= accepted
            status[rejected] = STATUS_FAILED

        # Stage 3 — batched true-Newton confirm for the nonlinear rest,
        # started from the estimate the per-fault path itself would use.
        remaining = np.flatnonzero(~certified)
        if remaining.size:
            for f in remaining:
                x[:, f] = (np.asarray(warm_list[f], dtype=float)
                           if warm_list[f] is not None else 0.0)
            confirmed = self._newton_confirm(x, stamp_sets, remaining,
                                             iterations)
            status[confirmed] = STATUS_CONFIRMED

        solutions = [ScreenedSolution(
            x=x[:, f].copy(), status=str(status[f]),
            iterations=int(iterations[f]),
            linear_step=float(linear_step[f]))
            for f in range(n_faults)]
        if memory:
            for key, solution in zip(fault_keys, solutions):
                if solution.converged:
                    self._remember(key, solution.x)
        return solutions

    def _newton_confirm(self, x: np.ndarray, stamp_sets, remaining,
                        iterations) -> np.ndarray:
        """True-Newton iterations on the *remaining* columns (in place).

        This is :func:`newton_solve` vectorized across faults — the same
        Jacobian, the same junction-limiting clamp and the same
        convergence test, so from the same starting estimate it selects
        the same solution branch the per-fault overlay path would.
        Returns the indices (into the full set) that converged; stacked
        Jacobians go through one batched LAPACK solve per iteration, and
        singular or diverging columns simply stay unconverged for the
        caller to report as ``"failed"``.
        """
        conv = self._newton_sweep(x, stamp_sets, remaining, iterations)
        return remaining[conv]

    def _newton_sweep(self, x: np.ndarray, stamp_sets,
                      cols: np.ndarray, iterations, *,
                      gmin: float | None = None,
                      vstep_limit: float | None = None,
                      max_iter: int | None = None,
                      b_scale: np.ndarray | None = None,
                      cap_geq: np.ndarray | None = None,
                      cap_ieq: np.ndarray | None = None) -> np.ndarray:
        """One batched damped-Newton attempt on the *cols* columns.

        Updates ``x[:, cols]`` in place and returns a boolean mask over
        *cols* marking convergence.  *gmin*, *vstep_limit* and
        *max_iter* override the defaults so homotopy retry ladders can
        reuse the sweep (mirroring :func:`robust_solve`'s damped and
        gmin-stepping attempts); *b_scale*, *cap_geq* and *cap_ieq* are
        per-column arrays over *cols* for source-stepping and
        pseudo-transient retries (see :meth:`_assemble`).

        The working set shrinks as columns converge or die: once fewer
        than half the current columns are still iterating, the sweep
        compacts onto the survivors (long damped attempts would
        otherwise keep re-assembling thousands of settled columns for
        the sake of one straggler).  Settled columns are frozen, so
        compaction changes no iterate.
        """
        if not cols.size:
            return np.zeros(0, dtype=bool)
        sub_sets = [stamp_sets[f] for f in cols]
        stack = self._stack_for(sub_sets, woodbury=False)
        xs = x[:, cols].copy()
        conv = np.zeros(cols.size, dtype=bool)
        dead = np.zeros(cols.size, dtype=bool)
        reltol = self.options.reltol
        n_iter = self.max_newton_iter if max_iter is None else max_iter
        #: local indices of the columns the working arrays currently hold
        live = np.arange(cols.size)
        for _ in range(n_iter):
            active = ~conv[live] & ~dead[live]
            if not active.any():
                break
            n_active = int(np.count_nonzero(active))
            if n_active <= live.size // 2:
                live = live[active]
                stack = _StampStack(
                    self.compiled, [sub_sets[i] for i in live],
                    self.factorization, woodbury=False,
                    allow_empty=self._allow_empty_stamps)
                active = np.ones(live.size, dtype=bool)
            xw = xs[:, live]
            r, ga = self._assemble(
                xw, stack, jacobian=True, cols=cols[live], gmin=gmin,
                b_scale=None if b_scale is None else b_scale[live],
                cap_geq=None if cap_geq is None else cap_geq[:, live],
                cap_ieq=None if cap_ieq is None else cap_ieq[:, live])
            # Solve only the active columns: a singular settled column
            # would otherwise poison the batched LAPACK call — and force
            # the per-column loop — on *every* remaining iteration.
            act = np.flatnonzero(active)
            dx = np.zeros_like(xw)
            step, bad_cols = solve_columns(ga[act], -r[:, act],
                                           self.backend)
            dx[:, act] = step
            if bad_cols.any():
                dead[live[act[bad_cols]]] = True
            blown = ~np.isfinite(dx).all(axis=0)
            if blown.any():
                dx[:, blown] = 0.0
                dead[live[blown]] = True
            dx = self._limit_steps(dx, vstep_limit)
            xw = xw + dx
            xs[:, live] = xw
            stepped = active & ~dead[live]
            iterations[cols[live[active]]] += 1
            newly = (step_converged(dx, xw, self._abs_tol, reltol)
                     & stepped)
            conv[live[newly]] = True
        x[:, cols] = xs
        return conv


class MonteCarloOverlaySolver(BatchedOverlaySolver):
    """Screens (process sample x fault) columns at one (base, stimulus).

    Each column of a Monte Carlo screen is one process sample with one
    fault (or no fault, for the fault-free tolerance-box pass).  The
    sample's *resistive* perturbation is exact rank-k territory: the
    resistance shifts become per-column conductance-delta stamps merged
    with the fault's own stamps, so the SMW screen serves them from the
    single nominal factorization.  The sample's *MOSFET* perturbations
    (vto, kp -> beta) cannot be expressed as constant stamps; they enter
    through per-column device-parameter arrays (:meth:`_mos_params`), so
    the true residual every chord/Newton stage drives to zero is that of
    the fully perturbed circuit while the frozen SMW operator — nominal
    device cards plus stamps — serves as the preconditioner.  Process
    spreads are small (a few percent), so the frozen operator contracts
    quickly; certification still uses the exact per-column
    :func:`~repro.analysis.newton.step_converged` contract, which is
    parameter-aware through the residual.

    The chord budget is wider than the fault-screening default: Monte
    Carlo columns start one parameter-perturbation away from the nominal
    branch (never on a different operating branch), where a few extra
    frozen-Jacobian sweeps are cheaper than escalating thousands of
    columns to batched Newton.
    """

    def __init__(self, compiled: CompiledCircuit,
                 x_op: np.ndarray, b_sources: np.ndarray,
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 factorization: Factorization | None = None,
                 max_chord_iter: int = 8,
                 max_newton_iter: int | None = None,
                 chord_trust: float = 0.2) -> None:
        super().__init__(compiled, x_op, b_sources, options,
                         factorization=factorization,
                         max_chord_iter=max_chord_iter,
                         max_newton_iter=max_newton_iter,
                         chord_trust=chord_trust)
        self._allow_empty_stamps = True
        self._col_beta: np.ndarray | None = None
        self._col_vto: np.ndarray | None = None

    def screen_columns(
        self,
        stamp_sets: Sequence[Sequence[tuple[str, str, float]]], *,
        mos_beta: np.ndarray | None = None,
        mos_vto: np.ndarray | None = None,
        warm: Sequence[np.ndarray | None] | None = None,
    ) -> list[ScreenedSolution]:
        """Screen one stamp set per column with per-column MOS cards.

        Args:
            stamp_sets: per-column stamp collections — the fault's stamps
                plus the sample's resistor-delta stamps (may be empty for
                a fault-free sample with no resistive perturbation).
            mos_beta / mos_vto: optional ``(n_mosfets, n_columns)``
                perturbed parameter arrays; ``None`` keeps the nominal
                card for that parameter.
            warm: optional per-column warm estimates (see :meth:`screen`).
        """
        n_cols = len(stamp_sets)
        n_mos = self.compiled.n_mosfets
        for name, arr in (("mos_beta", mos_beta), ("mos_vto", mos_vto)):
            if arr is not None and arr.shape != (n_mos, n_cols):
                raise AnalysisError(
                    f"{name} must have shape ({n_mos}, {n_cols}), "
                    f"got {arr.shape}")
        self._col_beta = mos_beta
        self._col_vto = mos_vto
        try:
            return self.screen(stamp_sets, warm)
        finally:
            self._col_beta = None
            self._col_vto = None

    def _mos_params(self, cols: np.ndarray | None,
                    ) -> tuple[np.ndarray, np.ndarray]:
        compiled = self.compiled
        beta = (compiled.mos_beta[:, None] if self._col_beta is None
                else self._col_beta if cols is None
                else self._col_beta[:, cols])
        vto = (compiled.mos_vto[:, None] if self._col_vto is None
               else self._col_vto if cols is None
               else self._col_vto[:, cols])
        return beta, vto

    def _accept_chord(self, x: np.ndarray, stamp_sets,
                      certified: np.ndarray) -> np.ndarray:
        """Accept a chord certificate only if one *true* Newton step
        from the chord solution also satisfies the convergence contract.

        A Monte Carlo column's system differs from the chord operator in
        its device parameters, not just its stamps.  Near a fold of the
        perturbed circuit the true solution branch can vanish while the
        frozen chord map still contracts — with steps small enough to
        pass the step-size test — onto a point that solves nothing
        (``r`` stays finite there, Newton's own step is large).  One
        batched Jacobian solve per screen closes that gap: rejected
        columns escalate to the Newton-confirm stage and land on the
        branch a per-sample reference solve would.
        """
        idx = np.flatnonzero(certified)
        if not idx.size:
            return certified
        sub_sets = [stamp_sets[f] for f in idx]
        stack = self._stack_for(sub_sets, woodbury=False)
        xs = x[:, idx]
        r, ga = self._assemble(xs, stack, jacobian=True, cols=idx)
        accepted = certified.copy()
        dx, bad_cols = solve_columns(ga, -r, self.backend)
        if bad_cols.any():
            accepted[idx[bad_cols]] = False
        bad = ~np.isfinite(dx).all(axis=0)
        if bad.any():
            accepted[idx[bad]] = False
            dx[:, bad] = 0.0
        dx = self._limit_steps(dx)
        ok = step_converged(dx, xs + dx, self._abs_tol,
                            self.options.reltol)
        accepted[idx[~ok]] = False
        return accepted

    def _newton_confirm(self, x: np.ndarray, stamp_sets, remaining,
                        iterations) -> np.ndarray:
        """Newton confirm plus a batched homotopy retry ladder.

        The first sweep reproduces the per-sample reference's warm
        Newton attempt.  Columns it cannot converge are exactly the ones
        the scalar path would hand to :func:`robust_solve` from a cold
        start, so the retry ladder mirrors that escalation — plain cold
        Newton, damped cold Newton, then the gmin homotopy ladder — but
        stays batched: a handful of hard columns per screen would
        otherwise each cost a full scalar robust solve.  Source stepping
        and pseudo-transient are not replicated; columns that exhaust
        the gmin ladder stay ``"failed"`` for the caller to escalate.
        """
        conv = self._newton_sweep(x, stamp_sets, remaining, iterations)
        left = remaining[~conv]
        if left.size:
            recovered = self._newton_ladder(x, stamp_sets, left,
                                            iterations)
            if recovered.size:
                mask = np.isin(remaining, recovered)
                conv = conv | mask
        return remaining[conv]

    def _attempt(self, x: np.ndarray, stamp_sets,
                 cols: np.ndarray, iterations, *,
                 gmin: float | None = None,
                 b_scale: np.ndarray | None = None,
                 cap_geq: np.ndarray | None = None,
                 cap_ieq: np.ndarray | None = None) -> np.ndarray:
        """One robust_solve-style attempt: plain sweep, then a damped
        retry restarted from the same estimate.  Returns a boolean mask
        over *cols*; failed columns are restored to their pre-attempt
        state (the scalar path likewise discards a failed attempt's
        iterate)."""
        options = self.options
        start = x[:, cols].copy()
        conv = self._newton_sweep(x, stamp_sets, cols, iterations,
                                  gmin=gmin, b_scale=b_scale,
                                  cap_geq=cap_geq, cap_ieq=cap_ieq)
        left = np.flatnonzero(~conv)
        if left.size:
            x[:, cols[left]] = start[:, left]
            damped = self._newton_sweep(
                x, stamp_sets, cols[left], iterations, gmin=gmin,
                b_scale=None if b_scale is None else b_scale[left],
                cap_geq=None if cap_geq is None else cap_geq[:, left],
                cap_ieq=None if cap_ieq is None else cap_ieq[:, left],
                vstep_limit=options.vstep_limit / 8.0,
                max_iter=options.max_iter * 4)
            conv = conv.copy()
            conv[left[damped]] = True
            still = left[~damped]
            x[:, cols[still]] = start[:, still]
        return conv

    def _newton_ladder(self, x: np.ndarray, stamp_sets,
                       cols: np.ndarray, iterations) -> np.ndarray:
        """Cold restart, gmin homotopy, source stepping, then
        pseudo-transient — batched.

        Matches :func:`robust_solve`'s escalation order and branch
        selection from a cold start: every attempt starts from zeros
        (the reference's cold start), the gmin ladder chains each rung's
        solution into the next and drops columns at the first rung they
        fail, and columns the ladder cannot hold escalate to the
        source-stepping ramp and finally pseudo-transient continuation.
        """
        options = self.options
        x[:, cols] = 0.0
        conv = self._attempt(x, stamp_sets, cols, iterations)
        done = cols[conv]
        pending = cols[~conv]
        if pending.size:
            x[:, pending] = 0.0
            active = pending
            for g in tuple(options.gmin_steps) + (options.gmin,):
                if not active.size:
                    break
                ok = self._attempt(x, stamp_sets, active, iterations,
                                   gmin=g)
                active = active[ok]
            if active.size:
                done = np.concatenate([done, active])
                pending = np.setdiff1d(pending, active)
        if pending.size:
            rescued = self._source_attempt(x, stamp_sets, pending,
                                           iterations)
            if rescued.size:
                done = np.concatenate([done, rescued])
                pending = np.setdiff1d(pending, rescued)
        if pending.size:
            rescued = self._ptran_attempt(x, stamp_sets, pending,
                                          iterations)
            if rescued.size:
                done = np.concatenate([done, rescued])
        return done

    def _source_attempt(self, x: np.ndarray, stamp_sets,
                        cols: np.ndarray, iterations) -> np.ndarray:
        """Batched source+gmin stepping, per-column adaptive schedule.

        Each column runs :func:`robust_solve`'s ramp — sources from
        zero under a raised gmin, adaptive step halving/growth, then
        gmin relaxed back down at full drive — but columns at the same
        round share one batched sweep.  Ramp rungs use plain (undamped)
        Newton only: a continuation tracks the same branch regardless
        of rung granularity, and the scalar path's per-rung damped
        retry would quadruple the budget every stalling column burns
        before falling through to pseudo-transient.  Returns the
        converged subset of *cols*."""
        options = self.options
        ramp_gmin = max(1e-6, options.gmin)
        k = cols.size
        x[:, cols] = 0.0
        scale = np.zeros(k)
        init_step = 1.0 / options.source_steps
        step = np.full(k, init_step)
        min_step = init_step / 256.0
        alive = np.ones(k, dtype=bool)
        while True:
            ramping = alive & (scale < 1.0)
            if not ramping.any():
                break
            idx = np.flatnonzero(ramping)
            target = np.minimum(scale[idx] + step[idx], 1.0)
            sub = cols[idx]
            start = x[:, sub].copy()
            ok = self._newton_sweep(x, stamp_sets, sub, iterations,
                                    gmin=ramp_gmin, b_scale=target)
            if not ok.all():
                x[:, sub[~ok]] = start[:, ~ok]
            scale[idx[ok]] = target[ok]
            step[idx[ok]] = np.minimum(step[idx[ok]] * 1.5, 0.25)
            step[idx[~ok]] /= 2.0
            alive[idx] &= step[idx] >= min_step
        # Relax gmin back to the target at full drive; the rung sequence
        # is deterministic, so all full-drive columns share each rung.
        active = cols[scale >= 1.0]
        g = ramp_gmin
        while g > options.gmin and active.size:
            g = max(g * 1e-1, options.gmin)
            ok = self._attempt(x, stamp_sets, active, iterations, gmin=g)
            active = active[ok]
        return active

    def _ptran_attempt(self, x: np.ndarray, stamp_sets,
                       cols: np.ndarray, iterations,
                       n_steps: int = 400) -> np.ndarray:
        """Batched pseudo-transient continuation (last resort).

        Backward-Euler steps with per-column adaptive dt from a cold
        start, using the circuit's own capacitors as companion damping —
        the batched mirror of :func:`~repro.analysis.newton._pseudo_transient`
        plus its static Newton polish.  Returns the converged subset of
        *cols*."""
        compiled = self.compiled
        k = cols.size
        if not compiled.n_caps or not k:
            return cols[:0]
        x[:, cols] = 0.0
        cap_v = np.zeros((compiled.n_caps, k))
        dt = np.full(k, 1e-10)
        growth = 10.0 ** (5.0 / n_steps)
        for _ in range(n_steps):
            geq = compiled.cap_value[:, None] / dt[None, :]
            ieq = geq * cap_v
            start = x[:, cols].copy()
            conv = self._newton_sweep(x, stamp_sets, cols, iterations,
                                      cap_geq=geq, cap_ieq=ieq)
            ok = np.flatnonzero(conv)
            bad = np.flatnonzero(~conv)
            if bad.size:
                x[:, cols[bad]] = start[:, bad]
            if ok.size:
                xs = x[:, cols[ok]]
                xa = np.vstack([xs, np.zeros((1, ok.size))])
                cap_v[:, ok] = xa[compiled.cap_p] - xa[compiled.cap_n]
                dt[ok] *= growth
            dt[bad] *= 0.25
        # Static polish from the settled state (plain, then damped).
        conv = self._attempt(x, stamp_sets, cols, iterations)
        return cols[conv]
