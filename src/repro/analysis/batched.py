"""Batched overlay-fault solves via Sherman-Morrison-Woodbury updates.

Candidate-fault screening evaluates one fault *family* — e.g. all 45
bridging faults of the IV-converter, which share one compiled base — at a
fixed operating point.  The PR 2 overlay path charges every fault a full
warm-started Newton solve; this module charges the whole family **one**
LU factorization of the nominal Jacobian (:meth:`CompiledCircuit.factorize`)
and serves each fault as a rank-k update of it:

1. **SMW screen** — every fault is a set of conductance stamps
   ``Delta_f = U_f C_f U_f^T`` on the factorized system ``G0 x = b0``, so
   its linearized solution comes from the Woodbury identity

       (G0 + U C U^T)^-1 = G0^-1 - G0^-1 U (C^-1 + U^T G0^-1 U)^-1 U^T G0^-1

   at the cost of k extra triangular solves — *no* per-fault dense solve,
   and all families' ``U`` columns go through one stacked solve.

2. **Chord certification** — the linear solution is only trustworthy
   where the circuit behaves linearly.  A few frozen-Jacobian (chord)
   iterations, applied through the same SMW identity and vectorized
   across the whole family (device models evaluate on ``(devices,
   faults)`` arrays), drive the *true nonlinear* residual down; a fault
   whose step passes the exact Newton convergence test of
   :func:`repro.analysis.newton.step_converged` is certified — its
   verdict provably matches what a full Newton solve would return.

3. **Batched Newton confirm** — overlays too nonlinear for the frozen
   Jacobian (a bridge that flips a MOSFET's operating region) fall
   through to true per-fault Newton, still batched: stacked Jacobians,
   one LAPACK call per iteration for the whole remaining set.

Faults that even batched Newton cannot converge are reported as
``"failed"`` and the caller (:meth:`SimulationEngine.screen_faults`)
falls back to the full per-fault robust-Newton overlay path, so the
screen can only ever *accelerate* — never change — a detection verdict.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.mna import CompiledCircuit, Factorization
from repro.analysis.newton import absolute_tolerances, step_converged
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.circuit.diode import diode_eval
from repro.circuit.mosfet import mos_level1
from repro.errors import AnalysisError

__all__ = ["ScreenedSolution", "BatchedOverlaySolver"]

#: Screening statuses, in escalation order.
STATUS_SCREENED = "screened"    # certified by SMW + chord iterations
STATUS_CONFIRMED = "confirmed"  # needed the batched Newton confirm
STATUS_FAILED = "failed"        # caller must run the robust per-fault path


@dataclass(frozen=True)
class ScreenedSolution:
    """Outcome of screening one overlay fault.

    Attributes:
        x: solution vector — converged to Newton tolerance for
            ``"screened"``/``"confirmed"``, the best available iterate
            (a warm start for the fallback solve) for ``"failed"``.
        status: ``"screened"``, ``"confirmed"`` or ``"failed"``.
        iterations: chord + Newton iterations spent on this fault.
        linear_step: infinity-norm of the SMW linear correction at the
            fault's nonlinear nodes — the nonlinearity gauge (small
            values mean the linear screen alone was nearly exact).
    """

    x: np.ndarray
    status: str
    iterations: int
    linear_step: float

    @property
    def converged(self) -> bool:
        """True when *x* satisfies the Newton convergence contract."""
        return self.status != STATUS_FAILED


class _StampStack:
    """Flattened per-fault conductance stamps, ready for vector math.

    Every stamp of every fault becomes one entry of four parallel arrays
    (augmented node indices ``p``/``n``, conductance ``g`` and the fault
    column it belongs to), so residual and Jacobian assembly vectorize
    over arbitrary per-fault ranks.

    ``woodbury=False`` skips the SMW apparatus (the stacked ``Z``
    columns and capacitance inverses) for stacks that only assemble
    residuals/Jacobians, e.g. the batched Newton confirm stage.
    """

    def __init__(self, compiled: CompiledCircuit,
                 stamp_sets: Sequence[Sequence[tuple[str, str, float]]],
                 factorization: Factorization, *,
                 woodbury: bool = True) -> None:
        size = compiled.size
        self.n_faults = len(stamp_sets)
        sp: list[int] = []
        sn: list[int] = []
        sg: list[float] = []
        scol: list[int] = []
        offsets = [0]
        for col, stamps in enumerate(stamp_sets):
            if not stamps:
                raise AnalysisError(
                    f"fault column {col} carries no overlay stamps")
            for node_a, node_b, g in stamps:
                p = compiled.resolve_node(node_a)
                n = compiled.resolve_node(node_b)
                if p == n:
                    raise AnalysisError(
                        f"overlay stamp between {node_a!r} and {node_b!r} "
                        "collapses to one node")
                sp.append(p)
                sn.append(n)
                sg.append(float(g))
                scol.append(col)
            offsets.append(len(sp))
        self.sp = np.array(sp, dtype=np.intp)
        self.sn = np.array(sn, dtype=np.intp)
        self.sg = np.array(sg, dtype=float)
        self.scol = np.array(scol, dtype=np.intp)
        self.offsets = np.array(offsets, dtype=np.intp)
        self.woodbury = woodbury
        if not woodbury:
            self.singular = np.zeros(self.n_faults, dtype=bool)
            return

        # One stacked triangular solve covers every stamp of every fault:
        # U holds one incidence column (e_p - e_n, ground dropped) per
        # stamp, Z = G0^-1 U feeds both the Woodbury capacitance matrices
        # and every later inverse application.
        u_all = np.zeros((size, len(sp)))
        in_p = self.sp < size
        in_n = self.sn < size
        u_all[self.sp[in_p], np.flatnonzero(in_p)] += 1.0
        u_all[self.sn[in_n], np.flatnonzero(in_n)] -= 1.0
        self.u_all = u_all
        self.z_all = factorization.solve(u_all)

        # Per-fault Woodbury capacitance inverse (C^-1 + U^T Z)^-1; a
        # singular capacitance marks the fault unscreenable up front.
        self.rank1 = bool(np.all(np.diff(self.offsets) == 1))
        self.singular = np.zeros(self.n_faults, dtype=bool)
        if self.rank1:
            duz = (self._gather(self.z_all, self.sp, np.arange(len(sp)))
                   - self._gather(self.z_all, self.sn, np.arange(len(sp))))
            denom = 1.0 / self.sg + duz
            self.singular = ~np.isfinite(denom) | (np.abs(denom) < 1e-300)
            with np.errstate(divide="ignore"):
                self.cap_inv_1 = np.where(self.singular, 0.0, 1.0 / denom)
            self.cap_inv: list[np.ndarray | None] = []
        else:
            self.cap_inv = []
            for col in range(self.n_faults):
                lo, hi = self.offsets[col], self.offsets[col + 1]
                u = self.u_all[:, lo:hi]
                z = self.z_all[:, lo:hi]
                cap = np.diag(1.0 / self.sg[lo:hi]) + u.T @ z
                try:
                    self.cap_inv.append(np.linalg.inv(cap))
                except np.linalg.LinAlgError:
                    self.cap_inv.append(None)
                    self.singular[col] = True

    @staticmethod
    def _gather(y: np.ndarray, rows: np.ndarray,
                cols: np.ndarray) -> np.ndarray:
        """``y[rows, cols]`` with the augmented ground row reading 0."""
        ya = np.vstack([y, np.zeros((1, y.shape[1]))])
        clipped = np.minimum(rows, y.shape[0])
        return ya[clipped, cols]

    def add_residual(self, r_aug: np.ndarray, xa: np.ndarray) -> None:
        """Accumulate the stamp currents into augmented residuals."""
        du = xa[self.sp, self.scol] - xa[self.sn, self.scol]
        contrib = self.sg * du
        np.add.at(r_aug, (self.sp, self.scol), contrib)
        np.add.at(r_aug, (self.sn, self.scol), -contrib)

    def add_jacobian(self, ga: np.ndarray) -> None:
        """Accumulate the stamps into stacked augmented Jacobians."""
        np.add.at(ga, (self.scol, self.sp, self.sp), self.sg)
        np.add.at(ga, (self.scol, self.sn, self.sn), self.sg)
        np.add.at(ga, (self.scol, self.sp, self.sn), -self.sg)
        np.add.at(ga, (self.scol, self.sn, self.sp), -self.sg)

    def apply_inverse(self, y: np.ndarray) -> np.ndarray:
        """Per-column ``(G0 + Delta_f)^-1 (G0 y_f)`` via SMW.

        *y* holds ``G0^-1 r_f`` columns; the Woodbury correction turns
        each into the frozen faulty-Jacobian inverse application without
        any dense solve.  Columns of singular-capacitance faults pass
        through uncorrected (they are already marked unscreenable).
        """
        if self.rank1:
            cols = np.arange(self.n_faults)
            stamp_idx = self.offsets[:-1]
            duy = (self._gather(y, self.sp[stamp_idx], cols)
                   - self._gather(y, self.sn[stamp_idx], cols))
            return y - self.z_all[:, stamp_idx] * (duy * self.cap_inv_1)
        out = y.copy()
        for col in range(self.n_faults):
            if self.cap_inv[col] is None:
                continue
            lo, hi = self.offsets[col], self.offsets[col + 1]
            w = self.u_all[:, lo:hi].T @ y[:, col]
            out[:, col] -= self.z_all[:, lo:hi] @ (self.cap_inv[col] @ w)
        return out


class BatchedOverlaySolver:
    """Screens overlay-fault families at one (base, stimulus) pair.

    Args:
        compiled: the clean compiled base (no overlay may be pushed; the
            solver snapshots its static matrix, so later overlay use of
            *compiled* does not disturb an existing solver).
        x_op: converged nominal operating point at the target stimulus.
        b_sources: augmented source vector at that stimulus
            (:meth:`CompiledCircuit.source_vector` with the stimulus
            patched in).
        options: simulator options — convergence tolerances and step
            limits are shared with :func:`newton_solve`, so certification
            uses the exact single-solve contract.
        factorization: optional pre-built factorization of the Jacobian
            at *x_op* (one is computed otherwise).
        max_chord_iter: frozen-Jacobian certification budget.  Chord
            iterations cost one vectorized device sweep each and certify
            the near-linear part of the family; overlays still moving
            after this budget escalate to batched Newton.  The default
            is deliberately tight — a fault the frozen Jacobian cannot
            settle in two sweeps converges faster under true Newton than
            under many linearly-converging chord steps.
        max_newton_iter: batched true-Newton budget before a fault is
            reported ``"failed"`` (robust per-fault fallback territory).
            Defaults to ``options.max_iter`` so the confirm stage has
            exactly the budget of a plain :func:`newton_solve` attempt.
        chord_trust: infinity-norm bound [V] on how far a chord-certified
            solution may sit from the nominal linear solution when the
            iteration started from the SMW screen (rather than from a
            caller-provided warm estimate).  Strongly-shifted operating
            points can be multi-stable, and a per-fault solve starting
            cold may select a different branch — such faults are sent to
            the Newton confirm stage, which reproduces the per-fault
            path's own starting estimate and therefore its branch choice.
    """

    def __init__(self, compiled: CompiledCircuit,
                 x_op: np.ndarray, b_sources: np.ndarray,
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 factorization: Factorization | None = None,
                 max_chord_iter: int = 2,
                 max_newton_iter: int | None = None,
                 chord_trust: float = 0.2) -> None:
        if compiled.overlay_depth:
            raise AnalysisError(
                "BatchedOverlaySolver needs the clean base: "
                f"{compiled.overlay_depth} overlay(s) currently pushed")
        self.compiled = compiled
        self.options = options
        self.max_chord_iter = max_chord_iter
        self.max_newton_iter = (options.max_iter if max_newton_iter is None
                                else max_newton_iter)
        self.chord_trust = chord_trust
        self.x_op = np.array(x_op, dtype=float)
        self.b_aug = np.array(b_sources, dtype=float)

        g0, b0 = compiled.linearize(
            self.x_op, self.b_aug, options.gmin,
            breakdown_voltage=options.breakdown_voltage,
            breakdown_conductance=options.breakdown_conductance)
        self.b0 = b0.copy()
        self.factorization = (factorization if factorization is not None
                              else Factorization(g0))
        #: Linear nominal solution (== the Newton iterate after x_op).
        self.x_base = self.factorization.solve(self.b0)

        # Snapshots for batched residual/Jacobian assembly: the static
        # matrix is copied so overlays pushed on the base later (e.g. by
        # the fallback path) cannot corrupt this solver.
        self._a_static = compiled._g_static.copy()
        self._abs_tol = absolute_tolerances(compiled, options)
        self._nl_mask = compiled.nonlinear_node_mask
        # Stamp stacks are pure functions of (stamps, factorization);
        # repeated screens of the same family reuse them.
        self._stack_cache: dict[tuple, _StampStack] = {}
        # Per-fault warm memory at THIS stimulus.  Engine warm-start
        # slots are shared across stimuli, so on alternating stimulus
        # points they always hold the *other* point's solution; the
        # solver is pinned to one (base, stimulus) pair and can remember
        # each fault's own converged solution here instead.
        self._warm_memory: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # batched nonlinear assembly
    # ------------------------------------------------------------------
    def _assemble(self, x: np.ndarray, stack: _StampStack,
                  jacobian: bool) -> tuple[np.ndarray, np.ndarray | None]:
        """True residuals (and optionally stacked Jacobians) per column.

        The residual of column *f* is the KCL/KVL defect of the faulty
        nonlinear system ``r_f(x_f) = A x_f + i_devices(x_f) - b``: the
        companion-linearization terms of :meth:`CompiledCircuit.linearize`
        cancel exactly, so a root of *r* is precisely a fixed point of
        :func:`newton_solve` on the overlaid circuit.  One device-model
        evaluation on ``(devices, faults)`` arrays serves both outputs.
        """
        compiled = self.compiled
        options = self.options
        size = compiled.size
        n_nodes = compiled.n_nodes
        n_faults = x.shape[1]
        xa = np.vstack([x, np.zeros((1, n_faults))])

        r = self._a_static @ xa
        r -= self.b_aug[:, None]
        r[:n_nodes] += options.gmin * xa[:n_nodes]
        stack.add_residual(r, xa)

        ga = None
        if jacobian:
            ga = np.repeat(self._a_static[None, :, :], n_faults, axis=0)
            stack.add_jacobian(ga)
            diag = np.arange(n_nodes)
            ga[:, diag, diag] += options.gmin

        bv = options.breakdown_voltage
        gbd = options.breakdown_conductance
        if np.isfinite(bv) and gbd > 0.0:
            v = xa[:n_nodes]
            r[:n_nodes] += gbd * (np.maximum(v - bv, 0.0)
                                  + np.minimum(v + bv, 0.0))
            if ga is not None:
                clamped = np.abs(v) > bv
                fi, ni = np.nonzero(clamped.T)
                np.add.at(ga, (fi, ni, ni), gbd)

        fi = np.arange(n_faults)
        if compiled.n_mosfets:
            d = compiled.mos_d[:, None]
            g = compiled.mos_g[:, None]
            s = compiled.mos_s[:, None]
            b = compiled.mos_b[:, None]
            cols = fi[None, :]
            vgs = xa[compiled.mos_g] - xa[compiled.mos_s]
            vds = xa[compiled.mos_d] - xa[compiled.mos_s]
            vbs = xa[compiled.mos_b] - xa[compiled.mos_s]
            ids, gm, gds, gmb = mos_level1(
                vgs, vds, vbs, compiled.mos_sign[:, None],
                compiled.mos_beta[:, None], compiled.mos_vto[:, None],
                compiled.mos_lam[:, None], compiled.mos_gamma[:, None],
                compiled.mos_phi[:, None])
            np.add.at(r, (np.broadcast_to(d, ids.shape), cols), ids)
            np.add.at(r, (np.broadcast_to(s, ids.shape), cols), -ids)
            if ga is not None:
                gsum = gm + gds + gmb
                for rows, against, val in (
                        (d, g, gm), (d, d, gds), (d, b, gmb), (d, s, -gsum),
                        (s, g, -gm), (s, d, -gds), (s, b, -gmb),
                        (s, s, gsum)):
                    np.add.at(
                        ga,
                        (np.broadcast_to(cols, val.shape),
                         np.broadcast_to(rows, val.shape),
                         np.broadcast_to(against, val.shape)), val)

        if compiled.n_diodes:
            a = compiled.dio_a[:, None]
            c = compiled.dio_c[:, None]
            cols = fi[None, :]
            vd = xa[compiled.dio_a] - xa[compiled.dio_c]
            idio, gdio = diode_eval(vd, compiled.dio_is[:, None],
                                    compiled.dio_n[:, None])
            np.add.at(r, (np.broadcast_to(a, idio.shape), cols), idio)
            np.add.at(r, (np.broadcast_to(c, idio.shape), cols), -idio)
            if ga is not None:
                for rows, against, val in (
                        (a, a, gdio), (a, c, -gdio),
                        (c, a, -gdio), (c, c, gdio)):
                    np.add.at(
                        ga,
                        (np.broadcast_to(cols, val.shape),
                         np.broadcast_to(rows, val.shape),
                         np.broadcast_to(against, val.shape)), val)

        if ga is not None:
            ga = ga[:, :size, :size]
        return r[:size], ga

    def _limit_steps(self, dx: np.ndarray) -> np.ndarray:
        """Per-column junction-limiting clamp (same rule as newton_solve)."""
        mask = self._nl_mask
        if not mask.any():
            return dx
        vmax = np.max(np.abs(dx[mask]), axis=0)
        limit = self.options.vstep_limit
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(vmax > limit, limit / np.maximum(vmax, 1e-300),
                             1.0)
        return dx * scale

    def _stack_for(self, stamp_sets,
                   fault_keys: tuple[tuple, ...] | None = None, *,
                   woodbury: bool = True) -> _StampStack:
        """Stamp stack for *stamp_sets*, LRU-cached on stamp content.

        A cached Woodbury-capable stack satisfies any request; a
        residual-only request builds (and caches) the light variant.
        """
        if fault_keys is None:
            fault_keys = tuple(
                tuple(map(tuple, stamps)) for stamps in stamp_sets)
        stack = self._stack_cache.get(fault_keys)
        if stack is None or (woodbury and not stack.woodbury):
            stack = _StampStack(self.compiled, stamp_sets,
                                self.factorization, woodbury=woodbury)
            while len(self._stack_cache) >= 8:
                self._stack_cache.pop(next(iter(self._stack_cache)))
        else:
            self._stack_cache.pop(fault_keys)  # refresh LRU recency
        self._stack_cache[fault_keys] = stack
        return stack

    def _remember(self, fault_key: tuple, x: np.ndarray) -> None:
        """Store one fault's converged solution (bounded memory)."""
        if len(self._warm_memory) >= 4096:
            self._warm_memory.pop(next(iter(self._warm_memory)))
        self._warm_memory[fault_key] = x

    # ------------------------------------------------------------------
    # screening driver
    # ------------------------------------------------------------------
    def screen(self, stamp_sets: Sequence[Sequence[tuple[str, str, float]]],
               warm: Sequence[np.ndarray | None] | None = None,
               ) -> list[ScreenedSolution]:
        """Screen one stamp set per fault; returns one solution each.

        Stamp tuples are ``(node_a, node_b, conductance)`` exactly as
        accepted by :meth:`CompiledCircuit.push_overlay` (the engine
        feeds :meth:`FaultModel.stamp_delta` output straight through).

        Args:
            stamp_sets: per-fault stamp collections.
            warm: optional per-fault warm solution estimates — pass the
                same warm-start slots the per-fault overlay path uses so
                both paths track identical solution branches on
                multi-stable circuits.  ``None`` entries start from the
                SMW linear solution (chord) / a cold start (Newton
                confirm), exactly as a fresh per-fault solve would.
        """
        n_faults = len(stamp_sets)
        if n_faults == 0:
            return []
        fault_keys = tuple(
            tuple(map(tuple, stamps)) for stamps in stamp_sets)
        stack = self._stack_for(stamp_sets, fault_keys)
        warm_list = list(warm) if warm is not None else [None] * n_faults
        if len(warm_list) != n_faults:
            raise AnalysisError(
                f"{len(warm_list)} warm estimates for {n_faults} faults")
        # This solver's own memory of a fault's solution *at this
        # stimulus* beats any caller-provided estimate (engine slots are
        # shared across stimuli and trail by one stimulus change).
        for f, key in enumerate(fault_keys):
            remembered = self._warm_memory.get(key)
            if remembered is not None:
                warm_list[f] = remembered
        warmed = np.array([w is not None for w in warm_list], dtype=bool)

        # Stage 1 — SMW linear screen: one Woodbury application turns
        # the factorized nominal solution into every fault's linearized
        # solution. No dense solve, no device evaluation.
        x = stack.apply_inverse(
            np.repeat(self.x_base[:, None], n_faults, axis=1))
        linear_step = np.zeros(n_faults)
        probe = np.abs(x - self.x_base[:, None])
        if self._nl_mask.any():
            linear_step = np.max(probe[self._nl_mask], axis=0)
        elif probe.size:
            linear_step = np.max(probe, axis=0)
        for f, w in enumerate(warm_list):
            if w is not None:
                x[:, f] = np.asarray(w, dtype=float)

        iterations = np.zeros(n_faults, dtype=np.intp)
        certified = np.zeros(n_faults, dtype=bool)
        status = np.full(n_faults, STATUS_FAILED, dtype=object)
        bad = stack.singular | ~np.isfinite(x).all(axis=0)
        x[:, bad] = self.x_base[:, None]

        # Stage 2 — chord certification with the frozen SMW Jacobian.
        # SMW-started columns may only certify inside the trust region
        # around the nominal linear solution; warm-started columns are
        # already on the per-fault path's own solution branch, so a
        # converged chord step certifies them at any distance.
        reltol = self.options.reltol
        for _ in range(self.max_chord_iter):
            active = ~certified & ~bad
            if not active.any():
                break
            r, _ = self._assemble(x, stack, jacobian=False)
            y = self.factorization.solve(r)
            dx = -stack.apply_inverse(y)
            dx[:, certified | bad] = 0.0
            blown = ~np.isfinite(dx).all(axis=0)
            if blown.any():
                dx[:, blown] = 0.0
                x[:, blown & ~certified] = self.x_base[:, None]
                bad |= blown
            dx = self._limit_steps(dx)
            x += dx
            iterations[active] += 1
            # chord_trust is a *voltage* bound: branch-current unknowns
            # (amps) are excluded from the distance measure.
            moved = np.max(np.abs(
                (x - self.x_base[:, None])[:self.compiled.n_nodes]), axis=0)
            trusted = warmed | (moved <= self.chord_trust)
            newly = (step_converged(dx, x, self._abs_tol, reltol)
                     & active & ~bad & trusted)
            certified |= newly
            status[newly] = STATUS_SCREENED

        # Stage 3 — batched true-Newton confirm for the nonlinear rest,
        # started from the estimate the per-fault path itself would use.
        remaining = np.flatnonzero(~certified)
        if remaining.size:
            for f in remaining:
                x[:, f] = (np.asarray(warm_list[f], dtype=float)
                           if warm_list[f] is not None else 0.0)
            confirmed = self._newton_confirm(x, stamp_sets, remaining,
                                             iterations)
            status[confirmed] = STATUS_CONFIRMED

        solutions = [ScreenedSolution(
            x=x[:, f].copy(), status=str(status[f]),
            iterations=int(iterations[f]),
            linear_step=float(linear_step[f]))
            for f in range(n_faults)]
        for key, solution in zip(fault_keys, solutions):
            if solution.converged:
                self._remember(key, solution.x)
        return solutions

    def _newton_confirm(self, x: np.ndarray, stamp_sets, remaining,
                        iterations) -> np.ndarray:
        """True-Newton iterations on the *remaining* columns (in place).

        This is :func:`newton_solve` vectorized across faults — the same
        Jacobian, the same junction-limiting clamp and the same
        convergence test, so from the same starting estimate it selects
        the same solution branch the per-fault overlay path would.
        Returns the indices (into the full set) that converged; stacked
        Jacobians go through one batched LAPACK solve per iteration, and
        singular or diverging columns simply stay unconverged for the
        caller to report as ``"failed"``.
        """
        sub_sets = [stamp_sets[f] for f in remaining]
        stack = self._stack_for(sub_sets, woodbury=False)
        xs = x[:, remaining].copy()
        conv = np.zeros(remaining.size, dtype=bool)
        dead = np.zeros(remaining.size, dtype=bool)
        reltol = self.options.reltol
        for _ in range(self.max_newton_iter):
            active = ~conv & ~dead
            if not active.any():
                break
            r, ga = self._assemble(xs, stack, jacobian=True)
            dx = np.zeros_like(xs)
            try:
                dx[:, :] = -np.linalg.solve(
                    ga, r.T[:, :, None])[:, :, 0].T
            except np.linalg.LinAlgError:
                for k in np.flatnonzero(active):
                    try:
                        dx[:, k] = -np.linalg.solve(ga[k], r[:, k])
                    except np.linalg.LinAlgError:
                        dx[:, k] = 0.0
                        dead[k] = True
            dx[:, conv | dead] = 0.0
            blown = ~np.isfinite(dx).all(axis=0)
            if blown.any():
                dx[:, blown] = 0.0
                dead |= blown
            dx = self._limit_steps(dx)
            xs += dx
            iterations[remaining[active]] += 1
            conv |= (step_converged(dx, xs, self._abs_tol, reltol)
                     & active & ~dead)
        x[:, remaining] = xs
        return remaining[conv]
