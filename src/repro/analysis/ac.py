"""Small-signal AC analysis.

Linearizes the circuit at its DC operating point and solves the complex
system ``(G + j*2*pi*f*C) x = b_ac`` per frequency, with a unit stimulus at
one named independent source (magnitude 1, phase 0) and every other source
quiet — the classic ``.ac`` setup with ``AC 1`` on the input source.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.backend import solve_dense
from repro.analysis.dc import operating_point
from repro.analysis.mna import CompiledCircuit
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.analysis.results import ACResult, OperatingPoint
from repro.circuit.elements import CurrentSource, VoltageSource
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, SingularMatrixError

__all__ = ["ac_analysis"]


def ac_analysis(
    circuit: Circuit | CompiledCircuit,
    source_name: str,
    freqs: np.ndarray,
    options: SimOptions = DEFAULT_OPTIONS,
    op: OperatingPoint | None = None,
    x0: np.ndarray | None = None,
) -> ACResult:
    """Frequency sweep with a unit AC stimulus at *source_name*.

    Args:
        circuit: circuit or compiled circuit.
        source_name: independent source receiving the unit stimulus.
        freqs: frequencies [Hz]; must be positive.
        op: optional precomputed operating point.
        x0: optional Newton warm start for the internal operating-point
            solve (ignored when *op* is given); the compile-once engine
            threads neighbouring DC solutions through here.

    Returns:
        :class:`ACResult` with complex node phasors.
    """
    compiled = (circuit if isinstance(circuit, CompiledCircuit)
                else CompiledCircuit(circuit))
    freqs = np.asarray(freqs, dtype=float)
    if np.any(freqs <= 0.0):
        raise AnalysisError("AC frequencies must be positive")

    element = compiled.circuit.element(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise AnalysisError(f"{source_name!r} is not an independent source")

    if op is None:
        op = operating_point(compiled, options, x0=x0)
    g, c = compiled.small_signal_matrices(op.x, options.gmin)

    # Unit-stimulus RHS.
    b = np.zeros(compiled.size, dtype=complex)
    if isinstance(element, VoltageSource):
        b[compiled.branch_index[element.name]] = 1.0
    else:
        gnd = compiled.size  # augmented slot index convention
        p = (compiled.node_index.get(element.n1, gnd)
             if element.n1.lower() not in ("0", "gnd")
             else None)
        n = (compiled.node_index.get(element.n2, gnd)
             if element.n2.lower() not in ("0", "gnd")
             else None)
        if p is not None:
            b[p] -= 1.0
        if n is not None:
            b[n] += 1.0

    phasors = np.empty((compiled.n_nodes, len(freqs)), dtype=complex)
    for k, freq in enumerate(freqs):
        system = g + 1j * 2.0 * np.pi * freq * c
        try:
            x = solve_dense(system, b)
        except SingularMatrixError as exc:
            raise SingularMatrixError(
                f"AC system singular at f={freq:g} Hz") from exc
        phasors[:, k] = x[:compiled.n_nodes]

    node_phasors = {name: phasors[i]
                    for name, i in compiled.node_index.items()}
    return ACResult(freqs=freqs, node_phasors=node_phasors)
