"""Fixed-step transient analysis.

The integration grid *is* the measurement grid: test configurations specify
a sample rate (paper Fig. 1, "sample-rate=s test-time=t"), and the engine
integrates with exactly that step using the trapezoidal rule (backward
Euler optionally).  For the smooth microsecond-scale responses of macro
circuits this keeps the run time proportional to the number of measurement
samples, which is what makes a 55-fault x 5-configuration ATPG run
tractable in pure Python.

On a Newton failure at a step, the engine retries the interval with
recursive halving (``options.transient_substeps`` levels) before raising.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mna import CompiledCircuit
from repro.analysis.newton import newton_solve, robust_solve
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.analysis.results import OperatingPoint, TransientResult
from repro.analysis.dc import operating_point
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError

__all__ = ["transient"]


class _ReactiveState:
    """Companion-model state: capacitor voltages/currents, inductor currents."""

    def __init__(self, compiled: CompiledCircuit, x: np.ndarray) -> None:
        self.cap_v = compiled.capacitor_voltages(x)
        self.cap_i = np.zeros(compiled.n_caps)  # zero at DC
        if compiled.n_inductors:
            self.ind_i = x[compiled.ind_row]
            self.ind_v = np.zeros(compiled.n_inductors)  # DC: short
        else:
            self.ind_i = np.zeros(0)
            self.ind_v = np.zeros(0)


def _companion(compiled: CompiledCircuit, state: _ReactiveState, dt: float,
               method: str):
    """Build (cap_geq, cap_ieq, ind_geq, ind_veq) for one step of size dt."""
    if method == "trap":
        cap_geq = 2.0 * compiled.cap_value / dt
        cap_ieq = cap_geq * state.cap_v + state.cap_i
        ind_geq = 2.0 * compiled.ind_value / dt
        ind_veq = -state.ind_v - ind_geq * state.ind_i
    else:  # backward Euler
        cap_geq = compiled.cap_value / dt
        cap_ieq = cap_geq * state.cap_v
        ind_geq = compiled.ind_value / dt
        ind_veq = -ind_geq * state.ind_i
    return cap_geq, cap_ieq, ind_geq, ind_veq


def _advance(compiled: CompiledCircuit, state: _ReactiveState,
             x: np.ndarray, t_from: float, dt: float, method: str,
             options: SimOptions, depth: int) -> tuple[np.ndarray, int]:
    """Advance the solution by one interval, halving on Newton failure."""
    cap_geq, cap_ieq, ind_geq, ind_veq = _companion(
        compiled, state, dt, method)
    b = compiled.source_vector(t_from + dt)
    outcome = newton_solve(compiled, x, b, options,
                           cap_geq=cap_geq, cap_ieq=cap_ieq,
                           ind_geq=ind_geq, ind_veq=ind_veq)
    iterations = outcome.iterations
    if not outcome.converged:
        if depth >= options.transient_substeps:
            # Last resort: full homotopy ladder at this step.
            x_new, extra, _ = robust_solve(
                compiled, x, b, options, cap_geq=cap_geq, cap_ieq=cap_ieq,
                ind_geq=ind_geq, ind_veq=ind_veq)
            _update_state(compiled, state, x_new, cap_geq, cap_ieq,
                          ind_geq, ind_veq, method)
            return x_new, iterations + extra
        half = dt / 2.0
        x_mid, it1 = _advance(compiled, state, x, t_from, half, method,
                              options, depth + 1)
        x_new, it2 = _advance(compiled, state, x_mid, t_from + half, half,
                              method, options, depth + 1)
        return x_new, iterations + it1 + it2

    _update_state(compiled, state, outcome.x, cap_geq, cap_ieq,
                  ind_geq, ind_veq, method)
    return outcome.x, iterations


def _update_state(compiled: CompiledCircuit, state: _ReactiveState,
                  x: np.ndarray, cap_geq, cap_ieq, ind_geq, ind_veq,
                  method: str) -> None:
    v_new = compiled.capacitor_voltages(x)
    if compiled.n_caps:
        state.cap_i = cap_geq * v_new - cap_ieq
        state.cap_v = v_new
    if compiled.n_inductors:
        # Branch row is v_p - v_n - geq*i = veq  =>  v = geq*i + veq.
        i_new = x[compiled.ind_row]
        state.ind_v = ind_geq * i_new + ind_veq
        state.ind_i = i_new


def transient(
    circuit: Circuit | CompiledCircuit,
    t_stop: float,
    dt: float,
    t_start: float = 0.0,
    options: SimOptions = DEFAULT_OPTIONS,
    x0: OperatingPoint | np.ndarray | None = None,
) -> TransientResult:
    """Integrate the circuit from *t_start* to *t_stop* with fixed step *dt*.

    The initial condition is the DC operating point with every waveform at
    its DC value.  ``x0`` may supply a precomputed
    :class:`OperatingPoint`, or a raw solution vector used as a Newton
    warm start for the internal operating-point solve (the compile-once
    engine threads neighbouring solutions through here).  Waveforms are
    evaluated on the integration grid; the output contains every node
    voltage and branch current at every grid point.

    Raises:
        ConvergenceError: if a step fails even after sub-stepping and the
            homotopy ladder.
    """
    compiled = (circuit if isinstance(circuit, CompiledCircuit)
                else CompiledCircuit(circuit))
    if dt <= 0.0 or t_stop <= t_start:
        raise ValueError("transient needs dt > 0 and t_stop > t_start")

    if isinstance(x0, OperatingPoint):
        op = x0
    else:  # None -> cold start; ndarray -> warm-started DC solve
        op = operating_point(compiled, options, x0=x0)
    x = np.array(op.x, copy=True)
    state = _ReactiveState(compiled, x)
    method = options.transient_method

    n_steps = int(round((t_stop - t_start) / dt))
    times = t_start + dt * np.arange(n_steps + 1)

    n_out = len(times)
    volt_traces = np.empty((compiled.n_nodes, n_out))
    branch_traces = np.empty((compiled.size - compiled.n_nodes, n_out))
    volt_traces[:, 0] = x[:compiled.n_nodes]
    branch_traces[:, 0] = x[compiled.n_nodes:]

    total_iterations = 0
    for k in range(1, n_out):
        try:
            x, iters = _advance(compiled, state, x, times[k - 1], dt,
                                method, options, depth=0)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"transient step to t={times[k]:.4g}s failed: {exc}") from exc
        total_iterations += iters
        volt_traces[:, k] = x[:compiled.n_nodes]
        branch_traces[:, k] = x[compiled.n_nodes:]

    node_voltages = {name: volt_traces[i]
                     for name, i in compiled.node_index.items()}
    branch_currents = {
        name: branch_traces[i - compiled.n_nodes]
        for name, i in compiled.branch_index.items()}
    return TransientResult(t=times, node_voltages=node_voltages,
                           branch_currents=branch_currents,
                           newton_iterations=total_iterations)
