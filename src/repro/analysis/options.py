"""Simulation option bundle (the ``.options`` card of the engine)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimOptions"]


@dataclass(frozen=True)
class SimOptions:
    """Numerical knobs of the analysis engine.

    The defaults are tuned for the small (tens of unknowns) macro circuits
    this library targets; they mirror SPICE conventions where one exists.

    Attributes:
        gmin: minimum conductance from every node to ground [S].  Keeps
            high-impedance nodes (MOS gates) non-singular.
        reltol: relative convergence tolerance on solution updates.
        vntol: absolute voltage tolerance [V].
        abstol: absolute branch-current tolerance [A].
        max_iter: Newton iteration cap per solve.
        vstep_limit: per-iteration clamp on node-voltage updates [V]; the
            crude-but-robust junction limiting used by the engine.
        gmin_steps: gmin homotopy ladder (largest first) used when a plain
            Newton solve fails.
        source_steps: number of source-stepping increments for the final
            homotopy fallback.
        transient_method: ``"trap"`` (trapezoidal) or ``"be"`` (backward
            Euler) integration.
        transient_substeps: hidden sub-steps per output sample on Newton
            failure (halving refinement depth).  Depth 6 = up to dt/64;
            faulted macro circuits near clipping genuinely need that.
        breakdown_voltage: node-voltage magnitude beyond which a strong
            clamp conductance engages.  Defects that cut every DC path
            from a driven node (bias-kill faults) otherwise demand
            kilovolt operating points that only exist because gmin hides
            junction breakdown; the clamp is that breakdown model.
        breakdown_conductance: clamp conductance beyond the breakdown
            voltage [S].
    """

    gmin: float = 1e-12
    reltol: float = 1e-4
    vntol: float = 1e-6
    abstol: float = 1e-10
    max_iter: int = 80
    vstep_limit: float = 0.8
    gmin_steps: tuple[float, ...] = field(
        default=(1e-3, 1e-5, 1e-7, 1e-9, 1e-11))
    source_steps: int = 12
    transient_method: str = "trap"
    transient_substeps: int = 6
    breakdown_voltage: float = 50.0
    breakdown_conductance: float = 1e-3

    def __post_init__(self) -> None:
        if self.transient_method not in ("trap", "be"):
            raise ValueError(
                f"transient_method must be 'trap' or 'be', "
                f"got {self.transient_method!r}")
        if self.max_iter < 2:
            raise ValueError("max_iter must be at least 2")


#: Shared default options instance (immutable, safe to share).
DEFAULT_OPTIONS = SimOptions()
