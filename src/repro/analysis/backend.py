"""Pluggable dense/sparse linear-algebra backend for the MNA stack.

Every layer above this module — :class:`~repro.analysis.mna.Factorization`,
:meth:`~repro.analysis.mna.CompiledCircuit.solve_linear`, the batched
Sherman-Morrison-Woodbury screens of :mod:`repro.analysis.batched` — asks
one question: *given this linearized system, factor it and solve some
right-hand sides*.  This module answers it with two interchangeable
implementations behind a single contract:

* :class:`DenseLU` — SciPy ``lu_factor``/``lu_solve`` when available,
  otherwise a NumPy explicit-inverse fallback.  This is the historical
  path and stays the default for small systems: LAPACK on a 14-unknown
  IV-converter Jacobian beats any sparse machinery by orders of
  magnitude of constant factor.
* :class:`SparseLU` — CSC assembly + ``scipy.sparse.linalg.splu``
  (SuperLU with COLAMD ordering).  Circuit matrices are structurally
  sparse (a handful of entries per row, independent of circuit size), so
  factorization and triangular solves scale with the number of
  *nonzeros* instead of ``n^2``/``n^3`` — the difference between cubic
  and near-linear per-fault cost on the 100-500 node macro zoo.

Selection is automatic by system size (``auto``), with an environment
override::

    REPRO_BACKEND=dense|sparse|auto      # default: auto
    REPRO_SPARSE_THRESHOLD=<unknowns>    # auto crossover, default 100

``sparse`` degrades gracefully to dense when SciPy is absent — the
package stays importable and functional on NumPy-only installs, and the
CI matrix runs a scipy-less leg to prove it.

Both factorization classes share the exact error contract the solver
stack relies on: a singular (or non-finite) matrix raises
:class:`~repro.errors.SingularMatrixError` at construction time, never
returns garbage from :meth:`solve`.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

import numpy as np

from repro.errors import AnalysisError, SingularMatrixError

try:  # SciPy dense LU (optional): cached pivots instead of an inverse.
    from scipy.linalg import LinAlgWarning as _ScipyLinAlgWarning
    from scipy.linalg import lu_factor as _scipy_lu_factor
    from scipy.linalg import lu_solve as _scipy_lu_solve
except ImportError:  # pragma: no cover - environment-dependent
    _scipy_lu_factor = _scipy_lu_solve = _ScipyLinAlgWarning = None

try:  # SciPy sparse (optional): CSC + SuperLU for large systems.
    from scipy import sparse as _scipy_sparse
    from scipy.sparse.linalg import splu as _scipy_splu
except ImportError:  # pragma: no cover - environment-dependent
    _scipy_sparse = _scipy_splu = None

__all__ = [
    "BACKEND_DENSE",
    "BACKEND_SPARSE",
    "BACKEND_AUTO",
    "DEFAULT_SPARSE_THRESHOLD",
    "DenseLU",
    "SparseLU",
    "backend_mode",
    "backend_override",
    "factorize_matrix",
    "select_backend",
    "solve_columns",
    "solve_dense",
    "sparse_available",
    "sparse_threshold",
    "static_operator",
]

BACKEND_DENSE = "dense"
BACKEND_SPARSE = "sparse"
BACKEND_AUTO = "auto"
_MODES = (BACKEND_DENSE, BACKEND_SPARSE, BACKEND_AUTO)

#: Environment variable selecting the backend mode.
ENV_BACKEND = "REPRO_BACKEND"
#: Environment variable overriding the auto-mode size crossover.
ENV_THRESHOLD = "REPRO_SPARSE_THRESHOLD"

#: ``auto`` switches to sparse at this many unknowns.  Chosen well above
#: the paper's macros (the IV-converter compiles to 14 unknowns) and
#: below the zoo's filter family: LAPACK's dense constant factor wins
#: comfortably until the ``n^2`` matvec / ``n^3`` factorization terms
#: start to bite, around a hundred unknowns on current hardware.
DEFAULT_SPARSE_THRESHOLD = 100


def sparse_available() -> bool:
    """True when ``scipy.sparse.linalg.splu`` is importable."""
    return _scipy_splu is not None


def backend_mode() -> str:
    """The requested backend mode (``REPRO_BACKEND``, default ``auto``)."""
    raw = os.environ.get(ENV_BACKEND, BACKEND_AUTO).strip().lower()
    mode = raw or BACKEND_AUTO
    if mode not in _MODES:
        raise AnalysisError(
            f"invalid {ENV_BACKEND}={raw!r}: expected one of {_MODES}")
    return mode


def sparse_threshold() -> int:
    """Auto-mode crossover size (``REPRO_SPARSE_THRESHOLD`` override)."""
    raw = os.environ.get(ENV_THRESHOLD)
    if raw is None or not raw.strip():
        return DEFAULT_SPARSE_THRESHOLD
    try:
        return int(raw)
    except ValueError as exc:
        raise AnalysisError(
            f"invalid {ENV_THRESHOLD}={raw!r}: expected an integer") from exc


def select_backend(n: int, mode: str | None = None) -> str:
    """Resolve the backend kind for an ``n``-unknown system.

    Returns ``"dense"`` or ``"sparse"`` — never ``"auto"``.  A sparse
    request silently degrades to dense when SciPy is absent (the
    documented scipy-less fallback), so callers can branch on the result
    without re-checking availability.
    """
    if mode is None:
        mode = backend_mode()
    elif mode not in _MODES:
        raise AnalysisError(
            f"invalid backend mode {mode!r}: expected one of {_MODES}")
    if not sparse_available():
        return BACKEND_DENSE
    if mode == BACKEND_AUTO:
        return BACKEND_SPARSE if n >= sparse_threshold() else BACKEND_DENSE
    return mode


@contextmanager
def backend_override(mode: str | None):
    """Temporarily pin ``REPRO_BACKEND`` (benches and equivalence tests).

    ``None`` removes the variable, restoring pure auto selection.  The
    prior environment value is restored on exit even on error.
    """
    if mode is not None and mode not in _MODES:
        raise AnalysisError(
            f"invalid backend mode {mode!r}: expected one of {_MODES}")
    prior = os.environ.get(ENV_BACKEND)
    try:
        if mode is None:
            os.environ.pop(ENV_BACKEND, None)
        else:
            os.environ[ENV_BACKEND] = mode
        yield
    finally:
        if prior is None:
            os.environ.pop(ENV_BACKEND, None)
        else:
            os.environ[ENV_BACKEND] = prior


def _check_square(a, what: str) -> int:
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise AnalysisError(f"{what} needs a square matrix, got {a.shape}")
    return a.shape[0]


class DenseLU:
    """Dense LU factorization (SciPy pivots, NumPy-inverse fallback).

    This is the historical :class:`~repro.analysis.mna.Factorization`
    engine, extracted verbatim so both the facade and the batched
    per-column fallbacks share one implementation.
    """

    backend = BACKEND_DENSE

    def __init__(self, matrix: np.ndarray) -> None:
        a = np.array(matrix, dtype=float)
        self.n = _check_square(a, "factorization")
        try:
            if _scipy_lu_factor is not None:
                with warnings.catch_warnings():
                    # SciPy warns on exact zero pivots; the explicit
                    # singularity check below raises instead.
                    warnings.simplefilter("ignore", _ScipyLinAlgWarning)
                    self._lu_piv = _scipy_lu_factor(a)
                self._inv = None
            else:
                self._lu_piv = None
                self._inv = np.linalg.inv(a)
        except (np.linalg.LinAlgError, ValueError) as exc:
            raise SingularMatrixError(
                f"singular matrix in factorization: {exc}") from exc
        if self._lu_piv is not None:
            # SciPy's lu_factor only *warns* on an exact zero pivot;
            # match numpy.linalg.solve and fail loudly instead.
            diagonal = np.diagonal(self._lu_piv[0])
            if (not np.all(np.isfinite(self._lu_piv[0]))
                    or np.any(diagonal == 0.0)):
                raise SingularMatrixError(
                    "singular matrix in factorization: zero pivot")

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.n:
            raise AnalysisError(
                f"RHS has leading dimension {rhs.shape[0]}, "
                f"factorization is {self.n}x{self.n}")
        if self._inv is not None:
            return self._inv @ rhs
        return _scipy_lu_solve(self._lu_piv, rhs)


class SparseLU:
    """Sparse LU via CSC + SuperLU (``scipy.sparse.linalg.splu``).

    Accepts a dense array or any SciPy sparse matrix; the dense->CSC
    conversion is a single ``O(n^2)`` scan paid once per factorization,
    negligible against the dense alternative's ``O(n^3)`` decomposition.
    SuperLU reports exact singularity as a ``RuntimeError`` and silently
    tolerates some degeneracies, so the constructor additionally checks
    the ``U`` factor's diagonal — the contract stays "singular raises
    :class:`~repro.errors.SingularMatrixError` at construction".
    """

    backend = BACKEND_SPARSE

    def __init__(self, matrix) -> None:
        if _scipy_splu is None:
            raise AnalysisError(
                "sparse backend requested but scipy.sparse is unavailable")
        if _scipy_sparse.issparse(matrix):
            mat = matrix.tocsc().astype(float)
        else:
            a = np.asarray(matrix, dtype=float)
            _check_square(a, "factorization")
            mat = _scipy_sparse.csc_array(a)
        self.n = _check_square(mat, "factorization")
        if not np.all(np.isfinite(mat.data)):
            raise SingularMatrixError(
                "singular matrix in factorization: non-finite entries")
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                self._lu = _scipy_splu(mat)
        except (RuntimeError, ValueError) as exc:
            raise SingularMatrixError(
                f"singular matrix in factorization: {exc}") from exc
        u_diag = self._lu.U.diagonal()
        if not np.all(np.isfinite(u_diag)) or np.any(u_diag == 0.0):
            raise SingularMatrixError(
                "singular matrix in factorization: zero pivot")

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.n:
            raise AnalysisError(
                f"RHS has leading dimension {rhs.shape[0]}, "
                f"factorization is {self.n}x{self.n}")
        return self._lu.solve(rhs)


def factorize_matrix(matrix: np.ndarray,
                     mode: str | None = None) -> DenseLU | SparseLU:
    """Factor *matrix* with the backend :func:`select_backend` resolves."""
    a = np.asarray(matrix)
    n = _check_square(a, "factorization")
    if select_backend(n, mode) == BACKEND_SPARSE:
        return SparseLU(a)
    return DenseLU(a)


def solve_dense(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot dense solve through the backend contract.

    Thin chokepoint around LAPACK's dense solve so no caller outside
    this module touches ``numpy.linalg`` directly (the contract enforced
    by ``tools/lint_repro.py``).  Unlike the LU classes this supports
    complex dtypes and stacked (batched) operands, which is what the AC
    sweep and the batched SMW capacitance solves need.

    Raises:
        SingularMatrixError: if LAPACK reports a singular system.
    """
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(str(exc)) from exc


def static_operator(a_static: np.ndarray, kind: str):
    """Matmul operator for a static MNA matrix under backend *kind*.

    For ``"sparse"`` this returns a CSR copy so the per-column residual
    assembly ``A @ X`` costs ``O(nnz * k)`` instead of ``O(n^2 * k)`` —
    the hot multiply of every chord-certification sweep.  For ``"dense"``
    (or when SciPy is absent) the array itself is returned.  Either way
    ``op @ X`` yields a plain ndarray.
    """
    if kind == BACKEND_SPARSE and _scipy_sparse is not None:
        return _scipy_sparse.csr_array(a_static)
    return a_static


def solve_columns(matrices: np.ndarray, rhs: np.ndarray,
                  kind: str = BACKEND_DENSE,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``matrices[k] @ x_k = rhs[:, k]`` for every column *k*.

    The workhorse behind the batched Newton stages: *matrices* is a
    stacked ``(k, n, n)`` Jacobian array, *rhs* the matching ``(n, k)``
    residual columns.  Returns ``(x, singular)`` where singular columns
    carry ``x[:, k] == 0`` and ``singular[k] == True`` — callers mark
    them dead instead of catching exceptions per column.

    Dense kind: one batched LAPACK call serves every column; only if
    LAPACK rejects the whole stack (one singular member) does the loop
    fall back to per-column :class:`DenseLU` — factor once, solve once,
    flag the singular members.  Sparse kind: per-column CSC + SuperLU,
    which keeps the cost near-linear in *n* per column.
    """
    n_cols = rhs.shape[1] if rhs.ndim == 2 else 0
    out = np.zeros_like(rhs, dtype=float)
    singular = np.zeros(n_cols, dtype=bool)
    if n_cols == 0:
        return out, singular
    if kind == BACKEND_SPARSE and sparse_available():
        for k in range(n_cols):
            try:
                out[:, k] = SparseLU(matrices[k]).solve(rhs[:, k])
            except SingularMatrixError:
                singular[k] = True
        return out, singular
    try:
        out[:, :] = np.linalg.solve(
            matrices, rhs.T[:, :, None])[:, :, 0].T
        return out, singular
    except np.linalg.LinAlgError:
        out[:, :] = 0.0
    for k in range(n_cols):
        try:
            out[:, k] = DenseLU(matrices[k]).solve(rhs[:, k])
        except SingularMatrixError:
            singular[k] = True
    return out, singular
