"""Numerical analyses over compiled circuits (the HSPICE substitute).

Public entry points:

* :func:`operating_point` — nonlinear DC solution.
* :func:`dc_sweep` — operating points across a source sweep.
* :func:`transient` — fixed-step trapezoidal/BE time-domain integration.
* :func:`ac_analysis` — small-signal frequency response.
* :class:`SimulationEngine` — compile-once serving layer with fault
  overlays and warm-started Newton (see :mod:`repro.analysis.engine`).
* :class:`BatchedOverlaySolver` — batched Sherman-Morrison-Woodbury
  fault screening on one LU factorization per (base, stimulus) pair
  (see :mod:`repro.analysis.batched`).
* :func:`select_backend` / :func:`backend_override` — dense-vs-sparse
  linear-algebra backend selection (``REPRO_BACKEND``; see
  :mod:`repro.analysis.backend`).
"""

from repro.analysis.ac import ac_analysis
from repro.analysis.backend import (
    BACKEND_AUTO,
    BACKEND_DENSE,
    BACKEND_SPARSE,
    backend_mode,
    backend_override,
    select_backend,
    sparse_available,
)
from repro.analysis.batched import BatchedOverlaySolver, ScreenedSolution
from repro.analysis.dc import dc_sweep, operating_point
from repro.analysis.engine import (
    EngineStats,
    ScreenedObservation,
    SimulationEngine,
    WarmStart,
)
from repro.analysis.mna import CompiledCircuit, Factorization
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.analysis.results import (
    ACResult,
    OperatingPoint,
    SweepResult,
    TransientResult,
)
from repro.analysis.transient import transient

__all__ = [
    "CompiledCircuit",
    "Factorization",
    "BACKEND_AUTO",
    "BACKEND_DENSE",
    "BACKEND_SPARSE",
    "backend_mode",
    "backend_override",
    "select_backend",
    "sparse_available",
    "SimulationEngine",
    "EngineStats",
    "WarmStart",
    "BatchedOverlaySolver",
    "ScreenedSolution",
    "ScreenedObservation",
    "SimOptions",
    "DEFAULT_OPTIONS",
    "operating_point",
    "dc_sweep",
    "transient",
    "ac_analysis",
    "OperatingPoint",
    "SweepResult",
    "TransientResult",
    "ACResult",
]
