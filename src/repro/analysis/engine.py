"""Compile-once simulation engine with fault-overlay stamping.

The economics of compact test generation (paper §3.3, §4.2) hinge on the
cost of one faulty simulation: 55 faults x 5 configurations x dozens of
optimizer steps hit the simulator, and before this layer existed every
call copied the netlist, re-ran :class:`~repro.analysis.mna.CompiledCircuit`
compilation from scratch and cold-started Newton — compilation dominated
wall-clock, not solving.  :class:`SimulationEngine` removes all three
costs:

* **compile once** — each distinct overlay base (the nominal circuit,
  plus one split-channel skeleton per pinhole site) is compiled exactly
  once and cached in a bounded LRU;
* **stamp, don't rebuild** — faults implementing the overlay protocol of
  :mod:`repro.faults.base` are injected as reversible conductance stamps
  on the compiled base (:meth:`CompiledCircuit.push_overlay`), and
  stimulus parameters are patched into the compiled source banks
  (:meth:`CompiledCircuit.patched_source`);
* **warm-start Newton** — the converged DC solution is remembered per
  (base, fault) slot, so adjacent optimizer steps start Newton next to
  the answer instead of at zero.

Fault models that cannot express themselves as conductance stamps (ones
that add or rewire nodes per impact value) transparently fall back to the
legacy copy+recompile path, which remains fully supported.

The ``validate_overlay`` debug mode cross-checks **every** overlay
simulation against the legacy path and raises
:class:`~repro.errors.OverlayValidationError` on disagreement, making
overlay correctness provable on any workload (the equivalence test suite
and ``benchmarks/bench_engine_overlay.py`` run exactly this).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, fields

import numpy as np

from repro._log import get_logger
from repro.analysis.batched import (
    STATUS_SCREENED,
    BatchedOverlaySolver,
)
from repro.analysis.mna import CompiledCircuit
from repro.analysis.newton import robust_solve
from repro.analysis.options import DEFAULT_OPTIONS, SimOptions
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, OverlayValidationError
from repro.faults.base import FaultModel

__all__ = ["EngineStats", "WarmStart", "ScreenedObservation",
           "SimulationEngine"]

_LOG = get_logger("analysis.engine")


@dataclass
class EngineStats:
    """Engine accounting (read by the overlay benchmark and tests).

    Attributes:
        compilations: compiled overlay bases built by this engine (the
            nominal circuit counts as one).
        overlay_simulations: faulty simulations served via stamping.
        legacy_simulations: faulty simulations served via copy+recompile
            (non-overlay fault types, plus ``validate_overlay`` replays).
        nominal_simulations: fault-free simulations served.
        validations: overlay-vs-legacy cross-checks performed.
        base_evictions: compiled bases dropped from the LRU.
        warm_start_hits: simulations that started Newton from a
            remembered neighbouring solution.
        factorizations: nominal-Jacobian LU factorizations built for
            batched screening (one per (base, stimulus) pair).
        screened_simulations: faulty evaluations certified by the
            SMW+chord screen (no per-fault solve of any kind).
        screen_newton_confirms: faulty evaluations that needed the
            batched Newton confirm stage.
        sparse_factorizations: how many of those factorizations the
            size-selected backend served sparsely (CSC + SuperLU; see
            :mod:`repro.analysis.backend`).
        screen_fallbacks: screened faults that escalated to the full
            per-fault robust overlay path.
        factorization_reuses: batched-screening solver cache hits — a
            whole fault family served without factorizing anything (the
            number the serving engine pool exists to maximize).
    """

    compilations: int = 0
    overlay_simulations: int = 0
    legacy_simulations: int = 0
    nominal_simulations: int = 0
    validations: int = 0
    base_evictions: int = 0
    warm_start_hits: int = 0
    factorizations: int = 0
    sparse_factorizations: int = 0
    screened_simulations: int = 0
    screen_newton_confirms: int = 0
    screen_fallbacks: int = 0
    factorization_reuses: int = 0

    def merged(self, other: "EngineStats") -> "EngineStats":
        """Combine two accounts (e.g. across configurations)."""
        return EngineStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})


class WarmStart:
    """Mutable warm-start slot shared between the engine and procedures.

    Procedures read :attr:`x` as the Newton starting estimate for their
    DC operating-point solve and write the converged solution back, so
    the next simulation in the same slot starts next to the answer.
    """

    __slots__ = ("x",)

    def __init__(self) -> None:
        self.x: np.ndarray | None = None


@dataclass(frozen=True)
class ScreenedObservation:
    """One fault's outcome from :meth:`SimulationEngine.screen_faults`.

    Attributes:
        fault: the screened fault model.
        raw: the raw observation, or ``None`` when even the robust
            fallback could not simulate the defect (callers treat that
            as a maximally deviant response, exactly like the per-fault
            path does).
        served: how the observation was produced — ``"screened"``
            (SMW+chord certificate), ``"confirmed"`` (batched Newton),
            ``"fallback"`` (per-fault robust overlay solve),
            ``"overlay"``/``"legacy"`` (procedures or fault types
            outside the screening protocol) or ``"error"``.
        x: the converged solution vector for batched-path observations
            (``None`` on the per-fault paths).  Canonical-mode callers
            feed it back as the warm start of a follow-up confirm solve,
            reproducing what a fresh engine's warm slot would hold.
    """

    fault: FaultModel
    raw: np.ndarray | None
    served: str
    x: np.ndarray | None = None


class SimulationEngine:
    """Serves all simulations of one circuit from compiled state.

    Args:
        circuit: the fault-free circuit (never modified).
        options: simulator options shared by all runs.
        validate_overlay: debug mode — replay every overlay simulation on
            the legacy copy+recompile path and raise
            :class:`OverlayValidationError` on disagreement.
        validate_rtol / validate_atol: tolerances of that cross-check.
            Both paths converge independently to within the Newton
            tolerances, so the defaults are a few orders looser than
            ``SimOptions.reltol``.
        max_bases: bound on cached compiled overlay bases (the nominal
            base is never evicted).
        max_warm_states: bound on remembered warm-start slots.
        max_factorizations: bound on cached batched-screening solvers
            (one per (base, stimulus) pair; see :meth:`screen_faults`).
        warm_start: reuse converged DC solutions as Newton starting
            estimates across adjacent simulations.  This assumes the
            circuit has a **unique** DC operating point (true of the
            paper's macro circuits): on a multi-stable circuit (e.g. a
            latch) a warm start can select a different basin than the
            cold start would, making results order-dependent — and for
            *nominal* simulations ``validate_overlay`` cannot catch it
            (it only cross-checks faulty ones).  Set False for such
            circuits; everything still runs compile-once, just from
            cold Newton starts.
        preflight: run the static lint gate (:mod:`repro.lint`) over
            the circuit before anything compiles.  ``None`` (default)
            skips it, ``"error"`` raises :class:`~repro.errors.LintError`
            on error-severity findings, ``"strict"`` also blocks on
            warnings.
    """

    def __init__(self, circuit: Circuit,
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 validate_overlay: bool = False,
                 validate_rtol: float = 5e-3,
                 validate_atol: float = 1e-5,
                 max_bases: int = 32,
                 max_warm_states: int = 128,
                 max_factorizations: int = 32,
                 warm_start: bool = True,
                 preflight: str | None = None) -> None:
        if preflight not in (None, "error", "strict"):
            raise ValueError(
                f"preflight must be None, 'error' or 'strict', "
                f"got {preflight!r}")
        if preflight is not None:
            # Imported lazily: repro.lint is a downstream consumer of
            # the analysis package, not a dependency of it.
            from repro.lint import preflight_check
            preflight_check(circuit, strict=(preflight == "strict"),
                            stage="SimulationEngine pre-flight lint")
        self.circuit = circuit
        self.options = options
        self.validate_overlay = validate_overlay
        self.validate_rtol = validate_rtol
        self.validate_atol = validate_atol
        self.max_bases = max(1, max_bases)
        self.max_warm_states = max(1, max_warm_states)
        self.max_factorizations = max(1, max_factorizations)
        self.warm_start = warm_start
        self.stats = EngineStats()
        self._bases: OrderedDict[str, CompiledCircuit] = OrderedDict()
        self._warm: OrderedDict[tuple, WarmStart] = OrderedDict()
        self._screen_solvers: OrderedDict[tuple, BatchedOverlaySolver] = \
            OrderedDict()

    # ------------------------------------------------------------------
    # compiled-base management
    # ------------------------------------------------------------------
    @property
    def nominal(self) -> CompiledCircuit:
        """The nominal circuit's compiled form (compiled lazily, once)."""
        return self._base("nominal", lambda: self.circuit)

    def _base(self, key: str,
              build: Callable[[], Circuit]) -> CompiledCircuit:
        compiled = self._bases.get(key)
        if compiled is not None:
            self._bases.move_to_end(key)
            return compiled
        compiled = CompiledCircuit(build())
        self.stats.compilations += 1
        self._bases[key] = compiled
        while len(self._bases) > self.max_bases:
            victim = next(k for k in self._bases if k != "nominal")
            del self._bases[victim]
            self.stats.base_evictions += 1
        return compiled

    def warm_slot(self, *key) -> WarmStart:
        """Warm-start slot for an arbitrary hashable *key* (LRU-bounded).

        With :attr:`warm_start` disabled, a fresh empty (untracked) slot
        is returned every call, so every solve starts cold.
        """
        if not self.warm_start:
            return WarmStart()
        slot = self._warm.get(key)
        if slot is None:
            slot = WarmStart()
            self._warm[key] = slot
        else:
            self._warm.move_to_end(key)
            if slot.x is not None:
                self.stats.warm_start_hits += 1
        while len(self._warm) > self.max_warm_states:
            self._warm.popitem(last=False)
        return slot

    # ------------------------------------------------------------------
    # simulation entry points
    # ------------------------------------------------------------------
    def supports(self, fault: FaultModel, procedure=None) -> bool:
        """True when (*fault*, *procedure*) can run on the overlay path."""
        if procedure is not None and not getattr(
                procedure, "supports_compiled", False):
            return False
        return bool(getattr(fault, "supports_overlay", False))

    def simulate_nominal(self, procedure, params: Mapping[str, float],
                         *, warm: WarmStart | None = None) -> np.ndarray:
        """Fault-free raw observation from the compiled nominal base.

        Args:
            warm: warm-start slot override.  Default is the engine's
                shared nominal slot; canonical-mode callers pass a fresh
                :class:`WarmStart` so the Newton iterate never depends
                on what this engine simulated before.
        """
        self.stats.nominal_simulations += 1
        if warm is None:
            warm = self.warm_slot("nominal", "nominal")
        return procedure.simulate_compiled(
            self.nominal, params, self.options, warm=warm)

    def simulate_fault(self, procedure, params: Mapping[str, float],
                       fault: FaultModel, *,
                       warm: WarmStart | None = None) -> np.ndarray:
        """Faulty raw observation — overlay path when possible.

        Overlay-capable faults are served as conductance stamps on their
        compiled base with a per-(base, fault-site) warm start; others
        fall back to :meth:`simulate_legacy`.  *warm* overrides the
        engine's per-(base, fault) slot (canonical-mode callers pass
        their own slot or a fresh one).
        """
        if not self.supports(fault, procedure):
            return self.simulate_legacy(procedure, params, fault)
        base = self._base(fault.overlay_base_key,
                          lambda: fault.overlay_base(self.circuit))
        stamps = [(s.node_a, s.node_b, s.conductance)
                  for s in fault.stamp_delta(base)]
        if warm is None:
            warm = self.warm_slot(fault.overlay_base_key, fault.fault_id)
        with base.overlay(stamps):
            raw = procedure.simulate_compiled(base, params, self.options,
                                              warm=warm)
        self.stats.overlay_simulations += 1
        if self.validate_overlay:
            self._validate(raw, procedure, params, fault)
        return raw

    def simulate_legacy(self, procedure, params: Mapping[str, float],
                        fault: FaultModel) -> np.ndarray:
        """Copy+recompile reference path (also the non-overlay fallback)."""
        faulty = fault.apply(self.circuit)
        self.stats.legacy_simulations += 1
        return procedure.simulate(faulty, params, self.options)

    # ------------------------------------------------------------------
    # batched candidate-fault screening
    # ------------------------------------------------------------------
    def screen_supported(self, procedure) -> bool:
        """True when *procedure* can be served by batched screening.

        Screening operates on a single DC operating point, so the
        procedure must implement the screening protocol of
        :class:`~repro.testgen.procedures.MeasurementProcedure`
        (``screening_patch`` / ``screening_key`` / ``raw_from_solution``).
        ``validate_overlay`` disables screening: the debug contract is
        that *every* faulty simulation is cross-checked on the legacy
        path, which only the per-fault route performs.
        """
        if self.validate_overlay:
            return False
        return bool(getattr(procedure, "supports_screening", False))

    def screen_faults(self, procedure, params: Mapping[str, float],
                      faults: Sequence[FaultModel], *,
                      canonical: bool = False,
                      ) -> list[ScreenedObservation]:
        """Evaluate many faults at one stimulus via batched SMW solves.

        Faults are grouped by compiled overlay base; each group is served
        by one :class:`BatchedOverlaySolver` (LU-factorized once per
        (base, stimulus) pair and cached) that screens the whole family
        together.  The screen shares the engine's per-fault warm-start
        slots with the per-fault overlay path, so both paths track the
        same solution branches and produce identical verdicts; faults the
        batched stages cannot converge fall back to
        :meth:`simulate_fault` transparently.

        With ``canonical=True`` every history channel is cut: warm-start
        slots are fresh per call, the solver's per-fault solution memory
        is bypassed, and the solver itself is built from a cold Newton
        start.  The result is then a pure function of (circuit, options,
        stimulus, fault) — bitwise equal to the first screen of a brand
        new engine, no matter what this engine served before.  Compiled
        bases and factorized solvers are still reused (they are
        themselves canonical); that reuse is the serving layer's whole
        speedup.

        A fault the robust fallback cannot simulate *at all* yields
        ``raw=None`` (callers treat it as maximally deviant — the same
        contract as the per-fault path).  Nominal-solve failures and
        :class:`OverlayValidationError` propagate.
        """
        results: list[ScreenedObservation | None] = [None] * len(faults)

        def ephemeral_warm():
            return WarmStart() if canonical else None

        if not self.screen_supported(procedure):
            for i, fault in enumerate(faults):
                results[i] = self._serve_per_fault(
                    procedure, params, fault, warm=ephemeral_warm())
            return results

        groups: dict[str, list[int]] = {}
        for i, fault in enumerate(faults):
            if self.supports(fault, procedure):
                groups.setdefault(fault.overlay_base_key, []).append(i)
            else:
                results[i] = self._serve_per_fault(
                    procedure, params, fault, warm=ephemeral_warm())

        for base_key, idxs in groups.items():
            first = faults[idxs[0]]
            base = self._base(base_key,
                              lambda: first.overlay_base(self.circuit))
            solver = self._screen_solver(base_key, base, procedure, params,
                                         canonical=canonical)
            stamp_sets = []
            slots = []
            for i in idxs:
                stamp_sets.append([
                    (s.node_a, s.node_b, s.conductance)
                    for s in faults[i].stamp_delta(base)])
                slots.append(WarmStart() if canonical else
                             self.warm_slot(base_key, faults[i].fault_id))
            solutions = solver.screen(stamp_sets,
                                      warm=[slot.x for slot in slots],
                                      memory=not canonical)
            for i, slot, solution in zip(idxs, slots, solutions):
                fault = faults[i]
                if solution.converged:
                    slot.x = solution.x
                    raw = procedure.raw_from_solution(base, solution.x)
                    if solution.status == STATUS_SCREENED:
                        self.stats.screened_simulations += 1
                    else:
                        self.stats.screen_newton_confirms += 1
                    results[i] = ScreenedObservation(fault, raw,
                                                     solution.status,
                                                     x=solution.x)
                else:
                    self.stats.screen_fallbacks += 1
                    results[i] = self._serve_per_fault(
                        procedure, params, fault, served="fallback",
                        warm=ephemeral_warm())
        return results

    def _serve_per_fault(self, procedure, params, fault: FaultModel,
                         served: str | None = None,
                         warm: WarmStart | None = None,
                         ) -> ScreenedObservation:
        """Serve one screened fault through the per-fault paths."""
        if served is None:
            served = ("overlay" if self.supports(fault, procedure)
                      else "legacy")
        try:
            raw = self.simulate_fault(procedure, params, fault, warm=warm)
        except OverlayValidationError:
            raise
        except AnalysisError as exc:
            _LOG.warning("screen fallback failed (%s): %s -> unsimulatable",
                         fault.cache_key, exc)
            return ScreenedObservation(fault, None, "error")
        # A caller-provided (canonical) slot holds the converged overlay
        # solution after the solve — surface it so a follow-up confirm
        # can warm-start exactly like the engine's own slot would.
        x = warm.x if warm is not None else None
        return ScreenedObservation(fault, raw, served, x=x)

    def _screen_solver(self, base_key: str, base: CompiledCircuit,
                       procedure, params: Mapping[str, float], *,
                       canonical: bool = False) -> BatchedOverlaySolver:
        """Cached batched solver for one (base, stimulus) pair.

        Canonical solvers are keyed separately and built from a cold
        Newton start with no warm-slot traffic: the operating point (and
        therefore the factorization and every screen served from it) is
        a pure function of (base, stimulus), so a cached canonical
        solver is bitwise interchangeable with a freshly built one.
        """
        cache_key = (base_key, procedure.screening_key(params), canonical)
        solver = self._screen_solvers.get(cache_key)
        if solver is not None:
            self._screen_solvers.move_to_end(cache_key)
            self.stats.factorization_reuses += 1
            return solver
        with procedure.screening_patch(base, params):
            b_sources = base.source_vector(None)
            if canonical:
                warm = WarmStart()
            else:
                warm = self.warm_slot(base_key,
                                      ("screen-nominal", cache_key[1]))
            start = (warm.x if warm.x is not None
                     else np.zeros(base.size))
            x_op, _, _ = robust_solve(base, start, b_sources, self.options)
            warm.x = x_op
            solver = BatchedOverlaySolver(base, x_op, b_sources,
                                          self.options)
        self.stats.factorizations += 1
        if solver.backend == "sparse":
            self.stats.sparse_factorizations += 1
        self._screen_solvers[cache_key] = solver
        while len(self._screen_solvers) > self.max_factorizations:
            self._screen_solvers.popitem(last=False)
        return solver

    # ------------------------------------------------------------------
    # overlay validation (debug mode)
    # ------------------------------------------------------------------
    def _validate(self, overlay_raw: np.ndarray, procedure,
                  params: Mapping[str, float], fault: FaultModel) -> None:
        reference = self.simulate_legacy(procedure, params, fault)
        self.stats.validations += 1
        if overlay_raw.shape != reference.shape or not np.allclose(
                overlay_raw, reference,
                rtol=self.validate_rtol, atol=self.validate_atol):
            worst = float(np.max(np.abs(
                np.asarray(overlay_raw, float) -
                np.asarray(reference, float)))) \
                if overlay_raw.shape == reference.shape else float("nan")
            raise OverlayValidationError(
                f"overlay simulation of {fault.cache_key} diverges from "
                f"the legacy path (max |delta| = {worst:.3g}, rtol="
                f"{self.validate_rtol:g}, atol={self.validate_atol:g}, "
                f"params={dict(params)!r})")
        _LOG.debug("overlay validated for %s", fault.cache_key)
