"""Test-parameter declarations and bound/seed bookkeeping.

The paper splits a test configuration into a *description* (which declares
the existence of parameters like ``base`` or ``freq``) and an
*implementation* that adds "boundary values for the test parameters and
values for the variables" plus a seed value per parameter (§2.1-2.2).
:class:`ParameterSpec` is the description-level declaration;
:class:`BoundParameter` is the implementation-level binding.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import TestGenerationError
from repro.units import format_value

__all__ = ["ParameterSpec", "BoundParameter", "ParameterSet"]


@dataclass(frozen=True)
class ParameterSpec:
    """Declaration of one test parameter (description level).

    Attributes:
        name: parameter identifier used in stimulus templates
            (``"base"``, ``"elev"``, ``"iin_dc"``, ``"freq"``).
        unit: physical unit for reports ("A", "Hz", ...).
        description: one-line meaning for rendered configuration cards.
    """

    name: str
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise TestGenerationError(
                f"parameter name {self.name!r} must be a valid identifier")


@dataclass(frozen=True)
class BoundParameter:
    """Implementation-level binding: bounds plus a seed value.

    The seed is the "promising test" starting value supplied by the
    designer/test engineer (paper §2.2); optimizers start from it and
    never leave ``[lower, upper]``.
    """

    spec: ParameterSpec
    lower: float
    upper: float
    seed: float

    def __post_init__(self) -> None:
        if not self.lower < self.upper:
            raise TestGenerationError(
                f"parameter {self.spec.name}: need lower < upper, got "
                f"[{self.lower}, {self.upper}]")
        if not self.lower <= self.seed <= self.upper:
            raise TestGenerationError(
                f"parameter {self.spec.name}: seed {self.seed} outside "
                f"[{self.lower}, {self.upper}]")

    @property
    def name(self) -> str:
        """Shortcut for ``spec.name``."""
        return self.spec.name

    @property
    def span(self) -> float:
        """Width of the allowed interval."""
        return self.upper - self.lower

    def clip(self, value: float) -> float:
        """Clamp *value* into the allowed interval."""
        return float(min(max(value, self.lower), self.upper))

    def normalize(self, value: float) -> float:
        """Map a value into [0, 1] over the allowed interval."""
        return (value - self.lower) / self.span

    def denormalize(self, fraction: float) -> float:
        """Inverse of :meth:`normalize`."""
        return self.lower + fraction * self.span

    def __str__(self) -> str:
        unit = self.spec.unit
        return (f"{self.name} in [{format_value(self.lower, unit)}, "
                f"{format_value(self.upper, unit)}] "
                f"(seed {format_value(self.seed, unit)})")


class ParameterSet:
    """Ordered collection of bound parameters with vector<->dict helpers.

    The optimizers work on plain vectors; the measurement procedures want
    named values.  This class is the adapter, and also provides the
    normalized coordinates the compaction step clusters in.
    """

    def __init__(self, parameters: Sequence[BoundParameter]) -> None:
        if not parameters:
            raise TestGenerationError("a configuration needs >= 1 parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise TestGenerationError(f"duplicate parameter names: {names}")
        self._parameters = tuple(parameters)

    def __iter__(self):
        return iter(self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def __getitem__(self, name: str) -> BoundParameter:
        for parameter in self._parameters:
            if parameter.name == name:
                return parameter
        raise TestGenerationError(f"no such parameter: {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names in declaration order."""
        return tuple(p.name for p in self._parameters)

    @property
    def bounds(self) -> np.ndarray:
        """(d, 2) bounds array for the optimizers."""
        return np.array([[p.lower, p.upper] for p in self._parameters])

    @property
    def seeds(self) -> np.ndarray:
        """Seed vector in declaration order."""
        return np.array([p.seed for p in self._parameters])

    def to_dict(self, vector: Sequence[float]) -> dict[str, float]:
        """Vector (declaration order) -> name-keyed dict."""
        vector = np.atleast_1d(np.asarray(vector, float))
        if vector.shape != (len(self._parameters),):
            raise TestGenerationError(
                f"expected {len(self._parameters)} parameter values, "
                f"got shape {vector.shape}")
        return {p.name: float(v) for p, v in zip(self._parameters, vector)}

    def to_vector(self, values: Mapping[str, float]) -> np.ndarray:
        """Name-keyed dict -> vector in declaration order."""
        missing = set(self.names) - set(values)
        if missing:
            raise TestGenerationError(f"missing parameter values: {missing}")
        return np.array([float(values[name]) for name in self.names])

    def clip(self, vector: Sequence[float]) -> np.ndarray:
        """Clamp a vector into the parameter box."""
        vector = np.atleast_1d(np.asarray(vector, float))
        bounds = self.bounds
        return np.clip(vector, bounds[:, 0], bounds[:, 1])

    def normalize(self, vector: Sequence[float]) -> np.ndarray:
        """Map a vector into the unit box (compaction coordinates)."""
        vector = np.atleast_1d(np.asarray(vector, float))
        bounds = self.bounds
        return (vector - bounds[:, 0]) / (bounds[:, 1] - bounds[:, 0])

    def quantized_key(self, vector: Sequence[float],
                      resolution: float = 1e-6) -> tuple[int, ...]:
        """Stable cache key: normalized coordinates on a fine lattice."""
        normalized = self.normalize(vector)
        return tuple(int(round(v / resolution)) for v in normalized)
