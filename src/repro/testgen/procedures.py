"""Measurement procedures: executable stimulus + observation + post-processing.

A procedure is the executable half of a test configuration.  It knows

1. how to turn parameter values into a stimulus and **simulate** one
   circuit (nominal, Monte-Carlo variant, or faulty), producing a raw
   observation (operating-point values or a waveform); and
2. how to **post-process** a (nominal, observed) pair of raw observations
   into the configuration's scalar return values.

All return values in this library are *deviation* quantities — exactly as
in the paper's Table 1 (``dV(vout)``, ``Max(|dV(t_i)|)``, ``dTHD`` ...), so
``deviations(raw_nom, raw_nom) == 0`` by construction and the tolerance box
is centred on zero.  The split into simulate/post-process lets the
execution engine cache nominal simulations across the thousands of
fault-simulation calls behind a generation run.

Each procedure offers two simulation paths:

* :meth:`MeasurementProcedure.simulate` — the legacy path: derive a
  stimulated netlist copy and compile it.  Kept as the reference for the
  engine's ``validate_overlay`` cross-check and as the fallback for
  fault types outside the overlay protocol.
* :meth:`MeasurementProcedure.simulate_compiled` — the compile-once path
  driven by :class:`repro.analysis.engine.SimulationEngine`: the stimulus
  parameters are *patched* into an already-compiled circuit
  (:meth:`CompiledCircuit.patched_source`) and the DC solve warm-starts
  from the engine-provided :class:`~repro.analysis.engine.WarmStart`
  slot.  No netlist copy, no compilation.

Procedures are macro-agnostic: node and source names are constructor
arguments, so the same classes serve any macro type.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.analysis import SimOptions, DEFAULT_OPTIONS, operating_point, transient
from repro.analysis.mna import CompiledCircuit
from repro.circuit.elements import CurrentSource, VoltageSource
from repro.circuit.netlist import Circuit
from repro.errors import TestGenerationError
from repro.measure import thd_percent
from repro.waveforms import DCWave, SineWave, StepWave, Waveform

__all__ = [
    "MeasurementProcedure",
    "Probe",
    "DCProcedure",
    "SineTHDProcedure",
    "StepProcedure",
    "ACGainProcedure",
]

#: Cap on deviation magnitudes so dead-output infinities stay arithmetic.
_DEVIATION_CAP = 1e9


@dataclass(frozen=True)
class Probe:
    """One observed quantity of a DC measurement.

    Attributes:
        kind: ``"v"`` for a node voltage, ``"i"`` for the branch current
            of a voltage-defined element (e.g. the supply source, giving
            the classic IDD measurement of Eckersall [10]).
        target: node name or element name, respectively.
    """

    kind: str
    target: str

    def __post_init__(self) -> None:
        if self.kind not in ("v", "i"):
            raise TestGenerationError(
                f"probe kind must be 'v' or 'i', got {self.kind!r}")

    def read(self, op) -> float:
        """Extract the probed value from an operating point."""
        return op.v(self.target) if self.kind == "v" else op.i(self.target)

    def __str__(self) -> str:
        return f"{self.kind.upper()}({self.target})"


class MeasurementProcedure(ABC):
    """Executable behaviour of a test configuration."""

    #: Number of scalar return values produced by :meth:`deviations`.
    n_return_values: int = 1

    #: True when :meth:`simulate_compiled` is implemented.  The engine
    #: checks this before routing a simulation to the overlay path, so a
    #: procedure without it safely falls back to copy+recompile instead
    #: of silently dropping the fault overlay.
    supports_compiled: bool = False

    #: True when the procedure's raw observation is a pure function of a
    #: single DC operating point, making it servable by batched SMW fault
    #: screening (:meth:`SimulationEngine.screen_faults`).  Requires the
    #: three ``screening_*``/``raw_from_solution`` hooks below.
    supports_screening: bool = False

    @abstractmethod
    def simulate(self, circuit: Circuit, params: Mapping[str, float],
                 options: SimOptions = DEFAULT_OPTIONS) -> np.ndarray:
        """Apply the stimulus for *params* and return the raw observation."""

    def simulate_compiled(self, compiled: CompiledCircuit,
                          params: Mapping[str, float],
                          options: SimOptions = DEFAULT_OPTIONS,
                          warm=None) -> np.ndarray:
        """Compile-once variant of :meth:`simulate`.

        Patches the stimulus into *compiled* (which may carry a fault
        overlay) instead of deriving a netlist copy, warm-starting the
        DC solve from *warm* (a :class:`repro.analysis.engine.WarmStart`)
        when provided.  Must leave *compiled* unmodified on exit.
        """
        raise TestGenerationError(
            f"{type(self).__name__} does not implement the compile-once "
            "simulation path (supports_compiled is False)")

    # ------------------------------------------------------------------
    # batched-screening protocol (DC-operating-point procedures only)
    # ------------------------------------------------------------------
    def screening_patch(self, compiled: CompiledCircuit,
                        params: Mapping[str, float]):
        """Context manager patching this procedure's stimulus for *params*
        into *compiled* (the fixed operating point the screen solves at)."""
        raise TestGenerationError(
            f"{type(self).__name__} does not implement the batched "
            "screening protocol (supports_screening is False)")

    def screening_key(self, params: Mapping[str, float]) -> tuple:
        """Hashable identity of the screened stimulus — the second half
        of the engine's one-factorization-per-(base, stimulus) cache key."""
        raise TestGenerationError(
            f"{type(self).__name__} does not implement the batched "
            "screening protocol (supports_screening is False)")

    def raw_from_solution(self, compiled: CompiledCircuit,
                          x: np.ndarray) -> np.ndarray:
        """Raw observation extracted from a converged solution vector.

        Must equal what :meth:`simulate_compiled` would observe at the
        same operating point (the screen certifies *x* against the very
        Newton contract that path converges under)."""
        raise TestGenerationError(
            f"{type(self).__name__} does not implement the batched "
            "screening protocol (supports_screening is False)")

    @staticmethod
    def _warm_x(warm) -> np.ndarray | None:
        """Starting estimate held by a warm slot (None when cold)."""
        return warm.x if warm is not None else None

    @staticmethod
    def _store_warm(warm, op) -> None:
        """Write a converged operating point back into a warm slot."""
        if warm is not None:
            warm.x = op.x

    @abstractmethod
    def deviations(self, raw_nominal: np.ndarray,
                   raw_observed: np.ndarray) -> np.ndarray:
        """Post-process a raw pair into scalar deviation return values."""

    @abstractmethod
    def reading_scales(self, raw_nominal: np.ndarray) -> np.ndarray:
        """Representative reading magnitude per return value.

        Used to evaluate the equipment accuracy term of the tolerance box
        (instrument error is specified relative to the reading).
        """

    def _swap_stimulus(self, circuit: Circuit, source_name: str,
                       waveform: Waveform) -> Circuit:
        """Replace the stimulus source's waveform (type-preserving)."""
        element = circuit.element(source_name)
        if not isinstance(element, (CurrentSource, VoltageSource)):
            raise TestGenerationError(
                f"stimulus element {source_name!r} is not a source")
        return circuit.replace_element(
            type(element)(element.name, element.n1, element.n2, waveform))

    def _patch_stimulus(self, compiled: CompiledCircuit, source_name: str,
                        waveform: Waveform):
        """Scoped in-place stimulus patch on a compiled circuit."""
        if not compiled.has_source(source_name):
            raise TestGenerationError(
                f"stimulus element {source_name!r} is not a source")
        return compiled.patched_source(source_name, waveform)

    @staticmethod
    def _cap(values: np.ndarray) -> np.ndarray:
        """Clamp deviations into finite range (dead-output THD -> cap)."""
        return np.clip(np.nan_to_num(values, nan=_DEVIATION_CAP,
                                     posinf=_DEVIATION_CAP,
                                     neginf=-_DEVIATION_CAP),
                       -_DEVIATION_CAP, _DEVIATION_CAP)


class DCProcedure(MeasurementProcedure):
    """DC stimulus level + operating-point probes.

    Implements configurations #1 (``dV(vout)``) and #2 (``dI(vdd)``) of
    the reconstruction, and the two-return-value configuration behind the
    paper's Fig. 5 when given both probes.

    Args:
        source: name of the stimulus source whose DC level is the
            parameter.
        level_param: parameter supplying the DC level.
        probes: observed quantities (one return value each).
    """

    supports_compiled = True
    supports_screening = True

    def __init__(self, source: str, level_param: str,
                 probes: tuple[Probe, ...]) -> None:
        if not probes:
            raise TestGenerationError("DCProcedure needs >= 1 probe")
        self.source = source
        self.level_param = level_param
        self.probes = probes
        self.n_return_values = len(probes)

    def simulate(self, circuit: Circuit, params: Mapping[str, float],
                 options: SimOptions = DEFAULT_OPTIONS) -> np.ndarray:
        level = params[self.level_param]
        stimulated = self._swap_stimulus(circuit, self.source, DCWave(level))
        op = operating_point(stimulated, options)
        return np.array([probe.read(op) for probe in self.probes])

    def simulate_compiled(self, compiled: CompiledCircuit,
                          params: Mapping[str, float],
                          options: SimOptions = DEFAULT_OPTIONS,
                          warm=None) -> np.ndarray:
        level = params[self.level_param]
        with self._patch_stimulus(compiled, self.source, DCWave(level)):
            op = operating_point(compiled, options, x0=self._warm_x(warm))
            self._store_warm(warm, op)
            return np.array([probe.read(op) for probe in self.probes])

    def screening_patch(self, compiled: CompiledCircuit,
                        params: Mapping[str, float]):
        return self._patch_stimulus(compiled, self.source,
                                    DCWave(params[self.level_param]))

    def screening_key(self, params: Mapping[str, float]) -> tuple:
        return (self.source, self.level_param,
                float(params[self.level_param]))

    def raw_from_solution(self, compiled: CompiledCircuit,
                          x: np.ndarray) -> np.ndarray:
        return np.array([
            compiled.node_value(x, probe.target) if probe.kind == "v"
            else compiled.branch_value(x, probe.target)
            for probe in self.probes])

    def deviations(self, raw_nominal: np.ndarray,
                   raw_observed: np.ndarray) -> np.ndarray:
        return self._cap(raw_observed - raw_nominal)

    def reading_scales(self, raw_nominal: np.ndarray) -> np.ndarray:
        return np.abs(raw_nominal)

    def __repr__(self) -> str:
        probes = ", ".join(str(p) for p in self.probes)
        return f"DCProcedure({self.source}={self.level_param}; {probes})"


class SineTHDProcedure(MeasurementProcedure):
    """Sine stimulus + THD measurement at one observed node.

    Implements configuration #3: "transient voltage measured at Vout to be
    sampled at a rate and for a time as required for calculation of the
    THD" (paper §3.4).  The sine rides on a DC level with amplitude
    proportional to it, the first ``settle_periods`` periods are
    discarded, and THD is taken over ``analysis_periods`` whole periods.

    The return value is the THD deviation in percentage points.
    """

    def __init__(self, source: str, observe: str,
                 dc_param: str = "iin_dc", freq_param: str = "freq",
                 amplitude_ratio: float = 0.45,
                 samples_per_period: int = 64,
                 settle_periods: int = 2, analysis_periods: int = 2,
                 n_harmonics: int = 5) -> None:
        if not 0.0 < amplitude_ratio < 1.0:
            raise TestGenerationError(
                f"amplitude_ratio must be in (0, 1), got {amplitude_ratio}")
        self.source = source
        self.observe = observe
        self.dc_param = dc_param
        self.freq_param = freq_param
        self.amplitude_ratio = amplitude_ratio
        self.samples_per_period = samples_per_period
        self.settle_periods = settle_periods
        self.analysis_periods = analysis_periods
        self.n_harmonics = n_harmonics
        self.n_return_values = 1

    supports_compiled = True

    def _stimulus(self, params: Mapping[str, float]) -> SineWave:
        dc = params[self.dc_param]
        freq = params[self.freq_param]
        if freq <= 0.0:
            raise TestGenerationError(f"sine frequency must be > 0: {freq}")
        return SineWave(offset=dc, amplitude=self.amplitude_ratio * dc,
                        freq=freq)

    def _thd_of(self, result) -> np.ndarray:
        thd = thd_percent(result.v(self.observe), self.samples_per_period,
                          self.analysis_periods, self.n_harmonics)
        return np.array([thd])

    def simulate(self, circuit: Circuit, params: Mapping[str, float],
                 options: SimOptions = DEFAULT_OPTIONS) -> np.ndarray:
        wave = self._stimulus(params)
        stimulated = self._swap_stimulus(circuit, self.source, wave)
        total_periods = self.settle_periods + self.analysis_periods
        dt = 1.0 / (self.samples_per_period * wave.freq)
        result = transient(stimulated, t_stop=total_periods / wave.freq,
                           dt=dt, options=options)
        return self._thd_of(result)

    def simulate_compiled(self, compiled: CompiledCircuit,
                          params: Mapping[str, float],
                          options: SimOptions = DEFAULT_OPTIONS,
                          warm=None) -> np.ndarray:
        wave = self._stimulus(params)
        total_periods = self.settle_periods + self.analysis_periods
        dt = 1.0 / (self.samples_per_period * wave.freq)
        with self._patch_stimulus(compiled, self.source, wave):
            op = operating_point(compiled, options, x0=self._warm_x(warm))
            self._store_warm(warm, op)
            result = transient(compiled, t_stop=total_periods / wave.freq,
                               dt=dt, options=options, x0=op)
        return self._thd_of(result)

    def deviations(self, raw_nominal: np.ndarray,
                   raw_observed: np.ndarray) -> np.ndarray:
        return self._cap(raw_observed - raw_nominal)

    def reading_scales(self, raw_nominal: np.ndarray) -> np.ndarray:
        return self._cap(np.abs(raw_nominal))

    def __repr__(self) -> str:
        return (f"SineTHDProcedure({self.source} sine({self.dc_param}, "
                f"{self.amplitude_ratio}x, {self.freq_param}) -> "
                f"THD({self.observe}))")


class StepProcedure(MeasurementProcedure):
    """Slew-limited current/voltage step + sampled output deviation.

    Implements configurations #4 and #5: "Vout to be sampled at
    ``sample_rate`` during ``test_time``" with a step from ``base`` to
    ``base + elev`` (paper Table 1 / Fig. 1).  Two post-processing modes:

    * ``"max"`` — ``Max_i |dV(vout, t_i)|`` (configuration #4);
    * ``"accumulate"`` — mean absolute sample deviation, the
      sample-rate-normalized version of Fig. 1's accumulated sigma-V
      (configuration #5).
    """

    def __init__(self, source: str, observe: str,
                 base_param: str = "base", elev_param: str = "elev",
                 mode: str = "max", sample_rate: float = 100e6,
                 test_time: float = 7.5e-6, t_step: float = 10e-9,
                 slew_rate: float = 800.0) -> None:
        if mode not in ("max", "accumulate"):
            raise TestGenerationError(
                f"mode must be 'max' or 'accumulate', got {mode!r}")
        if sample_rate <= 0.0 or test_time <= 0.0:
            raise TestGenerationError("sample_rate and test_time must be > 0")
        self.source = source
        self.observe = observe
        self.base_param = base_param
        self.elev_param = elev_param
        self.mode = mode
        self.sample_rate = sample_rate
        self.test_time = test_time
        self.t_step = t_step
        self.slew_rate = slew_rate
        self.n_return_values = 1

    supports_compiled = True

    def simulate(self, circuit: Circuit, params: Mapping[str, float],
                 options: SimOptions = DEFAULT_OPTIONS) -> np.ndarray:
        wave = StepWave(base=params[self.base_param],
                        elev=params[self.elev_param],
                        t_step=self.t_step, slew_rate=self.slew_rate)
        stimulated = self._swap_stimulus(circuit, self.source, wave)
        result = transient(stimulated, t_stop=self.test_time,
                           dt=1.0 / self.sample_rate, options=options)
        return result.v(self.observe)

    def simulate_compiled(self, compiled: CompiledCircuit,
                          params: Mapping[str, float],
                          options: SimOptions = DEFAULT_OPTIONS,
                          warm=None) -> np.ndarray:
        wave = StepWave(base=params[self.base_param],
                        elev=params[self.elev_param],
                        t_step=self.t_step, slew_rate=self.slew_rate)
        with self._patch_stimulus(compiled, self.source, wave):
            op = operating_point(compiled, options, x0=self._warm_x(warm))
            self._store_warm(warm, op)
            result = transient(compiled, t_stop=self.test_time,
                               dt=1.0 / self.sample_rate, options=options,
                               x0=op)
        return result.v(self.observe)

    def deviations(self, raw_nominal: np.ndarray,
                   raw_observed: np.ndarray) -> np.ndarray:
        if raw_nominal.shape != raw_observed.shape:
            raise TestGenerationError(
                f"waveform shapes differ: {raw_nominal.shape} vs "
                f"{raw_observed.shape}")
        delta = np.abs(raw_observed - raw_nominal)
        if self.mode == "max":
            return self._cap(np.array([np.max(delta)]))
        return self._cap(np.array([np.mean(delta)]))

    def reading_scales(self, raw_nominal: np.ndarray) -> np.ndarray:
        return np.array([float(np.max(np.abs(raw_nominal)))])

    def __repr__(self) -> str:
        return (f"StepProcedure({self.source} step({self.base_param}, "
                f"{self.elev_param}) -> {self.mode}|d{self.observe}|, "
                f"{self.sample_rate:g}Hz x {self.test_time:g}s)")


class ACGainProcedure(MeasurementProcedure):
    """Small-signal gain measurement at a parameterized frequency.

    Not one of the paper's five IV-converter configurations, but a
    standard analog production measurement (gain/bandwidth screening)
    and a natural member of other macro types' configuration sets.  The
    stimulus is the unit AC excitation of :func:`repro.analysis.ac_analysis`
    at the test-parameter frequency; the return value is the gain
    deviation in dB at that frequency.

    Args:
        source: independent source receiving the unit AC stimulus.
        observe: observed output node.
        freq_param: parameter carrying the measurement frequency [Hz].
        bias_param: optional parameter carrying the source's DC bias —
            when given, the configuration measures gain at a controlled
            operating point (two test parameters: bias and frequency).
        floor_db: magnitudes are floored at this level before the dB
            conversion so dead outputs produce large-but-finite
            deviations.
    """

    def __init__(self, source: str, observe: str,
                 freq_param: str = "freq", bias_param: str | None = None,
                 floor_db: float = -200.0) -> None:
        self.source = source
        self.observe = observe
        self.freq_param = freq_param
        self.bias_param = bias_param
        self.floor_db = floor_db
        self.n_return_values = 1

    supports_compiled = True

    def _gain_db(self, result) -> np.ndarray:
        magnitude = float(np.abs(result.v(self.observe)[0]))
        gain_db = 20.0 * np.log10(max(magnitude, 10.0**(self.floor_db / 20)))
        return np.array([gain_db])

    def simulate(self, circuit: Circuit, params: Mapping[str, float],
                 options: SimOptions = DEFAULT_OPTIONS) -> np.ndarray:
        from repro.analysis import ac_analysis  # local: avoids wide import

        freq = params[self.freq_param]
        if freq <= 0.0:
            raise TestGenerationError(f"AC frequency must be > 0: {freq}")
        if self.bias_param is not None:
            circuit = self._swap_stimulus(
                circuit, self.source, DCWave(params[self.bias_param]))
        result = ac_analysis(circuit, self.source, np.array([freq]),
                             options)
        return self._gain_db(result)

    def simulate_compiled(self, compiled: CompiledCircuit,
                          params: Mapping[str, float],
                          options: SimOptions = DEFAULT_OPTIONS,
                          warm=None) -> np.ndarray:
        from contextlib import nullcontext

        from repro.analysis import ac_analysis  # local: avoids wide import

        freq = params[self.freq_param]
        if freq <= 0.0:
            raise TestGenerationError(f"AC frequency must be > 0: {freq}")
        patch = (self._patch_stimulus(compiled, self.source,
                                      DCWave(params[self.bias_param]))
                 if self.bias_param is not None else nullcontext())
        with patch:
            op = operating_point(compiled, options, x0=self._warm_x(warm))
            self._store_warm(warm, op)
            result = ac_analysis(compiled, self.source, np.array([freq]),
                                 options, op=op)
        return self._gain_db(result)

    def deviations(self, raw_nominal: np.ndarray,
                   raw_observed: np.ndarray) -> np.ndarray:
        return self._cap(raw_observed - raw_nominal)

    def reading_scales(self, raw_nominal: np.ndarray) -> np.ndarray:
        return np.abs(raw_nominal)

    def __repr__(self) -> str:
        return (f"ACGainProcedure({self.source} -> |V({self.observe})| "
                f"in dB at {self.freq_param})")
