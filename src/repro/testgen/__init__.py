"""Test generation: the paper's primary contribution (§2-3).

Layers, bottom-up:

* :mod:`~repro.testgen.parameters` / :mod:`~repro.testgen.procedures` /
  :mod:`~repro.testgen.configuration` — the test-construction vocabulary
  (descriptions, implementations, tests);
* :mod:`~repro.testgen.execution` — simulation + caching engine (with
  batched SMW candidate-fault screening);
* :mod:`~repro.testgen.sensitivity` — the S_f cost function;
* :mod:`~repro.testgen.tps` — tps-graphs and hard/soft impact regions;
* :mod:`~repro.testgen.generator` — the Fig. 6 generation algorithm;
* :mod:`~repro.testgen.sharding` — deterministic dictionary sharding and
  replicated parallel execution.
"""

from repro.testgen.configuration import (
    ReturnValueSpec,
    Test,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.execution import ExecutorStats, MacroTestbench, TestExecutor
from repro.testgen.generator import (
    ConfigOptimization,
    GeneratedTest,
    GenerationResult,
    GenerationSettings,
    generate_test_for_fault,
    generate_tests,
)
from repro.testgen.parameters import BoundParameter, ParameterSet, ParameterSpec
from repro.testgen.procedures import (
    ACGainProcedure,
    DCProcedure,
    MeasurementProcedure,
    Probe,
    SineTHDProcedure,
    StepProcedure,
)
from repro.testgen.sensitivity import (
    SensitivityReport,
    sensitivity,
    sensitivity_components,
)
from repro.testgen.sharding import (
    DEFAULT_SHARD_COUNT,
    ShardedScreenResult,
    ShardResult,
    mc_screen_dictionary_sharded,
    screen_dictionary_sharded,
    shard_assignments,
    shard_faults,
    shard_index,
)
from repro.testgen.tps import (
    ImpactRegion,
    TpsGraph,
    classify_impact_regions,
    compute_tps_graph,
    optimum_drift,
    shape_correlation,
)

__all__ = [
    "ParameterSpec",
    "BoundParameter",
    "ParameterSet",
    "ReturnValueSpec",
    "TestConfigurationDescription",
    "TestConfiguration",
    "Test",
    "MeasurementProcedure",
    "Probe",
    "DCProcedure",
    "SineTHDProcedure",
    "StepProcedure",
    "ACGainProcedure",
    "TestExecutor",
    "MacroTestbench",
    "ExecutorStats",
    "sensitivity",
    "sensitivity_components",
    "SensitivityReport",
    "TpsGraph",
    "compute_tps_graph",
    "optimum_drift",
    "shape_correlation",
    "ImpactRegion",
    "classify_impact_regions",
    "GenerationSettings",
    "ConfigOptimization",
    "GeneratedTest",
    "GenerationResult",
    "generate_test_for_fault",
    "generate_tests",
    "DEFAULT_SHARD_COUNT",
    "shard_index",
    "shard_assignments",
    "shard_faults",
    "ShardResult",
    "ShardedScreenResult",
    "mc_screen_dictionary_sharded",
    "screen_dictionary_sharded",
]
