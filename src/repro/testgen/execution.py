"""Test execution engine: simulation, caching, sensitivity evaluation.

:class:`TestExecutor` runs one configuration against nominal and faulty
circuits.  The central economy: *nominal* raw observations are cached per
quantized parameter point (bounded LRU), so a cost-function evaluation
inside the optimizer costs exactly one **faulty** simulation once the
nominal at that point is known — crucial when 55 faults x 5
configurations x dozens of optimizer steps hit the simulator.

Each executor owns one :class:`~repro.analysis.engine.SimulationEngine`
(one per configuration, so warm-start state tracks that configuration's
stimulus trajectory): faulty simulations of overlay-capable fault models
are served as conductance stamps on a compiled base instead of a netlist
copy plus recompile, and only fault types outside the overlay protocol
fall back to the legacy cached-faulty-circuit path.

:class:`MacroTestbench` bundles the executors of all configurations of a
macro and is the object the generation algorithm drives.

Tolerance-box composition happens here: the box half-width for return
value *i* at parameters *T* is

    box_i(T) = spread_i(T) + 2 * equipment_error_i(|reading_i|)

where ``spread_i`` comes from the configuration's calibrated box function
and the equipment term appears twice because a deviation compares two
measured readings (the golden characterization and the unit under test),
each carrying instrument error.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, fields

import numpy as np

from repro._log import get_logger
from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.analysis.engine import EngineStats, SimulationEngine, WarmStart
from repro.circuit.netlist import Circuit
from repro.errors import (
    AnalysisError,
    OverlayValidationError,
    TestGenerationError,
)
from repro.faults.base import FaultModel
from repro.testgen.configuration import Test, TestConfiguration
from repro.testgen.sensitivity import (
    SensitivityReport,
    sensitivity_components,
)

__all__ = ["ExecutorStats", "TestExecutor", "MacroTestbench"]

_LOG = get_logger("testgen.execution")

#: Deviation assigned when a faulty circuit cannot be simulated at all.
_FAILED_SIMULATION_DEVIATION = 1e9


@dataclass
class ExecutorStats:
    """Simulation accounting (used by the efficiency ablation bench).

    Attributes:
        nominal_simulations / faulty_simulations: simulator invocations.
        nominal_cache_hits: nominal observations served from the LRU.
        nominal_cache_evictions: nominal LRU entries dropped at capacity.
        faulty_cache_evictions: legacy faulty-circuit LRU entries dropped.
        overlay_simulations: faulty simulations served by the engine's
            overlay path (no netlist copy, no recompile).
        screened_simulations: faulty evaluations served by the batched
            SMW screen (certified or Newton-confirmed, no per-fault
            solve).
        screen_margin_confirms: screened verdicts inside the safety
            margin around the detection threshold that were re-run on
            the per-fault path.
    """

    nominal_simulations: int = 0
    faulty_simulations: int = 0
    nominal_cache_hits: int = 0
    nominal_cache_evictions: int = 0
    faulty_cache_evictions: int = 0
    overlay_simulations: int = 0
    screened_simulations: int = 0
    screen_margin_confirms: int = 0

    @property
    def total_simulations(self) -> int:
        """All circuit simulations performed."""
        return self.nominal_simulations + self.faulty_simulations

    def merged(self, other: "ExecutorStats") -> "ExecutorStats":
        """Combine two accounts (e.g. across configurations)."""
        return ExecutorStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})


class TestExecutor:
    """Runs one test configuration against a macro circuit.

    Args:
        nominal_circuit: the fault-free macro circuit.
        configuration: the configuration implementation to execute.
        options: simulator options shared by all runs.
        engine: optional pre-built simulation engine (one is created
            otherwise; executors deliberately do **not** share engines so
            warm-start state follows one configuration's stimulus).  It
            must serve this executor's *nominal_circuit* and *options*.
        validate_overlay: forwarded to the engine — cross-check every
            overlay simulation against the legacy path (debug mode).
            ``True`` also switches a pre-built *engine* into validation.
        nominal_cache_size: bound on the nominal raw-observation LRU.
        faulty_cache_size: bound on the legacy faulty-circuit LRU.
    """

    def __init__(self, nominal_circuit: Circuit,
                 configuration: TestConfiguration,
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 engine: SimulationEngine | None = None,
                 validate_overlay: bool = False,
                 nominal_cache_size: int = 256,
                 faulty_cache_size: int = 64) -> None:
        self.nominal_circuit = nominal_circuit
        self.configuration = configuration
        self.options = options
        if engine is not None:
            if nominal_circuit is not engine.circuit:
                raise TestGenerationError(
                    "executor engine was built for circuit "
                    f"{engine.circuit.name!r}, not {nominal_circuit.name!r}")
            if engine.options != options:
                raise TestGenerationError(
                    "executor engine was built with different SimOptions; "
                    "overlay and legacy-fallback simulations would solve "
                    "to different tolerances")
            if validate_overlay:
                engine.validate_overlay = True
            self.engine = engine
        else:
            self.engine = SimulationEngine(
                nominal_circuit, options, validate_overlay=validate_overlay)
        self.stats = ExecutorStats()
        self.nominal_cache_size = max(1, nominal_cache_size)
        self.faulty_cache_size = max(1, faulty_cache_size)
        self._nominal_cache: OrderedDict[tuple[int, ...], np.ndarray] = \
            OrderedDict()
        self._faulty_cache: OrderedDict[str, Circuit] = OrderedDict()

    # ------------------------------------------------------------------
    # raw simulation layer
    # ------------------------------------------------------------------
    def nominal_raw(self, vector: Sequence[float], *,
                    canonical: bool = False) -> np.ndarray:
        """Nominal raw observation at *vector* (LRU-cached).

        Canonical observations solve from a cold Newton start (fresh
        warm slot), so they are bitwise equal to a brand new executor's
        first nominal at this vector; they cache under their own key so
        warm- and canonical-mode values never mix.
        """
        params = self.configuration.parameters
        key = (params.quantized_key(vector), canonical)
        cached = self._nominal_cache.get(key)
        if cached is not None:
            self._nominal_cache.move_to_end(key)
            self.stats.nominal_cache_hits += 1
            return cached
        procedure = self.configuration.procedure
        if procedure.supports_compiled:
            raw = self.engine.simulate_nominal(
                procedure, params.to_dict(vector),
                warm=WarmStart() if canonical else None)
        else:
            raw = procedure.simulate(self.nominal_circuit,
                                     params.to_dict(vector), self.options)
        self.stats.nominal_simulations += 1
        self._nominal_cache[key] = raw
        while len(self._nominal_cache) > self.nominal_cache_size:
            self._nominal_cache.popitem(last=False)
            self.stats.nominal_cache_evictions += 1
        return raw

    def observed_raw(self, circuit: Circuit,
                     vector: Sequence[float]) -> np.ndarray:
        """Raw observation of an arbitrary circuit at *vector* (uncached)."""
        params = self.configuration.parameters
        raw = self.configuration.procedure.simulate(
            circuit, params.to_dict(vector), self.options)
        self.stats.faulty_simulations += 1
        return raw

    def faulty_raw(self, fault: FaultModel, vector: Sequence[float], *,
                   warm: WarmStart | None = None) -> np.ndarray:
        """Raw observation with *fault* injected (overlay fast path).

        Overlay-capable faults are stamped onto the engine's compiled
        base; others go through the legacy cached netlist copy.  *warm*
        overrides the engine's per-(base, fault) warm slot (canonical
        callers pass their own).
        """
        procedure = self.configuration.procedure
        if self.engine.supports(fault, procedure):
            params = self.configuration.parameters.to_dict(vector)
            raw = self.engine.simulate_fault(procedure, params, fault,
                                             warm=warm)
            self.stats.faulty_simulations += 1
            self.stats.overlay_simulations += 1
            return raw
        return self.observed_raw(self._faulty_circuit(fault), vector)

    def _faulty_circuit(self, fault: FaultModel) -> Circuit:
        """Legacy-path faulty netlist, LRU-cached by exact cache key."""
        key = fault.cache_key
        circuit = self._faulty_cache.get(key)
        if circuit is not None:
            self._faulty_cache.move_to_end(key)
            return circuit
        circuit = fault.apply(self.nominal_circuit)
        self._faulty_cache[key] = circuit
        # Keep the cache bounded: adaptation explores many impacts.
        while len(self._faulty_cache) > self.faulty_cache_size:
            self._faulty_cache.popitem(last=False)
            self.stats.faulty_cache_evictions += 1
        return circuit

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def deviations(self, circuit: Circuit,
                   vector: Sequence[float]) -> np.ndarray:
        """Deviation return values of *circuit* versus nominal."""
        nominal = self.nominal_raw(vector)
        observed = self.observed_raw(circuit, vector)
        return self.configuration.procedure.deviations(nominal, observed)

    def boxes(self, vector: Sequence[float], *,
              canonical: bool = False) -> np.ndarray:
        """Tolerance-box half-widths (spread + 2x equipment error).

        The equipment term scales with the nominal reading, so the box
        inherits the nominal's canonical/warm mode.
        """
        config = self.configuration
        spread = np.atleast_1d(config.box_function(np.asarray(vector, float)))
        if spread.shape != (config.n_return_values,):
            raise TestGenerationError(
                f"box function of {config.name!r} returned shape "
                f"{spread.shape}, expected ({config.n_return_values},)")
        scales = config.procedure.reading_scales(
            self.nominal_raw(vector, canonical=canonical))
        equip = np.array([
            config.equipment.error_bound(kind, float(scale))
            for kind, scale in zip(config.return_kinds, scales)])
        return spread + 2.0 * equip

    def sensitivity(self, fault: FaultModel, vector: Sequence[float], *,
                    canonical: bool = False,
                    _warm: WarmStart | None = None) -> SensitivityReport:
        """Evaluate ``S_f`` for *fault* at parameter *vector*.

        A faulty circuit the simulator cannot converge counts as
        *maximally deviant*: a defect that drives the macro into a state
        the solver cannot even balance (latch-up, rail collapse) is
        certainly outside every tolerance box.  Nominal-circuit failures
        still propagate — those mean the testbench itself is broken.
        :class:`OverlayValidationError` also propagates: it reports a bug
        in the overlay machinery, never a property of the circuit.

        *canonical* cuts every warm-start history channel (fresh slots,
        canonical nominal), making the report a pure function of
        (circuit, configuration, fault, vector); *_warm* is the
        canonical caller's explicit warm slot (the batched screen's
        solution when margin-confirming, mirroring the engine slot a
        fresh executor's screen would have left behind).
        """
        vector = self.configuration.parameters.clip(vector)
        if canonical and _warm is None:
            _warm = WarmStart()
        nominal = self.nominal_raw(vector, canonical=canonical)
        try:
            observed = self.faulty_raw(fault, vector, warm=_warm)
            deviations = self.configuration.procedure.deviations(
                nominal, observed)
        except OverlayValidationError:
            raise
        except AnalysisError as exc:
            _LOG.warning("faulty simulation failed (%s at %s): %s -> "
                         "treating as maximal deviation",
                         fault.cache_key, np.asarray(vector).tolist(), exc)
            deviations = np.full(self.configuration.n_return_values,
                                 _FAILED_SIMULATION_DEVIATION)
        boxes = self.boxes(vector, canonical=canonical)
        components = sensitivity_components(deviations, boxes)
        return SensitivityReport(
            value=float(np.min(components)), components=components,
            deviations=deviations, boxes=boxes,
            params=np.asarray(vector, float))

    def screen_faults(self, faults: Sequence[FaultModel],
                      vector: Sequence[float], *,
                      margin: float = 0.05,
                      canonical: bool = False,
                      ) -> tuple[SensitivityReport, ...]:
        """Evaluate ``S_f`` for a whole fault list at one parameter point.

        This is candidate-fault screening rewired onto the batched SMW
        solver: the engine factorizes the nominal system once per
        (overlay base, stimulus) pair and serves every fault of a family
        as a rank-k update, with automatic per-fault Newton fallback —
        see :meth:`SimulationEngine.screen_faults`.  The tolerance boxes
        are composed once for the vector instead of once per fault.

        Verdicts are guaranteed to match :meth:`sensitivity`: screened
        solutions are certified against the per-fault Newton convergence
        contract, and any screened verdict closer than *margin* to the
        detection threshold ``S_f = 0`` is re-evaluated on the per-fault
        path outright.  Procedures outside the screening protocol (and
        engines in ``validate_overlay`` debug mode) transparently fall
        back to per-fault :meth:`sensitivity` calls.

        With ``canonical=True`` the whole evaluation runs history-free
        (see :meth:`SimulationEngine.screen_faults`): the reports are
        bitwise equal to a brand new executor's first
        ``screen_faults(faults, vector)`` regardless of what this
        executor served before — the contract the serving layer's
        verdict cache is keyed on.
        """
        vector = self.configuration.parameters.clip(vector)
        procedure = self.configuration.procedure
        if not self.engine.screen_supported(procedure):
            return tuple(self.sensitivity(fault, vector,
                                          canonical=canonical)
                         for fault in faults)
        nominal = self.nominal_raw(vector, canonical=canonical)
        boxes = self.boxes(vector, canonical=canonical)
        if np.any(boxes <= 0.0):
            raise TestGenerationError("tolerance boxes must be positive")
        params = self.configuration.parameters.to_dict(vector)
        outcomes = self.engine.screen_faults(procedure, params, faults,
                                             canonical=canonical)

        # Post-process the whole family at once: screened raw
        # observations are fixed-length operating-point vectors, so one
        # stacked ``deviations`` call replaces a per-fault loop (the
        # screening protocol guarantees elementwise post-processing).
        n_ret = self.configuration.n_return_values
        raws = np.zeros((len(faults), n_ret))
        unsimulatable = np.zeros(len(faults), dtype=bool)
        for k, outcome in enumerate(outcomes):
            if outcome.raw is None:
                unsimulatable[k] = True
            else:
                raws[k] = outcome.raw
        deviations = np.atleast_2d(procedure.deviations(nominal, raws))
        deviations[unsimulatable] = _FAILED_SIMULATION_DEVIATION
        components = 1.0 - np.abs(deviations) / boxes
        values = components.min(axis=1)

        params_arr = np.asarray(vector, float)
        reports = []
        for k, (fault, outcome) in enumerate(zip(faults, outcomes)):
            value = float(values[k])
            screened = outcome.served in ("screened", "confirmed")
            if screened and abs(value) < margin:
                # Borderline verdict: margin-confirm on the per-fault
                # path so tolerance-level differences can never flip a
                # detection decision.  sensitivity() does the
                # faulty_simulations accounting for this fault.  In
                # canonical mode the confirm warm-starts from the
                # screened solution — exactly the engine slot a fresh
                # executor's screen would have left for it.
                self.stats.screen_margin_confirms += 1
                if canonical:
                    warm = WarmStart()
                    warm.x = outcome.x
                    reports.append(self.sensitivity(
                        fault, vector, canonical=True, _warm=warm))
                else:
                    reports.append(self.sensitivity(fault, vector))
                continue
            self.stats.faulty_simulations += 1
            if screened:
                self.stats.screened_simulations += 1
            reports.append(SensitivityReport(
                value=value, components=components[k],
                deviations=deviations[k], boxes=boxes, params=params_arr))
        return tuple(reports)

    def detection_probabilities(self, faults: Sequence[FaultModel],
                                vector: Sequence[float], *,
                                variation=None,
                                n_samples: int = 256,
                                seed: int = 0,
                                boxes: np.ndarray | None = None,
                                confirm_margin: float = 0.02,
                                vectorized: bool = True):
        """Per-fault detection probabilities under process spread.

        Runs the vectorized Monte Carlo tolerance screen
        (:func:`repro.tolerance.montecarlo.screen_dictionary_montecarlo`)
        for this executor's configuration at parameter *vector*: every
        (process sample x fault) pair is served from one factorized
        nominal system per overlay base, and each fault's verdict is the
        fraction of samples in which its deviation escapes the tolerance
        box.  This is the probabilistic analog of :meth:`screen_faults` —
        where a sensitivity report answers *does the nominal device
        detect the fault*, the returned
        :class:`~repro.tolerance.montecarlo.MonteCarloScreenResult`
        answers *how often a manufactured device does*.

        Args:
            faults: fault dictionary slice to screen (unique ids).
            vector: configuration parameter vector (clipped to bounds).
            variation: process-spread specification; default
                :data:`repro.tolerance.process.DEFAULT_PROCESS`.
            n_samples / seed: process-sample batch geometry.
            boxes: externally supplied box half-widths (``None`` derives
                the empirical box from this run's fault-free spread).
            confirm_margin / vectorized: forwarded to the screen.
        """
        # Imported lazily: the tolerance layer type-checks against
        # testgen.configuration, so a module-level import would tie the
        # two packages into an import cycle.
        from repro.tolerance.montecarlo import screen_dictionary_montecarlo
        from repro.tolerance.process import DEFAULT_PROCESS
        if variation is None:
            variation = DEFAULT_PROCESS
        return screen_dictionary_montecarlo(
            self.nominal_circuit, self.configuration, list(faults),
            list(vector), self.options, variation=variation,
            n_samples=n_samples, seed=seed, boxes=boxes,
            confirm_margin=confirm_margin, vectorized=vectorized)

    def evaluate_test(self, fault: FaultModel, test: Test) -> SensitivityReport:
        """Evaluate ``S_f`` for *fault* at a concrete :class:`Test`.

        Configuration identity is compared **by name only**: configuration
        names are unique within a testbench, and equivalent configuration
        objects are legitimately rebuilt (multiprocessing workers unpickle
        them, results are rehydrated from JSON).  Comparing by object
        identity alongside the name would let a *stale* object with a
        matching name slip through the identity arm anyway — the name is
        the contract, so it is the whole check.
        """
        if test.config_name != self.configuration.name:
            raise TestGenerationError(
                f"test belongs to {test.config_name!r}, executor runs "
                f"{self.configuration.name!r}")
        return self.sensitivity(fault, test.values)


class MacroTestbench:
    """All test configurations of a macro wired to executors.

    This is the object the generation and compaction algorithms operate
    on: it owns one :class:`TestExecutor` per configuration and exposes
    fault-sensitivity evaluation by configuration name.
    """

    def __init__(self, circuit: Circuit,
                 configurations: Sequence[TestConfiguration],
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 validate_overlay: bool = False) -> None:
        if not configurations:
            raise TestGenerationError("testbench needs >= 1 configuration")
        names = [c.name for c in configurations]
        if len(set(names)) != len(names):
            raise TestGenerationError(
                f"duplicate configuration names: {names}")
        self.circuit = circuit
        self.executors: dict[str, TestExecutor] = {
            config.name: TestExecutor(circuit, config, options,
                                      validate_overlay=validate_overlay)
            for config in configurations}

    @property
    def configuration_names(self) -> tuple[str, ...]:
        """Configuration names in declaration order."""
        return tuple(self.executors)

    def configuration(self, name: str) -> TestConfiguration:
        """Configuration implementation by name."""
        return self.executor(name).configuration

    def executor(self, name: str) -> TestExecutor:
        """Executor by configuration name."""
        try:
            return self.executors[name]
        except KeyError:
            raise TestGenerationError(
                f"no such configuration: {name!r} "
                f"(have {list(self.executors)})") from None

    def sensitivity(self, fault: FaultModel, config_name: str,
                    vector: Sequence[float]) -> SensitivityReport:
        """Evaluate ``S_f`` under one configuration."""
        return self.executor(config_name).sensitivity(fault, vector)

    def screen_faults(self, config_name: str,
                      faults: Sequence[FaultModel],
                      vector: Sequence[float],
                      ) -> tuple[SensitivityReport, ...]:
        """Batched ``S_f`` screening of a fault list under one
        configuration (see :meth:`TestExecutor.screen_faults`)."""
        return self.executor(config_name).screen_faults(faults, vector)

    def detection_probabilities(self, config_name: str,
                                faults: Sequence[FaultModel],
                                vector: Sequence[float], **kwargs):
        """Monte Carlo detection probabilities under one configuration
        (see :meth:`TestExecutor.detection_probabilities`)."""
        return self.executor(config_name).detection_probabilities(
            faults, vector, **kwargs)

    def evaluate_test(self, fault: FaultModel,
                      test: Test) -> SensitivityReport:
        """Evaluate ``S_f`` at a concrete test (any owned configuration)."""
        return self.executor(test.config_name).evaluate_test(fault, test)

    @property
    def stats(self) -> ExecutorStats:
        """Combined simulation accounting across configurations."""
        total = ExecutorStats()
        for executor in self.executors.values():
            total = total.merged(executor.stats)
        return total

    @property
    def engine_stats(self) -> EngineStats:
        """Combined engine accounting (compiles, overlays, warm starts)."""
        total = EngineStats()
        for executor in self.executors.values():
            total = total.merged(executor.engine.stats)
        return total
