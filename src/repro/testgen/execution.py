"""Test execution engine: simulation, caching, sensitivity evaluation.

:class:`TestExecutor` runs one configuration against nominal and faulty
circuits.  The central economy: *nominal* raw observations are cached per
quantized parameter point, so a cost-function evaluation inside the
optimizer costs exactly one **faulty** simulation once the nominal at that
point is known — crucial when 55 faults x 5 configurations x dozens of
optimizer steps hit the simulator.

:class:`MacroTestbench` bundles the executors of all configurations of a
macro and is the object the generation algorithm drives.

Tolerance-box composition happens here: the box half-width for return
value *i* at parameters *T* is

    box_i(T) = spread_i(T) + 2 * equipment_error_i(|reading_i|)

where ``spread_i`` comes from the configuration's calibrated box function
and the equipment term appears twice because a deviation compares two
measured readings (the golden characterization and the unit under test),
each carrying instrument error.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro._log import get_logger
from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, TestGenerationError
from repro.faults.base import FaultModel
from repro.testgen.configuration import Test, TestConfiguration
from repro.testgen.sensitivity import (
    SensitivityReport,
    sensitivity_components,
)

__all__ = ["ExecutorStats", "TestExecutor", "MacroTestbench"]

_LOG = get_logger("testgen.execution")

#: Deviation assigned when a faulty circuit cannot be simulated at all.
_FAILED_SIMULATION_DEVIATION = 1e9


@dataclass
class ExecutorStats:
    """Simulation accounting (used by the efficiency ablation bench)."""

    nominal_simulations: int = 0
    faulty_simulations: int = 0
    nominal_cache_hits: int = 0

    @property
    def total_simulations(self) -> int:
        """All circuit simulations performed."""
        return self.nominal_simulations + self.faulty_simulations

    def merged(self, other: "ExecutorStats") -> "ExecutorStats":
        """Combine two accounts (e.g. across configurations)."""
        return ExecutorStats(
            self.nominal_simulations + other.nominal_simulations,
            self.faulty_simulations + other.faulty_simulations,
            self.nominal_cache_hits + other.nominal_cache_hits)


class TestExecutor:
    """Runs one test configuration against a macro circuit.

    Args:
        nominal_circuit: the fault-free macro circuit.
        configuration: the configuration implementation to execute.
        options: simulator options shared by all runs.
    """

    def __init__(self, nominal_circuit: Circuit,
                 configuration: TestConfiguration,
                 options: SimOptions = DEFAULT_OPTIONS) -> None:
        self.nominal_circuit = nominal_circuit
        self.configuration = configuration
        self.options = options
        self.stats = ExecutorStats()
        self._nominal_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._faulty_cache: dict[str, Circuit] = {}

    # ------------------------------------------------------------------
    # raw simulation layer
    # ------------------------------------------------------------------
    def nominal_raw(self, vector: Sequence[float]) -> np.ndarray:
        """Nominal raw observation at *vector* (cached)."""
        params = self.configuration.parameters
        key = params.quantized_key(vector)
        cached = self._nominal_cache.get(key)
        if cached is not None:
            self.stats.nominal_cache_hits += 1
            return cached
        raw = self.configuration.procedure.simulate(
            self.nominal_circuit, params.to_dict(vector), self.options)
        self.stats.nominal_simulations += 1
        self._nominal_cache[key] = raw
        return raw

    def observed_raw(self, circuit: Circuit,
                     vector: Sequence[float]) -> np.ndarray:
        """Raw observation of an arbitrary circuit at *vector* (uncached)."""
        params = self.configuration.parameters
        raw = self.configuration.procedure.simulate(
            circuit, params.to_dict(vector), self.options)
        self.stats.faulty_simulations += 1
        return raw

    def _faulty_circuit(self, fault: FaultModel) -> Circuit:
        key = fault.cache_key
        circuit = self._faulty_cache.get(key)
        if circuit is None:
            circuit = fault.apply(self.nominal_circuit)
            # Keep the cache bounded: adaptation explores many impacts.
            if len(self._faulty_cache) > 64:
                self._faulty_cache.clear()
            self._faulty_cache[key] = circuit
        return circuit

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def deviations(self, circuit: Circuit,
                   vector: Sequence[float]) -> np.ndarray:
        """Deviation return values of *circuit* versus nominal."""
        nominal = self.nominal_raw(vector)
        observed = self.observed_raw(circuit, vector)
        return self.configuration.procedure.deviations(nominal, observed)

    def boxes(self, vector: Sequence[float]) -> np.ndarray:
        """Tolerance-box half-widths (spread + 2x equipment error)."""
        config = self.configuration
        spread = np.atleast_1d(config.box_function(np.asarray(vector, float)))
        if spread.shape != (config.n_return_values,):
            raise TestGenerationError(
                f"box function of {config.name!r} returned shape "
                f"{spread.shape}, expected ({config.n_return_values},)")
        scales = config.procedure.reading_scales(self.nominal_raw(vector))
        equip = np.array([
            config.equipment.error_bound(kind, float(scale))
            for kind, scale in zip(config.return_kinds, scales)])
        return spread + 2.0 * equip

    def sensitivity(self, fault: FaultModel,
                    vector: Sequence[float]) -> SensitivityReport:
        """Evaluate ``S_f`` for *fault* at parameter *vector*.

        A faulty circuit the simulator cannot converge counts as
        *maximally deviant*: a defect that drives the macro into a state
        the solver cannot even balance (latch-up, rail collapse) is
        certainly outside every tolerance box.  Nominal-circuit failures
        still propagate — those mean the testbench itself is broken.
        """
        vector = self.configuration.parameters.clip(vector)
        faulty = self._faulty_circuit(fault)
        nominal = self.nominal_raw(vector)  # failures here propagate
        try:
            observed = self.observed_raw(faulty, vector)
            deviations = self.configuration.procedure.deviations(
                nominal, observed)
        except AnalysisError as exc:
            _LOG.warning("faulty simulation failed (%s at %s): %s -> "
                         "treating as maximal deviation",
                         fault.cache_key, np.asarray(vector).tolist(), exc)
            deviations = np.full(self.configuration.n_return_values,
                                 _FAILED_SIMULATION_DEVIATION)
        boxes = self.boxes(vector)
        components = sensitivity_components(deviations, boxes)
        return SensitivityReport(
            value=float(np.min(components)), components=components,
            deviations=deviations, boxes=boxes,
            params=np.asarray(vector, float))

    def evaluate_test(self, fault: FaultModel, test: Test) -> SensitivityReport:
        """Evaluate ``S_f`` for *fault* at a concrete :class:`Test`."""
        if test.configuration is not self.configuration and \
                test.config_name != self.configuration.name:
            raise TestGenerationError(
                f"test belongs to {test.config_name!r}, executor runs "
                f"{self.configuration.name!r}")
        return self.sensitivity(fault, test.values)


class MacroTestbench:
    """All test configurations of a macro wired to executors.

    This is the object the generation and compaction algorithms operate
    on: it owns one :class:`TestExecutor` per configuration and exposes
    fault-sensitivity evaluation by configuration name.
    """

    def __init__(self, circuit: Circuit,
                 configurations: Sequence[TestConfiguration],
                 options: SimOptions = DEFAULT_OPTIONS) -> None:
        if not configurations:
            raise TestGenerationError("testbench needs >= 1 configuration")
        names = [c.name for c in configurations]
        if len(set(names)) != len(names):
            raise TestGenerationError(
                f"duplicate configuration names: {names}")
        self.circuit = circuit
        self.executors: dict[str, TestExecutor] = {
            config.name: TestExecutor(circuit, config, options)
            for config in configurations}

    @property
    def configuration_names(self) -> tuple[str, ...]:
        """Configuration names in declaration order."""
        return tuple(self.executors)

    def configuration(self, name: str) -> TestConfiguration:
        """Configuration implementation by name."""
        return self.executor(name).configuration

    def executor(self, name: str) -> TestExecutor:
        """Executor by configuration name."""
        try:
            return self.executors[name]
        except KeyError:
            raise TestGenerationError(
                f"no such configuration: {name!r} "
                f"(have {list(self.executors)})") from None

    def sensitivity(self, fault: FaultModel, config_name: str,
                    vector: Sequence[float]) -> SensitivityReport:
        """Evaluate ``S_f`` under one configuration."""
        return self.executor(config_name).sensitivity(fault, vector)

    def evaluate_test(self, fault: FaultModel,
                      test: Test) -> SensitivityReport:
        """Evaluate ``S_f`` at a concrete test (any owned configuration)."""
        return self.executor(test.config_name).evaluate_test(fault, test)

    @property
    def stats(self) -> ExecutorStats:
        """Combined simulation accounting across configurations."""
        total = ExecutorStats()
        for executor in self.executors.values():
            total = total.merged(executor.stats)
        return total
