"""The sensitivity cost function S_f (paper §3.1).

For a fault model ``f``, test parameters ``T`` and return-value deviations
``d_i(T) = r_f,i(T) - r_nom,i(T)`` with tolerance-box half-widths
``box_i(T)``:

    S_f,i(T) = 1 - |d_i(T)| / box_i(T)
    S_f(T)   = min_i S_f,i(T)

Properties (matching the paper's definition and tps-graph legends):

* ``S_f = 1``  — no observable difference at all ("insensitivity has cost
  value 1", §4.1);
* ``S_f in (0, 1)`` — a difference exists but hides inside the tolerance
  box (undetectable);
* ``S_f < 0`` — the response escapes the box: detection is guaranteed
  despite process spread and tester inaccuracy;
* for multiple return values "selection of the minimal sensitivity value
  for all individual return values can be used" (§3.1) — hence the min.

``S_f`` is used directly as the minimization cost of the generation
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TestGenerationError

__all__ = ["sensitivity_components", "sensitivity", "SensitivityReport"]


def sensitivity_components(deviations: np.ndarray,
                           boxes: np.ndarray) -> np.ndarray:
    """Per-return-value sensitivities ``1 - |d_i| / box_i``."""
    deviations = np.atleast_1d(np.asarray(deviations, float))
    boxes = np.atleast_1d(np.asarray(boxes, float))
    if deviations.shape != boxes.shape:
        raise TestGenerationError(
            f"deviations {deviations.shape} vs boxes {boxes.shape}")
    if np.any(boxes <= 0.0):
        raise TestGenerationError("tolerance boxes must be positive")
    return 1.0 - np.abs(deviations) / boxes


def sensitivity(deviations: np.ndarray, boxes: np.ndarray) -> float:
    """Scalar cost ``S_f = min_i (1 - |d_i| / box_i)``."""
    return float(np.min(sensitivity_components(deviations, boxes)))


@dataclass(frozen=True)
class SensitivityReport:
    """Full evaluation record of ``S_f`` at one parameter point.

    Attributes:
        value: the scalar sensitivity ``S_f``.
        components: per-return-value sensitivities.
        deviations: raw deviations ``r_f - r_nom``.
        boxes: tolerance-box half-widths used (spread + equipment).
        params: the evaluated parameter vector.
    """

    value: float
    components: np.ndarray
    deviations: np.ndarray
    boxes: np.ndarray
    params: np.ndarray

    @property
    def detected(self) -> bool:
        """True when detection is guaranteed (``S_f < 0``)."""
        return self.value < 0.0

    def __repr__(self) -> str:
        flag = "DETECTED" if self.detected else "undetected"
        return (f"SensitivityReport(S={self.value:.4g}, {flag}, "
                f"params={self.params.tolist()})")
