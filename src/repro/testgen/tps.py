"""Test-parameter sensitivity (tps) graphs and impact-region classification.

A tps-graph (paper §3.1, Figs 2-4) samples the sensitivity cost
``S_f(T_tc)`` on a grid over the test-parameter space of one configuration
for one fault model.  Positive regions are undetectable, negative regions
guarantee detection, and the minimum is the optimal test-parameter point.

§3.2 classifies the fault-impact axis into two regions by the behaviour of
these graphs:

* **hard-fault region** (strong impacts): the landscape shape depends on
  the exact model parameter value;
* **soft-fault region** (weak impacts): the landscape shape is stable —
  only "a global flattening and upward shift of values" occurs as the
  impact weakens further, so the argmin stops moving.

:func:`classify_impact_regions` reproduces that analysis: it sweeps the
impact, computes graphs, and labels each impact by whether the optimum has
stabilized relative to the next weaker impact.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import TestGenerationError
from repro.faults.base import FaultModel
from repro.testgen.execution import TestExecutor

__all__ = [
    "TpsGraph",
    "compute_tps_graph",
    "optimum_drift",
    "shape_correlation",
    "ImpactRegion",
    "classify_impact_regions",
]


@dataclass(frozen=True)
class TpsGraph:
    """Sensitivity values on a parameter grid for one fault model.

    Attributes:
        config_name: owning configuration.
        fault_id / impact: identity of the evaluated fault model.
        param_names: axis parameter names (1 or 2).
        axes: grid coordinates per axis.
        values: ``S_f`` array, shape ``(len(axes[0]),)`` or
            ``(len(axes[0]), len(axes[1]))`` with axis 0 = first parameter.
    """

    config_name: str
    fault_id: str
    impact: float
    param_names: tuple[str, ...]
    axes: tuple[np.ndarray, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = tuple(len(a) for a in self.axes)
        if self.values.shape != expected:
            raise TestGenerationError(
                f"tps values shape {self.values.shape} != grid {expected}")

    @property
    def min_value(self) -> float:
        """The most sensitive (lowest) value on the grid."""
        return float(np.min(self.values))

    @property
    def argmin_params(self) -> np.ndarray:
        """Parameter vector of the grid minimum."""
        flat_index = int(np.argmin(self.values))
        index = np.unravel_index(flat_index, self.values.shape)
        return np.array([axis[i] for axis, i in zip(self.axes, index)])

    @property
    def detection_fraction(self) -> float:
        """Fraction of grid points with guaranteed detection (S < 0)."""
        return float(np.mean(self.values < 0.0))

    def normalized_argmin(self) -> np.ndarray:
        """Argmin in per-axis [0, 1] coordinates (for drift metrics)."""
        mins = np.array([axis[0] for axis in self.axes])
        maxs = np.array([axis[-1] for axis in self.axes])
        return (self.argmin_params - mins) / (maxs - mins)


def compute_tps_graph(
    executor: TestExecutor,
    fault: FaultModel,
    axes: Sequence[Sequence[float]] | None = None,
    points_per_axis: int = 9,
) -> TpsGraph:
    """Sample ``S_f`` on a grid over the configuration's parameter box.

    Args:
        executor: executor of the configuration to map.
        fault: fault model (at the impact of interest).
        axes: explicit grid coordinates per parameter; defaults to a
            uniform grid of *points_per_axis* over the bounds.
        points_per_axis: default grid resolution.

    Note:
        Cost is one faulty simulation per grid point (nominal responses
        are cached in the executor), so a 20x20 THD graph is 400
        transient runs — the same economics the paper faced with HSPICE.
    """
    parameters = executor.configuration.parameters
    if axes is None:
        axes = [np.linspace(p.lower, p.upper, points_per_axis)
                for p in parameters]
    else:
        axes = [np.asarray(a, float) for a in axes]
        if len(axes) != len(parameters):
            raise TestGenerationError(
                f"{len(axes)} axes for {len(parameters)} parameters")

    shape = tuple(len(a) for a in axes)
    values = np.empty(shape)
    for flat_index in range(int(np.prod(shape))):
        index = np.unravel_index(flat_index, shape)
        vector = np.array([axis[i] for axis, i in zip(axes, index)])
        values[index] = executor.sensitivity(fault, vector).value

    return TpsGraph(
        config_name=executor.configuration.name, fault_id=fault.fault_id,
        impact=fault.impact, param_names=parameters.names,
        axes=tuple(np.asarray(a, float) for a in axes), values=values)


def optimum_drift(first: TpsGraph, second: TpsGraph) -> float:
    """Normalized distance between the argmins of two graphs (0..sqrt(d))."""
    if first.param_names != second.param_names:
        raise TestGenerationError(
            f"graphs over different parameters: {first.param_names} vs "
            f"{second.param_names}")
    return float(np.linalg.norm(first.normalized_argmin()
                                - second.normalized_argmin()))


def shape_correlation(first: TpsGraph, second: TpsGraph) -> float:
    """Pearson correlation of the two landscapes (shape similarity).

    In the soft-fault region, weakening the impact only flattens and
    shifts the landscape, so correlation stays near 1; in the hard-fault
    region the shapes genuinely differ.
    """
    a = np.asarray(first.values, float).ravel()
    b = np.asarray(second.values, float).ravel()
    if a.shape != b.shape:
        raise TestGenerationError("graphs have different grid shapes")
    finite = np.isfinite(a) & np.isfinite(b)
    a, b = a[finite], b[finite]
    if len(a) < 3 or np.std(a) == 0.0 or np.std(b) == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


@dataclass(frozen=True)
class ImpactRegion:
    """Classification of one impact level along the sweep.

    Attributes:
        impact: the fault-model parameter value.
        graph: the tps-graph computed at this impact.
        drift_to_next: argmin drift toward the next weaker impact
            (NaN for the last entry).
        region: ``"soft"`` when the optimum has stabilized relative to
            the next weaker impact, ``"hard"`` otherwise
            (``"terminal"`` for the weakest sweep point).
    """

    impact: float
    graph: TpsGraph
    drift_to_next: float
    region: str


def classify_impact_regions(
    executor: TestExecutor,
    fault: FaultModel,
    impacts: Sequence[float],
    points_per_axis: int = 7,
    drift_tolerance: float = 0.15,
) -> list[ImpactRegion]:
    """Sweep fault impacts and classify hard/soft tps regions (§3.2).

    Args:
        executor: configuration executor.
        fault: base fault; its impact parameter is replaced by each value
            in *impacts* (order them strong -> weak for readability).
        impacts: impact parameter values to sweep.
        points_per_axis: tps grid resolution.
        drift_tolerance: maximum normalized argmin drift for an impact to
            count as inside the soft (stable) region.
    """
    graphs = [compute_tps_graph(executor, fault.with_impact(i),
                                points_per_axis=points_per_axis)
              for i in impacts]
    regions: list[ImpactRegion] = []
    for k, graph in enumerate(graphs):
        if k + 1 < len(graphs):
            drift = optimum_drift(graph, graphs[k + 1])
            region = "soft" if drift <= drift_tolerance else "hard"
        else:
            drift = float("nan")
            region = "terminal"
        regions.append(ImpactRegion(impact=float(impacts[k]), graph=graph,
                                    drift_to_next=drift, region=region))
    return regions
