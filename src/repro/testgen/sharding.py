"""Deterministic fault-dictionary sharding and replicated execution.

Scaling fault simulation past one core is almost embarrassingly parallel:
overlay bases derive deterministically from the nominal circuit, so a
worker needs nothing but the netlist, the configuration and its share of
the fault list — engines replicate freely across processes.  What must
*not* vary is the partition itself: reproducible experiment records (and
debuggable failures) require that a fault lands in the same shard on
every run, on every machine, regardless of how many workers happen to
serve the queue.

Shard assignment is therefore **content-addressed**: a BLAKE2b digest of
the fault's stable ``fault_id`` modulo the shard count.  It depends on
nothing else — not enumeration order, not worker count, not hash
randomization (``PYTHONHASHSEED`` does not reach ``hashlib``).

Each shard is executed by a fresh :class:`~repro.testgen.execution.TestExecutor`
(compiled bases, warm-start slots and caches all start empty), which
makes shard results *bitwise independent* of which worker ran the shard
and of how shards were interleaved — the determinism contract the test
suite pins down.  Worker processes are plain ``concurrent.futures``
pools; ``max_workers <= 1`` runs the same shard loop in-process.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro._log import get_logger
from repro.hashing import stable_index
from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.analysis.engine import EngineStats
from repro.circuit.netlist import Circuit
from repro.errors import TestGenerationError
from repro.faults.base import FaultModel
from repro.testgen.configuration import TestConfiguration
from repro.testgen.execution import ExecutorStats, TestExecutor
from repro.testgen.sensitivity import SensitivityReport
from repro.tolerance.montecarlo import (
    FaultDetectionEstimate,
    MonteCarloScreenResult,
    MonteCarloStats,
    empirical_process_boxes,
    screen_dictionary_montecarlo,
)
from repro.tolerance.process import DEFAULT_PROCESS, ProcessVariation

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "shard_index",
    "shard_assignments",
    "shard_faults",
    "ShardResult",
    "ShardedScreenResult",
    "mc_screen_dictionary_sharded",
    "screen_dictionary_sharded",
]

_LOG = get_logger("testgen.sharding")

#: Default number of shards.  Deliberately decoupled from the worker
#: count: a fixed shard count keeps assignments stable while the worker
#: pool scales up and down around it.
DEFAULT_SHARD_COUNT = 16


def shard_index(fault_id: str, n_shards: int) -> int:
    """Deterministic shard of *fault_id* among *n_shards*.

    Content-addressed (BLAKE2b of the id, via
    :func:`repro.hashing.stable_index` — the derivation shared with the
    serving verdict cache), so the assignment is stable across
    processes, machines and Python hash seeds.
    """
    if n_shards < 1:
        raise TestGenerationError(f"n_shards must be >= 1, got {n_shards}")
    return stable_index(fault_id, n_shards)


def shard_assignments(faults: Sequence[FaultModel],
                      n_shards: int) -> tuple[int, ...]:
    """Shard index per fault, in input order."""
    return tuple(shard_index(f.fault_id, n_shards) for f in faults)


def shard_faults(faults: Sequence[FaultModel], n_shards: int,
                 ) -> tuple[tuple[FaultModel, ...], ...]:
    """Partition *faults* into *n_shards* disjoint shards.

    Within a shard, dictionary order is preserved; empty shards are
    legitimate (content addressing balances only statistically).
    """
    shards: list[list[FaultModel]] = [[] for _ in range(n_shards)]
    for fault, index in zip(faults, shard_assignments(faults, n_shards)):
        shards[index].append(fault)
    return tuple(tuple(shard) for shard in shards)


@dataclass(frozen=True)
class ShardResult:
    """One shard's screening output (what a worker sends back)."""

    shard: int
    fault_ids: tuple[str, ...]
    reports: tuple[SensitivityReport, ...]
    engine_stats: EngineStats
    executor_stats: ExecutorStats


@dataclass(frozen=True)
class ShardedScreenResult:
    """Merged output of a sharded dictionary screen.

    Attributes:
        reports: one :class:`SensitivityReport` per fault, in the input
            dictionary order (independent of sharding).
        fault_ids: matching fault ids, same order.
        n_shards: partition size used.
        shard_sizes: faults per shard (some may be zero).
        engine_stats / executor_stats: accounts merged across shards.
    """

    reports: tuple[SensitivityReport, ...]
    fault_ids: tuple[str, ...]
    n_shards: int
    shard_sizes: tuple[int, ...]
    engine_stats: EngineStats
    executor_stats: ExecutorStats

    @property
    def n_detected(self) -> int:
        """Faults detected (``S_f < 0``) at the screened test point."""
        return sum(1 for r in self.reports if r.detected)

    def report_for(self, fault_id: str) -> SensitivityReport:
        """Report of one fault by id."""
        try:
            return self.reports[self.fault_ids.index(fault_id)]
        except ValueError:
            raise TestGenerationError(
                f"no such fault in sharded result: {fault_id!r}") from None


def _run_shard(circuit: Circuit, configuration: TestConfiguration,
               options: SimOptions, vector: tuple[float, ...],
               shard: int, faults: tuple[FaultModel, ...]) -> ShardResult:
    """Screen one shard on a fresh executor (worker-side entry point)."""
    executor = TestExecutor(circuit, configuration, options)
    reports = executor.screen_faults(list(faults), list(vector))
    return ShardResult(
        shard=shard,
        fault_ids=tuple(f.fault_id for f in faults),
        reports=tuple(reports),
        engine_stats=executor.engine.stats,
        executor_stats=executor.stats)


def default_worker_count() -> int:
    """Worker-pool size when the caller does not pin one."""
    return max(1, min(os.cpu_count() or 1, 8))


def screen_dictionary_sharded(
    circuit: Circuit,
    configuration: TestConfiguration,
    faults: Sequence[FaultModel],
    vector: Sequence[float],
    options: SimOptions = DEFAULT_OPTIONS,
    *,
    n_shards: int | None = None,
    max_workers: int | None = None,
) -> ShardedScreenResult:
    """Screen a whole fault dictionary at one test point, sharded.

    The dictionary is partitioned with :func:`shard_faults`; each shard
    runs batched SMW screening (:meth:`TestExecutor.screen_faults`) on a
    replicated executor, serially in-process when ``max_workers <= 1``
    or on a ``ProcessPoolExecutor`` otherwise.  Results and merged stats
    are reassembled in dictionary order, so the output is a pure
    function of (circuit, configuration, faults, vector, n_shards) — the
    worker count only changes wall-clock time.

    Args:
        circuit: nominal macro circuit (replicated to workers).
        configuration: the test configuration to screen under.
        faults: fault dictionary (any sequence of fault models).
        vector: the configuration's test-parameter values.
        options: simulator options.
        n_shards: partition size; default :data:`DEFAULT_SHARD_COUNT`,
            clamped to the dictionary size.
        max_workers: process count; default
            :func:`default_worker_count`, clamped to the shard count.
    """
    fault_list = tuple(faults)
    if not fault_list:
        raise TestGenerationError("sharded screen needs >= 1 fault")
    ids = [f.fault_id for f in fault_list]
    if len(set(ids)) != len(ids):
        raise TestGenerationError(
            "sharded screen needs unique fault ids (results merge by id)")
    if n_shards is None:
        n_shards = min(DEFAULT_SHARD_COUNT, len(fault_list))
    shards = shard_faults(fault_list, n_shards)
    vector_t = tuple(float(v) for v in vector)
    work = [(shard, members) for shard, members in enumerate(shards)
            if members]

    if max_workers is None:
        max_workers = default_worker_count()
    max_workers = max(1, min(max_workers, len(work)))
    _LOG.info("screening %d faults in %d shards on %d worker(s)",
              len(fault_list), n_shards, max_workers)

    if max_workers == 1:
        results = [_run_shard(circuit, configuration, options, vector_t,
                              shard, members) for shard, members in work]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_run_shard, circuit, configuration,
                                   options, vector_t, shard, members)
                       for shard, members in work]
            results = [f.result() for f in futures]

    by_id: dict[str, SensitivityReport] = {}
    engine_stats = EngineStats()
    executor_stats = ExecutorStats()
    for result in results:
        engine_stats = engine_stats.merged(result.engine_stats)
        executor_stats = executor_stats.merged(result.executor_stats)
        for fault_id, report in zip(result.fault_ids, result.reports):
            by_id[fault_id] = report
    return ShardedScreenResult(
        reports=tuple(by_id[f.fault_id] for f in fault_list),
        fault_ids=tuple(f.fault_id for f in fault_list),
        n_shards=n_shards,
        shard_sizes=tuple(len(s) for s in shards),
        engine_stats=engine_stats,
        executor_stats=executor_stats)


def _run_mc_shard(circuit: Circuit, configuration: TestConfiguration,
                  options: SimOptions, vector: tuple[float, ...],
                  faults: tuple[FaultModel, ...],
                  mc_kwargs: dict) -> MonteCarloScreenResult:
    """Monte Carlo screen of one shard (worker-side entry point).

    The shard rebuilds the full process-sample batch from the shared
    seed, so every shard scores the *same* manufactured devices — only
    the fault subset differs.
    """
    return screen_dictionary_montecarlo(
        circuit, configuration, list(faults), list(vector), options,
        **mc_kwargs)


def mc_screen_dictionary_sharded(
    circuit: Circuit,
    configuration: TestConfiguration,
    faults: Sequence[FaultModel],
    vector: Sequence[float],
    options: SimOptions = DEFAULT_OPTIONS,
    *,
    variation: ProcessVariation = DEFAULT_PROCESS,
    n_samples: int = 256,
    seed: int = 0,
    boxes=None,
    confirm_margin: float = 0.02,
    vectorized: bool = True,
    n_shards: int | None = None,
    max_workers: int | None = None,
) -> MonteCarloScreenResult:
    """Monte Carlo detection probabilities of a dictionary, sharded.

    The sharded analog of
    :func:`~repro.tolerance.montecarlo.screen_dictionary_montecarlo`:
    faults partition with :func:`shard_faults` (content-addressed, so
    the partition never depends on worker count), each shard screens its
    subset against the same seeded process-sample batch, and per-fault
    estimates merge back in dictionary order.  Two properties make the
    merged result a pure function of
    ``(circuit, configuration, faults, vector, n_samples, seed,
    n_shards)``:

    * every shard redraws the identical sample batch from *seed* — a
      fault's estimate depends only on its own columns, never on which
      other faults share its shard;
    * the tolerance box is computed **once** in the parent
      (:func:`~repro.tolerance.montecarlo.empirical_process_boxes`) and
      passed to every shard, so no shard derives its own.

    The worker count therefore only changes wall-clock time — the
    determinism contract the sharding test suite pins bitwise.

    Args:
        circuit / configuration / faults / vector / options: as in the
            unsharded screen.
        variation / n_samples / seed / confirm_margin / vectorized:
            forwarded to each shard's screen.
        boxes: shared box half-widths; computed once from the fault-free
            spread when None.
        n_shards: partition size; default :data:`DEFAULT_SHARD_COUNT`,
            clamped to the dictionary size.
        max_workers: process count; default
            :func:`default_worker_count`, clamped to the shard count.
    """
    fault_list = tuple(faults)
    if not fault_list:
        raise TestGenerationError("sharded MC screen needs >= 1 fault")
    ids = [f.fault_id for f in fault_list]
    if len(set(ids)) != len(ids):
        raise TestGenerationError(
            "sharded MC screen needs unique fault ids (results merge "
            "by id)")
    if boxes is None:
        boxes = empirical_process_boxes(
            circuit, configuration, vector, options, variation=variation,
            n_samples=n_samples, seed=seed, vectorized=vectorized)
    if n_shards is None:
        n_shards = min(DEFAULT_SHARD_COUNT, len(fault_list))
    shards = shard_faults(fault_list, n_shards)
    vector_t = tuple(float(v) for v in vector)
    mc_kwargs = dict(variation=variation, n_samples=n_samples, seed=seed,
                     boxes=boxes, confirm_margin=confirm_margin,
                     vectorized=vectorized)
    work = [members for members in shards if members]

    if max_workers is None:
        max_workers = default_worker_count()
    max_workers = max(1, min(max_workers, len(work)))
    _LOG.info("MC-screening %d faults x %d samples in %d shards on %d "
              "worker(s)", len(fault_list), n_samples, n_shards,
              max_workers)

    if max_workers == 1:
        results = [_run_mc_shard(circuit, configuration, options, vector_t,
                                 members, mc_kwargs) for members in work]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_run_mc_shard, circuit, configuration,
                                   options, vector_t, members, mc_kwargs)
                       for members in work]
            results = [f.result() for f in futures]

    by_id: dict[str, FaultDetectionEstimate] = {}
    stats = MonteCarloStats()
    for result in results:
        stats = stats.merged(result.stats)
        for estimate in result.estimates:
            by_id[estimate.fault_id] = estimate
    first = results[0]
    return MonteCarloScreenResult(
        fault_ids=tuple(ids),
        estimates=tuple(by_id[fault_id] for fault_id in ids),
        n_samples=n_samples,
        seed=seed,
        vectorized=all(r.vectorized for r in results),
        nominal_reading=first.nominal_reading,
        sample_readings=first.sample_readings,
        boxes=first.boxes,
        stats=stats)
