"""Fault-specific test generation (paper §3.3, Fig. 6).

For each fault in the dictionary:

1. **Optimize** (once, per configuration): insert a *low-impact* version
   of the fault — weak enough to sit in the soft-fault tps region — and
   minimize ``S_f`` over the configuration's parameter box, starting from
   the seed values.  Brent's method handles single-parameter
   configurations, Powell's method multi-parameter ones.  The soft-region
   observation of §3.2 is what makes optimizing *once* sufficient: the
   argmin no longer moves as impact weakens, so the parameters found at
   the soft impact serve every impact level of the adaptation step.

2. **Select with impact adaptation**: evaluate all optimized candidate
   tests against the fault at its dictionary impact.  If more than one
   detects, the impact is relaxed (weakened); if none detects, it is
   increased; the step factor shrinks geometrically on each direction
   reversal so the process converges to the *critical impact level* where
   exactly one test — the most sensitive one — survives.  Faults
   undetectable even at maximal impact are reported as such (§2.2's
   quality feedback).

A *naive* mode re-optimizes every configuration at every impact level of
the adaptation loop instead of reusing the soft-impact optimum.  It
reproduces the pre-[6]-improvement behaviour and exists for the
efficiency ablation benchmark; results are equivalent whenever the
critical impact truly lies in the soft region.

Generation parallelizes over deterministic dictionary *shards*
(:mod:`repro.testgen.sharding`) with ``ProcessPoolExecutor``
(``n_jobs``): each worker rebuilds its own testbench from the pickled
circuit and configurations, shard membership is content-addressed on
fault ids (stable across runs and worker counts), and one task per
shard amortizes inter-process traffic while keeping each worker's
compiled bases and warm-start slots hot across its shard.
"""

from __future__ import annotations

import json
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro._log import get_logger
from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.circuit.netlist import Circuit
from repro.errors import TestGenerationError
from repro.faults.base import FaultModel
from repro.faults.dictionary import FaultDictionary
from repro.optimize import brent_minimize, powell_minimize
from repro.testgen.configuration import Test, TestConfiguration
from repro.testgen.execution import MacroTestbench

__all__ = [
    "GenerationSettings",
    "ConfigOptimization",
    "GeneratedTest",
    "GenerationResult",
    "generate_test_for_fault",
    "generate_tests",
]

_LOG = get_logger("testgen.generator")


@dataclass(frozen=True)
class GenerationSettings:
    """Tunables of the generation algorithm.

    Attributes:
        soft_weaken_factor: factor by which the dictionary impact is
            weakened before the per-configuration optimization, pushing
            the model into its soft-fault tps region (the paper's Figs
            2-4 use 10 kOhm -> 75 kOhm, i.e. 7.5x).
        brent_evals: evaluation budget per single-parameter optimization.
        powell_evals: total budget per multi-parameter optimization.
        powell_line_evals: budget per Powell line search.
        powell_iters: Powell sweep cap.
        adaptation_factor: initial weaken/strengthen step factor of the
            impact bisection.
        adaptation_shrink_threshold: the adaptation stops refining once
            the step factor drops below this.
        adaptation_max_rounds: hard cap on adaptation rounds.
        reoptimize_each_impact: naive mode (ablation; see module doc).
        xtol: relative parameter tolerance passed to the optimizers.
    """

    soft_weaken_factor: float = 7.5
    brent_evals: int = 16
    powell_evals: int = 60
    powell_line_evals: int = 9
    powell_iters: int = 4
    adaptation_factor: float = 4.0
    adaptation_shrink_threshold: float = 1.05
    adaptation_max_rounds: int = 32
    reoptimize_each_impact: bool = False
    xtol: float = 5e-3

    def __post_init__(self) -> None:
        if self.soft_weaken_factor <= 1.0:
            raise TestGenerationError("soft_weaken_factor must be > 1")
        if self.adaptation_factor <= self.adaptation_shrink_threshold:
            raise TestGenerationError(
                "adaptation_factor must exceed the shrink threshold")


@dataclass(frozen=True)
class ConfigOptimization:
    """Per-configuration optimization outcome for one fault."""

    config_name: str
    params: np.ndarray
    sensitivity_at_soft: float
    nfev: int
    converged: bool


@dataclass(frozen=True)
class GeneratedTest:
    """The best test found for one fault (the Fig. 6 output).

    Attributes:
        fault: the dictionary fault (at its dictionary impact).
        test: winning configuration + optimized parameter values.
        sensitivity_at_critical: ``S_f`` of the winning test at the
            critical impact level.
        critical_impact: fault-model parameter value at selection
            convergence (the critical impact level of §2.2).
        detected_at_dictionary: whether any candidate detected the fault
            at its dictionary impact.
        undetectable: no candidate detected the fault even at maximal
            impact strengthening.
        required_impact_increase: detection only occurred after
            strengthening beyond the dictionary impact (§2.2 extension).
        per_config: optimization summaries for all configurations.
        adaptation_rounds: impact-bisection rounds spent.
        n_simulations: faulty+nominal simulations consumed for this fault.
    """

    fault: FaultModel
    test: Test | None
    sensitivity_at_critical: float
    critical_impact: float
    detected_at_dictionary: bool
    undetectable: bool
    required_impact_increase: bool
    per_config: tuple[ConfigOptimization, ...]
    adaptation_rounds: int
    n_simulations: int

    @property
    def config_name(self) -> str:
        """Winning configuration name (``"<undetectable>"`` if none)."""
        return self.test.config_name if self.test is not None \
            else "<undetectable>"


@dataclass(frozen=True)
class GenerationResult:
    """Complete output of a generation run over a fault dictionary."""

    circuit_name: str
    settings: GenerationSettings
    tests: tuple[GeneratedTest, ...]
    total_simulations: int
    wall_time_s: float

    def distribution(self) -> dict[str, dict[str, int]]:
        """Best-test counts per configuration x fault type (Table 2)."""
        table: dict[str, dict[str, int]] = {}
        for generated in self.tests:
            row = table.setdefault(generated.config_name, {})
            ftype = generated.fault.fault_type
            row[ftype] = row.get(ftype, 0) + 1
        return table

    def tests_for_config(self, config_name: str) -> tuple[GeneratedTest, ...]:
        """All generated tests won by one configuration."""
        return tuple(t for t in self.tests if t.config_name == config_name)

    def undetectable_faults(self) -> tuple[FaultModel, ...]:
        """Faults no configuration could detect at any impact."""
        return tuple(t.fault for t in self.tests if t.undetectable)

    @property
    def n_detected(self) -> int:
        """Faults with an assigned best test."""
        return sum(1 for t in self.tests if t.test is not None)

    # ------------------------------------------------------------------
    # serialization (bench harness caches full runs as JSON)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to JSON (fault identity + numbers; no circuits)."""
        payload = {
            "circuit_name": self.circuit_name,
            "total_simulations": self.total_simulations,
            "wall_time_s": self.wall_time_s,
            "settings": {
                "soft_weaken_factor": self.settings.soft_weaken_factor,
                "reoptimize_each_impact":
                    self.settings.reoptimize_each_impact,
            },
            "tests": [
                {
                    "fault_id": t.fault.fault_id,
                    "fault_type": t.fault.fault_type,
                    "fault_impact": t.fault.impact,
                    "config": t.config_name,
                    "params": (t.test.values.tolist()
                               if t.test is not None else None),
                    "sensitivity_at_critical": t.sensitivity_at_critical,
                    "critical_impact": t.critical_impact,
                    "detected_at_dictionary": t.detected_at_dictionary,
                    "undetectable": t.undetectable,
                    "required_impact_increase": t.required_impact_increase,
                    "adaptation_rounds": t.adaptation_rounds,
                    "n_simulations": t.n_simulations,
                    "per_config": [
                        {
                            "config": c.config_name,
                            "params": c.params.tolist(),
                            "sensitivity_at_soft": c.sensitivity_at_soft,
                            "nfev": c.nfev,
                            "converged": c.converged,
                        } for c in t.per_config],
                } for t in self.tests],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str, faults: FaultDictionary,
                  configurations: Sequence[TestConfiguration],
                  settings: GenerationSettings | None = None,
                  ) -> "GenerationResult":
        """Rebuild a result from JSON plus the live dictionary/configs."""
        payload = json.loads(text)
        config_map = {c.name: c for c in configurations}
        tests: list[GeneratedTest] = []
        for entry in payload["tests"]:
            fault = faults.get(entry["fault_id"])
            test = None
            if entry["params"] is not None:
                test = Test(config_map[entry["config"]],
                            np.array(entry["params"]))
            per_config = tuple(
                ConfigOptimization(
                    config_name=c["config"], params=np.array(c["params"]),
                    sensitivity_at_soft=c["sensitivity_at_soft"],
                    nfev=c["nfev"], converged=c["converged"])
                for c in entry["per_config"])
            tests.append(GeneratedTest(
                fault=fault, test=test,
                sensitivity_at_critical=entry["sensitivity_at_critical"],
                critical_impact=entry["critical_impact"],
                detected_at_dictionary=entry["detected_at_dictionary"],
                undetectable=entry["undetectable"],
                required_impact_increase=entry["required_impact_increase"],
                per_config=per_config,
                adaptation_rounds=entry["adaptation_rounds"],
                n_simulations=entry["n_simulations"]))
        return cls(
            circuit_name=payload["circuit_name"],
            settings=settings or GenerationSettings(
                soft_weaken_factor=payload["settings"]["soft_weaken_factor"],
                reoptimize_each_impact=payload["settings"][
                    "reoptimize_each_impact"]),
            tests=tuple(tests),
            total_simulations=payload["total_simulations"],
            wall_time_s=payload["wall_time_s"])


# ----------------------------------------------------------------------
# per-fault generation
# ----------------------------------------------------------------------
def _optimize_configuration(testbench: MacroTestbench, config_name: str,
                            fault: FaultModel,
                            settings: GenerationSettings
                            ) -> ConfigOptimization:
    """Step 1 of Fig. 6: tune parameters for best sensitivity to *fault*."""
    executor = testbench.executor(config_name)
    parameters = executor.configuration.parameters

    def cost(vector: np.ndarray) -> float:
        return executor.sensitivity(fault, vector).value

    if len(parameters) == 1:
        bound = next(iter(parameters))
        result = brent_minimize(
            cost, bound.lower, bound.upper,
            xtol=settings.xtol * bound.span,
            max_evals=settings.brent_evals, seed=bound.seed)
    else:
        result = powell_minimize(
            cost, parameters.seeds, parameters.bounds,
            xtol_frac=settings.xtol,
            max_evals=settings.powell_evals,
            line_evals=settings.powell_line_evals,
            max_iters=settings.powell_iters)
    return ConfigOptimization(
        config_name=config_name, params=parameters.clip(result.x),
        sensitivity_at_soft=result.fun, nfev=result.nfev,
        converged=result.converged)


def generate_test_for_fault(
    testbench: MacroTestbench,
    fault: FaultModel,
    settings: GenerationSettings = GenerationSettings(),
) -> GeneratedTest:
    """Run the complete Fig. 6 scheme for one dictionary fault."""
    sims_before = testbench.stats.total_simulations

    # ---- step 1: per-configuration optimization at a soft impact -------
    soft_fault = fault.weakened(settings.soft_weaken_factor)
    per_config = tuple(
        _optimize_configuration(testbench, name, soft_fault, settings)
        for name in testbench.configuration_names)
    candidates: dict[str, Test] = {
        opt.config_name:
            testbench.configuration(opt.config_name).make_test(opt.params)
        for opt in per_config}

    # ---- step 2: selection by impact adaptation ------------------------
    def evaluate_all(probe: FaultModel,
                     tests: dict[str, Test]) -> dict[str, float]:
        return {name: testbench.evaluate_test(probe, test).value
                for name, test in tests.items()}

    def reoptimized(probe: FaultModel) -> dict[str, Test]:
        """Naive mode: fresh optimization at the probe impact."""
        fresh = tuple(
            _optimize_configuration(testbench, name, probe, settings)
            for name in testbench.configuration_names)
        return {opt.config_name:
                testbench.configuration(opt.config_name)
                .make_test(opt.params)
                for opt in fresh}

    probe = fault
    factor = settings.adaptation_factor
    previous_direction: str | None = None
    detected_at_dictionary = False
    last_detecting: tuple[FaultModel, dict[str, float]] | None = None
    rounds = 0

    winner_name: str | None = None
    winner_sensitivity = float("inf")
    critical_impact = fault.impact
    undetectable = False

    while rounds < settings.adaptation_max_rounds:
        rounds += 1
        tests = (reoptimized(probe) if settings.reoptimize_each_impact
                 else candidates)
        sensitivities = evaluate_all(probe, tests)
        detecting = {name: s for name, s in sensitivities.items() if s < 0.0}
        if rounds == 1:
            detected_at_dictionary = bool(detecting)

        if len(detecting) == 1:
            winner_name = next(iter(detecting))
            winner_sensitivity = detecting[winner_name]
            critical_impact = probe.impact
            if not settings.reoptimize_each_impact:
                candidates = tests
            break

        if detecting:
            last_detecting = (probe, sensitivities)
            direction = "weaken"
        else:
            direction = "strengthen"

        if previous_direction is not None and direction != previous_direction:
            factor = float(np.sqrt(factor))
        previous_direction = direction

        if factor <= settings.adaptation_shrink_threshold:
            break
        if direction == "weaken":
            if probe.at_weakest:
                last_detecting = (probe, sensitivities)
                break
            probe = probe.weakened(factor)
        else:
            if probe.at_strongest:
                break
            probe = probe.strengthened(factor)

    if winner_name is None:
        # Oscillation converged, cap hit, or an impact bound was reached:
        # fall back to the most sensitive test at the weakest impact that
        # still had detections.
        if last_detecting is not None:
            probe, sensitivities = last_detecting
            winner_name = min(sensitivities, key=sensitivities.get)
            winner_sensitivity = sensitivities[winner_name]
            critical_impact = probe.impact
        else:
            undetectable = True
            best = min(per_config, key=lambda c: c.sensitivity_at_soft)
            winner_sensitivity = best.sensitivity_at_soft
            critical_impact = probe.impact

    test = candidates.get(winner_name) if winner_name is not None else None
    # "Required impact increase" (§2.2 extension): the fault was not
    # detectable at its dictionary impact, but strengthening found a test.
    required_impact_increase = (not detected_at_dictionary
                                and not undetectable
                                and test is not None)
    n_simulations = testbench.stats.total_simulations - sims_before
    _LOG.info("fault %-22s -> %-18s S=%.3g critical_impact=%.4g "
              "rounds=%d sims=%d", fault.fault_id,
              winner_name or "<undetectable>", winner_sensitivity,
              critical_impact, rounds, n_simulations)
    return GeneratedTest(
        fault=fault, test=test,
        sensitivity_at_critical=float(winner_sensitivity),
        critical_impact=float(critical_impact),
        detected_at_dictionary=detected_at_dictionary,
        undetectable=undetectable,
        required_impact_increase=required_impact_increase,
        per_config=per_config, adaptation_rounds=rounds,
        n_simulations=n_simulations)


# ----------------------------------------------------------------------
# dictionary-level driver (optionally parallel, shard-granular)
# ----------------------------------------------------------------------
_WORKER_BENCH: MacroTestbench | None = None
_WORKER_SETTINGS: GenerationSettings | None = None


def _worker_init(circuit: Circuit,
                 configurations: tuple[TestConfiguration, ...],
                 options: SimOptions,
                 settings: GenerationSettings) -> None:
    global _WORKER_BENCH, _WORKER_SETTINGS
    _WORKER_BENCH = MacroTestbench(circuit, configurations, options)
    _WORKER_SETTINGS = settings


def _worker_generate_shard(
    shard: tuple[tuple[int, FaultModel], ...],
) -> list[tuple[int, GeneratedTest]]:
    """Generate every fault of one shard on this worker's testbench."""
    assert _WORKER_BENCH is not None and _WORKER_SETTINGS is not None
    return [(position,
             generate_test_for_fault(_WORKER_BENCH, fault,
                                     _WORKER_SETTINGS))
            for position, fault in shard]


def generate_tests(
    circuit: Circuit,
    configurations: Sequence[TestConfiguration],
    faults: FaultDictionary | Sequence[FaultModel],
    settings: GenerationSettings = GenerationSettings(),
    options: SimOptions = DEFAULT_OPTIONS,
    n_jobs: int = 1,
    n_shards: int | None = None,
    preflight: str | None = None,
) -> GenerationResult:
    """Generate the best test for every fault in the dictionary.

    Args:
        circuit: fault-free macro circuit.
        configurations: candidate test configurations (the seeds of §2.2).
        faults: the fault dictionary to cover.
        settings: algorithm tunables.
        options: simulator options.
        n_jobs: worker processes (1 = in-process, deterministic order is
            preserved either way).
        n_shards: dictionary partition size for the parallel path (see
            :mod:`repro.testgen.sharding`; default
            :data:`~repro.testgen.sharding.DEFAULT_SHARD_COUNT`, clamped
            to the dictionary size).  Shard membership depends only on
            fault ids and this count — never on ``n_jobs``.
        preflight: run the static lint gate (:mod:`repro.lint`) over
            the full (circuit, dictionary, configurations) scenario
            before any simulation.  ``None`` (default) skips it,
            ``"error"`` raises :class:`~repro.errors.LintError` on
            error-severity findings, ``"strict"`` also blocks on
            warnings.

    Returns:
        :class:`GenerationResult` with one :class:`GeneratedTest` per
        fault, in dictionary order.
    """
    from repro.testgen.sharding import DEFAULT_SHARD_COUNT, shard_assignments

    fault_list = tuple(faults)
    configurations = tuple(configurations)

    if preflight is not None:
        if preflight not in ("error", "strict"):
            raise ValueError(
                f"preflight must be None, 'error' or 'strict', "
                f"got {preflight!r}")
        # Imported lazily — repro.lint must stay importable while this
        # package initializes (the lint runner pulls no testgen code,
        # but generator-level imports would still cycle).
        from repro.lint import preflight_check
        preflight_check(circuit, fault_list, configurations,
                        strict=(preflight == "strict"),
                        stage="generate_tests pre-flight lint")

    started = time.monotonic()

    if n_jobs <= 1:
        testbench = MacroTestbench(circuit, configurations, options)
        tests = tuple(generate_test_for_fault(testbench, fault, settings)
                      for fault in fault_list)
        total_sims = testbench.stats.total_simulations
    else:
        if n_shards is None:
            n_shards = min(DEFAULT_SHARD_COUNT, len(fault_list)) or 1
        shards: list[list[tuple[int, FaultModel]]] = [
            [] for _ in range(n_shards)]
        for position, (fault, index) in enumerate(
                zip(fault_list, shard_assignments(fault_list, n_shards))):
            shards[index].append((position, fault))
        work = [tuple(shard) for shard in shards if shard]
        with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(work)) or 1,
                initializer=_worker_init,
                initargs=(circuit, configurations, options,
                          settings)) as pool:
            ordered: list[GeneratedTest | None] = [None] * len(fault_list)
            for pairs in pool.map(_worker_generate_shard, work):
                for position, generated in pairs:
                    ordered[position] = generated
        tests = tuple(ordered)
        total_sims = sum(t.n_simulations for t in tests)

    return GenerationResult(
        circuit_name=circuit.name, settings=settings, tests=tests,
        total_simulations=total_sims,
        wall_time_s=time.monotonic() - started)
