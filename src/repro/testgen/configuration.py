"""Test-configuration descriptions, implementations and tests.

Mirrors the paper's three-level construction (§2.1, Fig. 1):

* :class:`TestConfigurationDescription` — the macro-type-level template:
  controlled/observed nodes, stimulus shape with named parameters,
  post-processing, variables.  Shared by all macros of a type; node names
  are standardized.
* :class:`TestConfiguration` — the *implementation* for one macro:
  parameter bounds and seeds, variable values (already baked into the
  measurement procedure), the box function, and the equipment model.
* :class:`Test` — a configuration plus concrete parameter values; the
  unit the generator optimizes and the compactor collapses.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TestGenerationError
from repro.testgen.parameters import BoundParameter, ParameterSet
from repro.testgen.procedures import MeasurementProcedure
from repro.tolerance.box import BoxFunction
from repro.tolerance.equipment import DEFAULT_EQUIPMENT, EquipmentSpec
from repro.units import format_value

__all__ = [
    "ReturnValueSpec",
    "TestConfigurationDescription",
    "TestConfiguration",
    "Test",
]


@dataclass(frozen=True)
class ReturnValueSpec:
    """Declaration of one scalar return value.

    Attributes:
        name: identifier, e.g. ``"delta_vout"``.
        kind: measurement kind keying the equipment accuracy
            (``"voltage"``, ``"current"``, ``"thd"``, ``"voltage_sample"``).
        description: rendered in configuration cards.
    """

    name: str
    kind: str
    description: str = ""


@dataclass(frozen=True)
class TestConfigurationDescription:
    """Macro-type-level test configuration template (paper Fig. 1).

    Attributes:
        name: short identifier (``"thd"``, ``"dc-output"``).
        macro_type: macro family the description belongs to
            (``"iv-converter"``); descriptions are shared across macros
            of a type.
        title: one-line human title ("Step response 1").
        control_nodes: standardized node names receiving stimulus.
        observe_nodes: standardized node names being measured.
        stimulus_template: human-readable stimulus expression with the
            parameter names inline, e.g.
            ``"step(base, elev, slew_rate=sl) at iin"``.
        parameters: declared parameter names/units (bounds live in the
            implementation).
        variables: non-optimized quantities and their meaning, e.g.
            ``{"sa": "sample rate", "t": "test time"}``.
        return_values: declared scalar return values.
    """

    name: str
    macro_type: str
    title: str
    control_nodes: tuple[str, ...]
    observe_nodes: tuple[str, ...]
    stimulus_template: str
    parameters: tuple[str, ...]
    variables: Mapping[str, str] = field(default_factory=dict)
    return_values: tuple[ReturnValueSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.control_nodes or not self.observe_nodes:
            raise TestGenerationError(
                f"configuration {self.name!r} needs control and observe "
                "nodes")
        if not self.return_values:
            raise TestGenerationError(
                f"configuration {self.name!r} declares no return values")
        object.__setattr__(self, "variables", dict(self.variables))

    def describe(self) -> str:
        """Render the Fig.-1-style configuration card."""
        lines = [
            f"Macro type: {self.macro_type}",
            f"Test configuration: {self.title} ({self.name})",
            f"  control : {', '.join(self.control_nodes)}",
            f"  stimulus: {self.stimulus_template}",
            f"  observe : {', '.join(self.observe_nodes)}",
        ]
        for rv in self.return_values:
            lines.append(f"  return  : {rv.name} [{rv.kind}]"
                         + (f" -- {rv.description}" if rv.description else ""))
        if self.parameters:
            lines.append(f"  params  : {', '.join(self.parameters)}")
        if self.variables:
            rendered = ", ".join(f"{k}={v}" for k, v in self.variables.items())
            lines.append(f"  vars    : {rendered}")
        return "\n".join(lines)


class TestConfiguration:
    """A test configuration *implementation* for a specific macro.

    Args:
        description: the shared macro-type template.
        parameters: bound parameters (bounds + seeds), one per declared
            parameter name, same order.
        procedure: executable stimulus/measurement behaviour with the
            variable values (sample rate, test time, slew) baked in.
        box_function: process-spread half-width estimator over the
            parameter box.
        equipment: tester accuracy model.
    """

    def __init__(self, description: TestConfigurationDescription,
                 parameters: Sequence[BoundParameter],
                 procedure: MeasurementProcedure,
                 box_function: BoxFunction,
                 equipment: EquipmentSpec = DEFAULT_EQUIPMENT) -> None:
        self.description = description
        self.parameters = ParameterSet(parameters)
        self.procedure = procedure
        self.box_function = box_function
        self.equipment = equipment

        declared = tuple(description.parameters)
        if self.parameters.names != declared:
            raise TestGenerationError(
                f"configuration {description.name!r}: bound parameters "
                f"{self.parameters.names} do not match declared {declared}")
        if procedure.n_return_values != len(description.return_values):
            raise TestGenerationError(
                f"configuration {description.name!r}: procedure yields "
                f"{procedure.n_return_values} return values, description "
                f"declares {len(description.return_values)}")

    @property
    def name(self) -> str:
        """Configuration identifier (from the description)."""
        return self.description.name

    @property
    def n_parameters(self) -> int:
        """Number of optimizable test parameters."""
        return len(self.parameters)

    @property
    def n_return_values(self) -> int:
        """Number of scalar return values."""
        return self.procedure.n_return_values

    @property
    def return_kinds(self) -> tuple[str, ...]:
        """Measurement kind per return value (equipment accuracy keys)."""
        return tuple(rv.kind for rv in self.description.return_values)

    def seed_test(self) -> "Test":
        """The seed test: this configuration at its seed parameters."""
        return Test(self, self.parameters.seeds)

    def make_test(self, values: Mapping[str, float] | Sequence[float]) -> "Test":
        """Build a test from named or ordered parameter values."""
        if isinstance(values, Mapping):
            vector = self.parameters.to_vector(values)
        else:
            vector = np.atleast_1d(np.asarray(values, float))
        return Test(self, vector)

    def __repr__(self) -> str:
        return (f"TestConfiguration({self.name!r}, "
                f"{self.n_parameters} params, "
                f"{self.n_return_values} return values)")


@dataclass(frozen=True)
class Test:
    """A concrete test: configuration + parameter values (paper §2.1).

    "A test can be regarded as being built up from a test configuration
    implementation and attached test parameter values."
    """

    configuration: TestConfiguration
    values: np.ndarray

    def __post_init__(self) -> None:
        vector = np.atleast_1d(np.asarray(self.values, float))
        bounds = self.configuration.parameters.bounds
        if vector.shape != (len(bounds),):
            raise TestGenerationError(
                f"test for {self.configuration.name!r}: expected "
                f"{len(bounds)} values, got shape {vector.shape}")
        if (np.any(vector < bounds[:, 0] - 1e-12)
                or np.any(vector > bounds[:, 1] + 1e-12)):
            raise TestGenerationError(
                f"test for {self.configuration.name!r}: values "
                f"{vector.tolist()} violate bounds {bounds.tolist()}")
        object.__setattr__(self, "values", vector)

    @property
    def config_name(self) -> str:
        """Name of the owning configuration."""
        return self.configuration.name

    def as_dict(self) -> dict[str, float]:
        """Named parameter values."""
        return self.configuration.parameters.to_dict(self.values)

    def __str__(self) -> str:
        pairs = ", ".join(
            f"{p.name}={format_value(v, p.spec.unit)}"
            for p, v in zip(self.configuration.parameters, self.values))
        return f"{self.config_name}({pairs})"
