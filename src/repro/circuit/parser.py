"""SPICE-flavoured netlist parser.

Supports the subset of SPICE needed to express the circuits in this
repository as text decks (useful for tests, documentation and users who
prefer decks over the builder API):

* comment lines (``*``), inline comments (``;``), ``+`` continuations;
* ``R/C/L`` two-terminal elements with engineering-notation values;
* ``V/I`` sources with ``DC x``, ``SIN(...)``, ``PULSE(...)``, ``PWL(...)``
  and the paper-specific ``STEP(base elev tstep slew)`` stimulus;
* ``E`` (VCVS) and ``G`` (VCCS) controlled sources;
* ``D`` diodes and ``M`` MOSFETs referencing ``.model`` cards
  (``NMOS``/``PMOS`` level-1 parameters, ``D`` diodes);
* ``.end`` terminator (optional).

Example::

    deck = '''
    * resistive divider
    VIN in 0 DC 5
    R1 in mid 10k
    R2 mid 0 10k
    .end
    '''
    circuit = parse_netlist(deck)
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.circuit.diode import Diode
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuit.mosfet import Mosfet, MosfetParams
from repro.circuit.netlist import Circuit
from repro.units import parse_value
from repro.waveforms import (
    DCWave,
    PWLWave,
    PulseWave,
    SineWave,
    StepWave,
    Waveform,
)

__all__ = ["parse_netlist"]

_PAREN_FUNC_RE = re.compile(r"^(?P<kind>[a-zA-Z]+)\s*\((?P<args>.*)\)\s*$")


def _strip_comment(line: str) -> str:
    for marker in (";", "$"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.rstrip()


def _join_continuations(text: str) -> list[tuple[int, str]]:
    """Merge ``+`` continuation lines; returns (first line number, text)."""
    merged: list[tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not merged:
                raise ParseError("continuation line with nothing to continue",
                                 line_no, raw)
            prev_no, prev = merged[-1]
            merged[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            merged.append((line_no, stripped))
    return merged


def _parse_waveform(tokens: list[str], line_no: int, line: str) -> Waveform:
    """Parse the stimulus part of a V/I card."""
    text = " ".join(tokens).strip()
    if not text:
        return DCWave(0.0)
    match = _PAREN_FUNC_RE.match(text)
    if match is None:
        # "DC 5" or a bare value.
        parts = text.split()
        if parts[0].lower() == "dc":
            parts = parts[1:]
        if len(parts) != 1:
            raise ParseError(f"cannot parse source value {text!r}",
                             line_no, line)
        return DCWave(parse_value(parts[0]))
    kind = match.group("kind").lower()
    args = [parse_value(tok) for tok in
            match.group("args").replace(",", " ").split()]
    if kind == "sin":
        # SIN(VO VA FREQ [TD [THETA [PHASE]]])
        if len(args) < 3:
            raise ParseError("SIN needs at least (VO VA FREQ)", line_no, line)
        offset, amplitude, freq = args[0], args[1], args[2]
        delay = args[3] if len(args) > 3 else 0.0
        phase = args[5] if len(args) > 5 else 0.0
        return SineWave(offset, amplitude, freq, delay, phase)
    if kind == "pulse":
        if len(args) < 7:
            raise ParseError("PULSE needs (V1 V2 TD TR TF PW PER)",
                             line_no, line)
        return PulseWave(*args[:7])
    if kind == "pwl":
        if len(args) < 2 or len(args) % 2 != 0:
            raise ParseError("PWL needs an even number of (t v) values",
                             line_no, line)
        points = tuple((args[i], args[i + 1]) for i in range(0, len(args), 2))
        return PWLWave(points)
    if kind == "step":
        if len(args) < 4:
            raise ParseError("STEP needs (BASE ELEV TSTEP SLEW)",
                             line_no, line)
        return StepWave(base=args[0], elev=args[1], t_step=args[2],
                        slew_rate=args[3])
    raise ParseError(f"unknown stimulus function {kind!r}", line_no, line)


def _parse_model_card(tokens: list[str], line_no: int,
                      line: str) -> tuple[str, object]:
    """Parse ``.model NAME TYPE(KEY=VAL ...)`` into (name, params)."""
    body = " ".join(tokens)
    match = re.match(
        r"^\s*(?P<name>\S+)\s+(?P<type>[a-zA-Z]+)\s*(\((?P<args>.*)\))?\s*$",
        body)
    if match is None:
        raise ParseError("malformed .model card", line_no, line)
    name = match.group("name").lower()
    mtype = match.group("type").lower()
    kv: dict[str, float] = {}
    for item in (match.group("args") or "").replace(",", " ").split():
        if "=" not in item:
            raise ParseError(f"model parameter {item!r} is not KEY=VALUE",
                             line_no, line)
        key, value = item.split("=", 1)
        kv[key.lower()] = parse_value(value)
    if mtype in ("nmos", "pmos"):
        params = MosfetParams(
            kind=mtype,
            vto=kv.get("vto", 0.8 if mtype == "nmos" else -0.8),
            kp=kv.get("kp", 60e-6 if mtype == "nmos" else 22e-6),
            lam=kv.get("lambda", 0.02),
            gamma=kv.get("gamma", 0.4),
            phi=kv.get("phi", 0.7),
        )
        return name, params
    if mtype == "d":
        return name, {"i_s": kv.get("is", 1e-14), "n": kv.get("n", 1.0)}
    raise ParseError(f"unsupported model type {mtype!r}", line_no, line)


def parse_netlist(text: str, name: str = "netlist") -> Circuit:
    """Parse a SPICE-flavoured deck into a :class:`Circuit`.

    Raises:
        ParseError: with line information on any malformed card.
    """
    lines = _join_continuations(text)

    # First pass: models (they may appear after their use sites, as in SPICE).
    models: dict[str, object] = {}
    cards: list[tuple[int, str]] = []
    for line_no, line in lines:
        lower = line.lower()
        if lower.startswith(".model"):
            mname, params = _parse_model_card(line.split()[1:], line_no, line)
            models[mname] = params
        elif lower.startswith(".end"):
            break
        elif lower.startswith("."):
            raise ParseError(f"unsupported directive {line.split()[0]!r}",
                             line_no, line)
        else:
            cards.append((line_no, line))

    circuit = Circuit(name)
    for line_no, line in cards:
        tokens = line.split()
        card, rest = tokens[0], tokens[1:]
        letter = card[0].upper()
        ename = card  # keep the full card name ("R1", "M3") as element name
        try:
            if letter == "R":
                circuit.add(Resistor(ename, rest[0], rest[1],
                                     parse_value(rest[2])))
            elif letter == "C":
                circuit.add(Capacitor(ename, rest[0], rest[1],
                                      parse_value(rest[2])))
            elif letter == "L":
                circuit.add(Inductor(ename, rest[0], rest[1],
                                     parse_value(rest[2])))
            elif letter == "V":
                wave = _parse_waveform(rest[2:], line_no, line)
                circuit.add(VoltageSource(ename, rest[0], rest[1], wave))
            elif letter == "I":
                wave = _parse_waveform(rest[2:], line_no, line)
                circuit.add(CurrentSource(ename, rest[0], rest[1], wave))
            elif letter == "E":
                circuit.add(VCVS(ename, rest[0], rest[1], rest[2], rest[3],
                                 parse_value(rest[4])))
            elif letter == "G":
                circuit.add(VCCS(ename, rest[0], rest[1], rest[2], rest[3],
                                 parse_value(rest[4])))
            elif letter == "D":
                extra = {}
                model_tokens = rest[2:]
                if model_tokens and "=" not in model_tokens[0]:
                    model = models.get(model_tokens[0].lower())
                    if model is None:
                        raise ParseError(
                            f"unknown diode model {model_tokens[0]!r}",
                            line_no, line)
                    extra = dict(model)  # type: ignore[arg-type]
                    model_tokens = model_tokens[1:]
                for item in model_tokens:
                    key, value = item.split("=", 1)
                    key = key.lower()
                    mapped = {"is": "i_s", "n": "n"}.get(key)
                    if mapped is None:
                        raise ParseError(f"unknown diode parameter {key!r}",
                                         line_no, line)
                    extra[mapped] = parse_value(value)
                circuit.add(Diode(ename, rest[0], rest[1], **extra))
            elif letter == "M":
                model_name = rest[4].lower()
                params = models.get(model_name)
                if not isinstance(params, MosfetParams):
                    raise ParseError(f"unknown MOS model {rest[4]!r}",
                                     line_no, line)
                geometry = {"w": 10e-6, "l": 2e-6, "m": 1.0}
                for item in rest[5:]:
                    key, value = item.split("=", 1)
                    key = key.lower()
                    if key not in geometry:
                        raise ParseError(f"unknown MOS parameter {key!r}",
                                         line_no, line)
                    geometry[key] = parse_value(value)
                circuit.add(Mosfet(ename, rest[0], rest[1], rest[2], rest[3],
                                   params, geometry["w"], geometry["l"],
                                   geometry["m"]))
            else:
                raise ParseError(f"unsupported element letter {letter!r}",
                                 line_no, line)
        except ParseError:
            raise
        except (IndexError, ValueError) as exc:
            raise ParseError(f"malformed {letter}-card: {exc}",
                             line_no, line) from exc
    return circuit
