"""Level-1 (Shichman-Hodges) MOSFET model.

This is the workhorse device of the reproduction: the 1997 paper simulated
its IV-converter macro with HSPICE; we substitute a self-contained level-1
implementation.  Level 1 captures everything the methodology exercises —
square-law gain, triode/saturation transitions, channel-length modulation,
body effect — and its simplicity keeps the tens of thousands of Newton
iterations behind a full ATPG run affordable in pure Python.

Two layers:

* :class:`MosfetParams` / :class:`Mosfet` — immutable netlist-level
  description (also used by the pinhole fault model, which splits a device
  into two series transistors; see :mod:`repro.faults.pinhole`).
* :func:`mos_level1` — vectorized model evaluation over arrays of terminal
  voltages and parameters, returning currents and the small-signal partial
  derivatives the Newton stamper needs.  Polarity is handled with a sign
  transform so NMOS and PMOS evaluate through one code path.

The model equations (NMOS orientation, ``vov = vgs - vth``):

* cutoff   (``vov <= 0``):       ``ids = 0``
* triode   (``vds < vov``):      ``ids = beta*(vov - vds/2)*vds*(1 + lam*vds)``
* saturation (``vds >= vov``):   ``ids = beta/2*vov^2*(1 + lam*vds)``

with ``beta = kp*(w/l)*m`` and body effect
``vth = vto + gamma*(sqrt(phi - vbs) - sqrt(phi))``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import NetlistError
from repro.circuit.elements import Element

__all__ = ["MosfetParams", "Mosfet", "mos_level1", "NMOS_DEFAULT", "PMOS_DEFAULT"]


@dataclass(frozen=True)
class MosfetParams:
    """Technology parameters of a level-1 MOSFET model card.

    Attributes:
        kind: ``"nmos"`` or ``"pmos"``.
        vto: zero-bias threshold voltage [V].  Positive for NMOS,
            negative for PMOS (SPICE convention).
        kp: transconductance parameter ``KP = u0*Cox`` [A/V^2].
        lam: channel-length modulation ``LAMBDA`` [1/V].
        gamma: body-effect coefficient [sqrt(V)].
        phi: surface potential ``2*phi_F`` [V].
        cgs_ov: gate-source overlap capacitance per meter width [F/m].
        cgd_ov: gate-drain overlap capacitance per meter width [F/m].
        cox_area: gate-oxide capacitance per unit area [F/m^2]; used for
            the (constant, 2/3-channel) intrinsic gate capacitance added
            in transient analyses.
    """

    kind: str = "nmos"
    vto: float = 0.8
    kp: float = 60e-6
    lam: float = 0.02
    gamma: float = 0.4
    phi: float = 0.7
    cgs_ov: float = 200e-12
    cgd_ov: float = 200e-12
    cox_area: float = 1.5e-3

    def __post_init__(self) -> None:
        if self.kind not in ("nmos", "pmos"):
            raise NetlistError(f"mosfet kind must be nmos/pmos, got {self.kind!r}")
        if self.kp <= 0.0:
            raise NetlistError(f"mosfet KP must be > 0, got {self.kp!r}")
        if self.phi <= 0.0:
            raise NetlistError(f"mosfet PHI must be > 0, got {self.phi!r}")
        if (self.kind == "nmos") != (self.vto >= 0.0):
            raise NetlistError(
                f"VTO sign ({self.vto}) inconsistent with kind {self.kind!r}")

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (voltage/current polarity transform)."""
        return 1.0 if self.kind == "nmos" else -1.0

    def scaled(self, **overrides: float) -> "MosfetParams":
        """Return a copy with selected parameters replaced.

        Used by process-variation sampling (``scaled(vto=..., kp=...)``).
        """
        return replace(self, **overrides)


#: Representative 1.6 um CMOS cards, in the spirit of mid-90s designs.
NMOS_DEFAULT = MosfetParams(kind="nmos", vto=0.8, kp=60e-6, lam=0.02,
                            gamma=0.4, phi=0.7)
PMOS_DEFAULT = MosfetParams(kind="pmos", vto=-0.85, kp=22e-6, lam=0.03,
                            gamma=0.5, phi=0.7)


@dataclass(frozen=True)
class Mosfet(Element):
    """MOSFET instance: terminals (drain, gate, source, bulk) + geometry."""

    d: str = "0"
    g: str = "0"
    s: str = "0"
    b: str = "0"
    params: MosfetParams = NMOS_DEFAULT
    w: float = 10e-6
    l: float = 2e-6
    m: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.w <= 0.0 or self.l <= 0.0:
            raise NetlistError(
                f"mosfet {self.name}: W and L must be > 0 (w={self.w}, l={self.l})")
        if self.m < 1.0:
            raise NetlistError(f"mosfet {self.name}: multiplier m must be >= 1")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.d, self.g, self.s, self.b)

    @property
    def beta(self) -> float:
        """Device transconductance factor ``KP*(W/L)*m`` [A/V^2]."""
        return self.params.kp * (self.w / self.l) * self.m

    @property
    def cgs(self) -> float:
        """Constant gate-source capacitance used in transient analyses [F]."""
        intrinsic = (2.0 / 3.0) * self.params.cox_area * self.w * self.l
        return (self.params.cgs_ov * self.w + intrinsic) * self.m

    @property
    def cgd(self) -> float:
        """Constant gate-drain (overlap) capacitance [F]."""
        return self.params.cgd_ov * self.w * self.m

    def with_geometry(self, w: float | None = None,
                      l: float | None = None) -> "Mosfet":
        """Return a copy with a different channel geometry.

        The pinhole fault model uses this to split a transistor into a
        source-side and a drain-side segment.
        """
        return replace(self, w=self.w if w is None else w,
                       l=self.l if l is None else l)


def mos_level1(
    vgs: np.ndarray,
    vds: np.ndarray,
    vbs: np.ndarray,
    sign: np.ndarray,
    beta: np.ndarray,
    vto: np.ndarray,
    lam: np.ndarray,
    gamma: np.ndarray,
    phi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized level-1 evaluation for a bank of MOSFETs.

    All arguments are equal-length 1-D arrays (one entry per device).
    Terminal voltages are *actual* values; the NMOS/PMOS ``sign`` transform
    is applied internally.  Source-drain inversion (``vds' < 0``) is handled
    by evaluating the device with drain and source swapped and negating the
    current, as physical MOSFETs are symmetric in level 1.

    Returns:
        ``(ids, gm, gds, gmb)`` where ``ids`` is the current flowing into
        the *drain* terminal (out of the source), and the conductances are
        the partials ``d ids / d vgs``, ``d ids / d vds``, ``d ids / d vbs``
        — all in actual (untransformed) polarity, ready for MNA stamping.

    Note:
        Because ``ids = sign * f(sign*v...)``, the chain rule makes each
        partial equal to the transformed-space partial (the two sign
        factors cancel), so no re-transform of ``gm/gds/gmb`` is needed.
    """
    # Transform to NMOS-like orientation.
    tvgs = sign * vgs
    tvds = sign * vds
    tvbs = sign * vbs
    tvto = sign * vto

    # Drain-source inversion: evaluate with swapped terminals.
    inverted = tvds < 0.0
    # Gate-source voltage seen from the effective source terminal.
    evgs = np.where(inverted, tvgs - tvds, tvgs)
    evds = np.abs(tvds)
    evbs = np.where(inverted, tvbs - tvds, tvbs)

    # Body effect: vth = vto + gamma*(sqrt(phi - vbs) - sqrt(phi)).
    # Clamp the junction forward bias so sqrt stays real; dvth/dvbs is then
    # zero in the clamped region, which is the standard SPICE treatment.
    phi_vbs = np.maximum(phi - evbs, 1e-4)
    sqrt_phi_vbs = np.sqrt(phi_vbs)
    vth = tvto + gamma * (sqrt_phi_vbs - np.sqrt(phi))
    dvth_dvbs = np.where(phi - evbs > 1e-4,
                         -gamma / (2.0 * sqrt_phi_vbs), 0.0)

    vov = evgs - vth
    clm = 1.0 + lam * evds

    on = vov > 0.0
    sat = on & (evds >= vov)
    tri = on & ~sat

    ids = np.zeros_like(evgs)
    gm = np.zeros_like(evgs)
    gds = np.zeros_like(evgs)

    # Saturation: ids = beta/2 * vov^2 * (1 + lam*vds)
    ids = np.where(sat, 0.5 * beta * vov**2 * clm, ids)
    gm = np.where(sat, beta * vov * clm, gm)
    gds = np.where(sat, 0.5 * beta * vov**2 * lam, gds)

    # Triode: ids = beta * (vov - vds/2) * vds * (1 + lam*vds)
    ids = np.where(tri, beta * (vov - 0.5 * evds) * evds * clm, ids)
    gm = np.where(tri, beta * evds * clm, gm)
    gds = np.where(
        tri,
        beta * ((vov - evds) * clm + (vov - 0.5 * evds) * evds * lam),
        gds)

    # Body transconductance: d ids / d vbs = -gm_eff * dvth/dvbs.
    gmb = -gm * dvth_dvbs

    # Undo the source-drain swap.  In swapped orientation the computed
    # current flows effective-drain -> effective-source = actual s -> d,
    # and the partials map as: d/dvgs -> gm stays on vgs but measured from
    # the other terminal; the standard result is:
    #   ids_actual = -ids_swapped
    #   gm_actual  = gm_swapped        (applied to vgd = vgs - vds)
    # We fold the remapping algebraically so the caller can stamp with
    # plain (gm, gds, gmb) against (vgs, vds, vbs):
    #   i(vgs,vds,vbs) = -f(vgs-vds, -vds, vbs-vds)
    #   di/dvgs = -f1
    #   di/dvds = f1 + f2 + f3
    #   di/dvbs = -f3
    f1, f2, f3 = gm, gds, gmb
    ids = np.where(inverted, -ids, ids)
    gm_out = np.where(inverted, -f1, f1)
    gds_out = np.where(inverted, f1 + f2 + f3, f2)
    gmb_out = np.where(inverted, -f3, f3)

    # Undo the polarity transform for the current (partials are invariant).
    ids = sign * ids

    return ids, gm_out, gds_out, gmb_out
