"""The :class:`Circuit` container — an immutable-by-convention netlist.

A circuit is an ordered collection of uniquely named elements plus the node
universe they imply.  Fault injection and process-variation sampling never
mutate a circuit in place: they derive new circuits through
:meth:`Circuit.with_element`, :meth:`Circuit.replace_element` and
:meth:`Circuit.without_element`.  Because elements themselves are frozen
dataclasses, derived circuits share element objects safely.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import NetlistError
from repro.circuit.elements import (
    Element,
    CurrentSource,
    Resistor,
    VoltageSource,
    is_ground,
)
from repro.circuit.mosfet import Mosfet

__all__ = ["Circuit"]


class Circuit:
    """An ordered, name-indexed netlist.

    Args:
        name: human-readable circuit title (used in reports).
        elements: initial elements; names must be unique
            (case-insensitive, as in SPICE).
    """

    def __init__(self, name: str = "circuit",
                 elements: Iterable[Element] = ()) -> None:
        self.name = name
        self._elements: dict[str, Element] = {}
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, element: Element) -> "Circuit":
        """Add *element*; raises :class:`NetlistError` on duplicate names.

        Returns self so calls can be chained during construction.
        """
        key = element.name.lower()
        if key in self._elements:
            raise NetlistError(f"duplicate element name: {element.name!r}")
        self._elements[key] = element
        return self

    def extend(self, elements: Iterable[Element]) -> "Circuit":
        """Add several elements; returns self."""
        for element in elements:
            self.add(element)
        return self

    # ------------------------------------------------------------------
    # derivation (used by fault injection / process variation)
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        """Shallow copy (element objects are shared; they are immutable)."""
        dup = Circuit(name or self.name)
        dup._elements = dict(self._elements)
        return dup

    def with_element(self, element: Element, name: str | None = None) -> "Circuit":
        """Return a copy with *element* added."""
        dup = self.copy(name)
        dup.add(element)
        return dup

    def with_elements(self, elements: Iterable[Element],
                      name: str | None = None) -> "Circuit":
        """Return a copy with all *elements* added."""
        dup = self.copy(name)
        dup.extend(elements)
        return dup

    def without_element(self, element_name: str,
                        name: str | None = None) -> "Circuit":
        """Return a copy with the named element removed."""
        key = element_name.lower()
        if key not in self._elements:
            raise NetlistError(f"no such element: {element_name!r}")
        dup = self.copy(name)
        del dup._elements[key]
        return dup

    def replace_element(self, element: Element,
                        name: str | None = None) -> "Circuit":
        """Return a copy where the element with the same name is replaced."""
        key = element.name.lower()
        if key not in self._elements:
            raise NetlistError(f"no such element to replace: {element.name!r}")
        dup = self.copy(name)
        dup._elements[key] = element
        return dup

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def element(self, name: str) -> Element:
        """Look up an element by (case-insensitive) name."""
        try:
            return self._elements[name.lower()]
        except KeyError:
            raise NetlistError(f"no such element: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements in insertion order."""
        return tuple(self._elements.values())

    def elements_of_type(self, kind: type) -> tuple[Element, ...]:
        """All elements that are instances of *kind*, in insertion order."""
        return tuple(e for e in self._elements.values() if isinstance(e, kind))

    def nodes(self, include_ground: bool = False) -> tuple[str, ...]:
        """All node names referenced by elements, in first-seen order."""
        seen: dict[str, None] = {}
        for element in self._elements.values():
            for node in element.nodes:
                if is_ground(node) and not include_ground:
                    continue
                seen.setdefault(node, None)
        return tuple(seen)

    def has_node(self, node: str) -> bool:
        """True if any element terminal references *node*."""
        if is_ground(node):
            return any(is_ground(n) for e in self for n in e.nodes)
        return any(n == node for e in self for n in e.nodes)

    def elements_at(self, node: str) -> tuple[Element, ...]:
        """All elements with a terminal on *node*."""
        ground = is_ground(node)
        found = []
        for element in self._elements.values():
            for n in element.nodes:
                if (is_ground(n) and ground) or n == node:
                    found.append(element)
                    break
        return tuple(found)

    def sources(self) -> tuple[Element, ...]:
        """All independent sources (voltage and current)."""
        return tuple(e for e in self._elements.values()
                     if isinstance(e, (VoltageSource, CurrentSource)))

    # ------------------------------------------------------------------
    # serialization / display
    # ------------------------------------------------------------------
    def to_netlist(self) -> str:
        """Serialize to a SPICE-flavoured text deck (diagnostic aid).

        The output is meant for humans and tests; it round-trips through
        :func:`repro.circuit.parser.parse_netlist` for the element types
        the parser understands.
        """
        lines = [f"* {self.name}"]
        for element in self._elements.values():
            lines.append(_element_card(element))
        lines.append(".end")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, elements={len(self._elements)}, "
                f"nodes={len(self.nodes())})")

    def summary(self) -> str:
        """One-paragraph structural summary used in example scripts."""
        kinds: dict[str, int] = {}
        for element in self._elements.values():
            kinds[type(element).__name__] = kinds.get(type(element).__name__, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return (f"{self.name}: {len(self._elements)} elements ({parts}), "
                f"{len(self.nodes())} non-ground nodes")


def _element_card(element: Element) -> str:
    """Render one element as a netlist card."""
    from repro.circuit.elements import (Capacitor, Inductor, VCCS, VCVS)
    from repro.circuit.diode import Diode

    if isinstance(element, Resistor):
        return f"R{element.name} {element.n1} {element.n2} {element.resistance:g}"
    if isinstance(element, Capacitor):
        return f"C{element.name} {element.n1} {element.n2} {element.capacitance:g}"
    if isinstance(element, Inductor):
        return f"L{element.name} {element.n1} {element.n2} {element.inductance:g}"
    if isinstance(element, VoltageSource):
        return f"V{element.name} {element.n1} {element.n2} {_wave_card(element.waveform)}"
    if isinstance(element, CurrentSource):
        return f"I{element.name} {element.n1} {element.n2} {_wave_card(element.waveform)}"
    if isinstance(element, VCVS):
        return (f"E{element.name} {element.np} {element.nn} "
                f"{element.cp} {element.cn} {element.gain:g}")
    if isinstance(element, VCCS):
        return (f"G{element.name} {element.np} {element.nn} "
                f"{element.cp} {element.cn} {element.gm:g}")
    if isinstance(element, Diode):
        return (f"D{element.name} {element.anode} {element.cathode} "
                f"IS={element.i_s:g} N={element.n:g}")
    if isinstance(element, Mosfet):
        p = element.params
        return (f"M{element.name} {element.d} {element.g} {element.s} {element.b} "
                f"{p.kind} W={element.w:g} L={element.l:g} M={element.m:g}")
    return f"* (unserializable element {element.name})"


def _wave_card(waveform: object) -> str:
    if isinstance(waveform, (int, float)):
        return f"DC {float(waveform):g}"
    return str(waveform)
