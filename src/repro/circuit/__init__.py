"""Netlist layer: elements, device models, circuits, builder and parser.

This package is the structural half of the HSPICE substitute (see
DESIGN.md §2); the numerical half lives in :mod:`repro.analysis`.
"""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.diode import Diode
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    GROUND_NAMES,
    Inductor,
    Resistor,
    TwoTerminal,
    VCCS,
    VCVS,
    VoltageSource,
    is_ground,
)
from repro.circuit.mosfet import (
    Mosfet,
    MosfetParams,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
)
from repro.circuit.netlist import Circuit
from repro.circuit.parser import parse_netlist
from repro.circuit.validate import validate_circuit

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "Element",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
    "MosfetParams",
    "NMOS_DEFAULT",
    "PMOS_DEFAULT",
    "GROUND_NAMES",
    "is_ground",
    "parse_netlist",
    "validate_circuit",
]
