"""Fluent circuit construction with engineering-notation values.

The builder is the recommended way to author macros in code::

    from repro.circuit import CircuitBuilder

    b = CircuitBuilder("divider")
    b.voltage_source("VIN", "in", "0", 5.0)
    b.resistor("R1", "in", "mid", "10k")
    b.resistor("R2", "mid", "0", "10k")
    circuit = b.build()

String values go through :func:`repro.units.parse_value`, so ``"10k"``,
``"2.5u"`` and plain floats are interchangeable.
"""

from __future__ import annotations

from repro.circuit.diode import Diode
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuit.mosfet import Mosfet, MosfetParams
from repro.circuit.netlist import Circuit
from repro.circuit.validate import validate_circuit
from repro.units import parse_value

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Accumulates elements and produces a validated :class:`Circuit`."""

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)

    # Each method returns self so construction chains naturally.

    def resistor(self, name: str, n1: str, n2: str,
                 resistance: float | str) -> "CircuitBuilder":
        """Add a resistor; *resistance* accepts ``"10k"`` style strings."""
        self._circuit.add(Resistor(name, n1, n2, parse_value(resistance)))
        return self

    def capacitor(self, name: str, n1: str, n2: str,
                  capacitance: float | str) -> "CircuitBuilder":
        """Add a capacitor."""
        self._circuit.add(Capacitor(name, n1, n2, parse_value(capacitance)))
        return self

    def inductor(self, name: str, n1: str, n2: str,
                 inductance: float | str) -> "CircuitBuilder":
        """Add an inductor."""
        self._circuit.add(Inductor(name, n1, n2, parse_value(inductance)))
        return self

    def voltage_source(self, name: str, npos: str, nneg: str,
                       waveform) -> "CircuitBuilder":
        """Add an independent voltage source (float or Waveform)."""
        if isinstance(waveform, str):
            waveform = parse_value(waveform)
        self._circuit.add(VoltageSource(name, npos, nneg, waveform))
        return self

    def current_source(self, name: str, npos: str, nneg: str,
                       waveform) -> "CircuitBuilder":
        """Add an independent current source (float or Waveform).

        SPICE polarity: positive current flows npos -> nneg through the
        source, i.e. it is injected *into* the circuit at ``nneg``.
        """
        if isinstance(waveform, str):
            waveform = parse_value(waveform)
        self._circuit.add(CurrentSource(name, npos, nneg, waveform))
        return self

    def vcvs(self, name: str, npos: str, nneg: str, cpos: str, cneg: str,
             gain: float | str) -> "CircuitBuilder":
        """Add a voltage-controlled voltage source."""
        self._circuit.add(VCVS(name, npos, nneg, cpos, cneg,
                               parse_value(gain)))
        return self

    def vccs(self, name: str, npos: str, nneg: str, cpos: str, cneg: str,
             gm: float | str) -> "CircuitBuilder":
        """Add a voltage-controlled current source."""
        self._circuit.add(VCCS(name, npos, nneg, cpos, cneg, parse_value(gm)))
        return self

    def diode(self, name: str, anode: str, cathode: str,
              i_s: float | str = 1e-14, n: float = 1.0) -> "CircuitBuilder":
        """Add a junction diode."""
        self._circuit.add(Diode(name, anode, cathode, parse_value(i_s), n))
        return self

    def mosfet(self, name: str, d: str, g: str, s: str, b: str,
               params: MosfetParams, w: float | str, l: float | str,
               m: float = 1.0) -> "CircuitBuilder":
        """Add a level-1 MOSFET (``w``/``l`` accept ``"10u"`` strings)."""
        self._circuit.add(Mosfet(name, d, g, s, b, params,
                                 parse_value(w), parse_value(l), m))
        return self

    def add(self, element) -> "CircuitBuilder":
        """Add an already-constructed element."""
        self._circuit.add(element)
        return self

    def build(self, validate: bool = True) -> Circuit:
        """Finish construction; validates structurally unless disabled."""
        if validate:
            validate_circuit(self._circuit)
        return self._circuit
