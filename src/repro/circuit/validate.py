"""Structural netlist validation.

Run before analysis to catch the classic authoring mistakes that otherwise
surface as cryptic singular-matrix errors:

* no ground reference anywhere in the circuit;
* nodes with a single element terminal (dangling);
* nodes without a DC path to ground (only capacitors / MOS gates attach);
* loops made purely of ideal voltage sources.

:func:`validate_circuit` raises :class:`~repro.errors.NetlistError` for hard
errors and returns a list of human-readable warnings for soft issues (the
gmin conductances added by the engine make some of them simulable anyway).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCVS,
    VoltageSource,
    is_ground,
)
from repro.circuit.diode import Diode
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit

__all__ = ["validate_circuit"]


class _UnionFind:
    """Tiny union-find over node names for connectivity checks."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        # Iterative with full path compression: resistor chains in the
        # large-macro zoo produce parent chains thousands deep, which a
        # recursive walk cannot survive.
        root = self._parent.setdefault(key, key)
        while root != self._parent[root]:
            root = self._parent[root]
        while key != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _canonical(node: str) -> str:
    return "0" if is_ground(node) else node


def _dc_conducting_pairs(circuit: Circuit) -> list[tuple[str, str]]:
    """Node pairs joined by an element that conducts DC current."""
    pairs: list[tuple[str, str]] = []
    for element in circuit:
        if isinstance(element, (Resistor, Inductor, VoltageSource, Diode)):
            pairs.append((element.n1, element.n2)
                         if not isinstance(element, Diode)
                         else (element.anode, element.cathode))
        elif isinstance(element, VCVS):
            pairs.append((element.np, element.nn))
        elif isinstance(element, Mosfet):
            # Channel conducts d<->s; the bulk junctions conduct weakly.
            pairs.append((element.d, element.s))
            pairs.append((element.s, element.b))
    return pairs


def validate_circuit(circuit: Circuit) -> list[str]:
    """Validate *circuit*; raise on hard errors, return soft warnings.

    Raises:
        NetlistError: if no ground node exists, or the circuit is empty.

    Returns:
        Warnings for dangling nodes, DC-floating nodes and current sources
        into high-impedance nodes.  An empty list means a clean bill.
    """
    if len(circuit) == 0:
        raise NetlistError(f"circuit {circuit.name!r} has no elements")
    if not any(is_ground(n) for e in circuit for n in e.nodes):
        raise NetlistError(
            f"circuit {circuit.name!r} has no ground reference ('0' or 'gnd')")

    warnings: list[str] = []

    # Terminal counts per node (dangling-node check).
    terminal_count: dict[str, int] = {}
    for element in circuit:
        for node in element.nodes:
            node = _canonical(node)
            terminal_count[node] = terminal_count.get(node, 0) + 1
    for node, count in sorted(terminal_count.items()):
        if node != "0" and count < 2:
            warnings.append(f"node {node!r} has a single terminal (dangling)")

    # DC path to ground.
    uf = _UnionFind()
    uf.find("0")
    for a, b in _dc_conducting_pairs(circuit):
        uf.union(_canonical(a), _canonical(b))
    ground_root = uf.find("0")
    for node in circuit.nodes():
        if uf.find(_canonical(node)) != ground_root:
            warnings.append(
                f"node {node!r} has no DC path to ground "
                "(only capacitors/gates attach; gmin will be relied on)")

    # Current source into a node with no other DC-conducting element.
    dc_nodes = {(_canonical(a)) for a, b in _dc_conducting_pairs(circuit)}
    dc_nodes |= {(_canonical(b)) for a, b in _dc_conducting_pairs(circuit)}
    for source in circuit.elements_of_type(CurrentSource):
        for node in source.nodes:
            node = _canonical(node)
            if node != "0" and node not in dc_nodes:
                attached = [e.name for e in circuit.elements_at(node)
                            if not isinstance(e, (CurrentSource, Capacitor))]
                if not attached:
                    warnings.append(
                        f"current source {source.name!r} drives node "
                        f"{node!r} which has no DC-conducting element")
    return warnings
