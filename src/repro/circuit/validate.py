"""Structural netlist validation (back-compat wrapper).

Historically this module carried four hand-coded checks; they now live
as registered rules in the :mod:`repro.lint` framework (see
``docs/lint.md`` for the full catalog).  :func:`validate_circuit` keeps
its original contract on top of them:

* hard errors (empty circuit, no ground reference) raise
  :class:`~repro.errors.NetlistError` with the original messages;
* soft findings (dangling nodes, DC-floating nodes, current sources
  into high-impedance nodes) come back as a deterministically ordered
  list of warning strings — the gmin conductances added by the engine
  make some of them simulable anyway.

For richer checks (structural rank prediction, voltage-source loops,
value sanity, ...) call :func:`repro.lint.lint_circuit` directly.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["validate_circuit"]


def validate_circuit(circuit: Circuit) -> list[str]:
    """Validate *circuit*; raise on hard errors, return soft warnings.

    Raises:
        NetlistError: if no ground node exists, or the circuit is empty.

    Returns:
        Warnings for dangling nodes, DC-floating nodes and current
        sources into high-impedance nodes.  An empty list means a clean
        bill.  Ordering is deterministic: rule id, then subject.
    """
    # Imported lazily: repro.lint pulls in fault/testgen helpers whose
    # packages import repro.circuit right back during initialization.
    from repro.lint.circuit_rules import LEGACY_VALIDATE_RULES
    from repro.lint.runner import lint_circuit

    report = lint_circuit(circuit, rules=LEGACY_VALIDATE_RULES)
    for diagnostic in report.errors:
        raise NetlistError(diagnostic.message)
    return [diagnostic.message for diagnostic in report.warnings]
