"""Circuit element definitions.

Elements are immutable dataclasses: a :class:`~repro.circuit.netlist.Circuit`
can therefore be copied cheaply (the element objects are shared) and fault
injection builds modified circuits without mutating the original — exactly
what a fault simulator iterating over a dictionary of thousands of faults
needs.

Node references are plain strings; the ground node is ``"0"`` (``"gnd"`` is
accepted as an alias).  Index assignment happens later, when the analysis
engine compiles a circuit (see :mod:`repro.analysis.mna`).

Sign conventions follow SPICE:

* ``VoltageSource(np, nn)``: the branch current unknown is the current
  flowing from ``np`` through the source to ``nn``.
* ``CurrentSource(np, nn)``: a positive value drives current from ``np``
  *through the source* to ``nn`` — i.e. it removes current from node ``np``
  and injects it into node ``nn``.  To push current into a node ``x`` from
  ground, write ``CurrentSource("I1", "0", "x", wave)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import NetlistError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.waveforms.sources import Waveform

__all__ = [
    "Element",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "GROUND_NAMES",
    "is_ground",
]

#: Names treated as the global reference node.
GROUND_NAMES = frozenset({"0", "gnd"})


def is_ground(node: str) -> bool:
    """True if *node* names the global reference node."""
    return node.lower() in GROUND_NAMES


@dataclass(frozen=True)
class Element:
    """Common base: every element has a unique name and ordered terminals."""

    name: str

    @property
    def nodes(self) -> tuple[str, ...]:
        """Terminal node names in declaration order."""
        raise NotImplementedError

    def renamed(self, name: str) -> "Element":
        """Return a copy of this element under a different name."""
        return replace(self, name=name)

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("element name must be non-empty")


@dataclass(frozen=True)
class TwoTerminal(Element):
    """Base for elements with exactly two terminals ``(n1, n2)``."""

    n1: str
    n2: str

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)


@dataclass(frozen=True)
class Resistor(TwoTerminal):
    """Linear resistor.

    Attributes:
        resistance: value in ohms; must be positive and finite.  Bridging
            faults use very small values (down to a few ohms), so no lower
            bound beyond zero is imposed.
    """

    resistance: float = 1e3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.resistance > 0.0:
            raise NetlistError(
                f"resistor {self.name}: resistance must be > 0, "
                f"got {self.resistance!r}")

    @property
    def conductance(self) -> float:
        """1/R in siemens."""
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor(TwoTerminal):
    """Linear capacitor.

    Open circuit in DC analyses; integrated with the companion-model
    scheme selected by the transient engine.
    """

    capacitance: float = 1e-12

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.capacitance > 0.0:
            raise NetlistError(
                f"capacitor {self.name}: capacitance must be > 0, "
                f"got {self.capacitance!r}")


@dataclass(frozen=True)
class Inductor(TwoTerminal):
    """Linear inductor; carries a branch-current unknown in MNA.

    Short circuit in DC analyses.
    """

    inductance: float = 1e-9

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.inductance > 0.0:
            raise NetlistError(
                f"inductor {self.name}: inductance must be > 0, "
                f"got {self.inductance!r}")


@dataclass(frozen=True)
class VoltageSource(TwoTerminal):
    """Independent voltage source with a time-dependent waveform.

    The ``waveform`` may be a plain float (DC) or any
    :class:`repro.waveforms.Waveform`.
    """

    waveform: "Waveform | float" = 0.0

    def value_at(self, t: float) -> float:
        """Source voltage at time *t* (the DC value for ``t <= 0``)."""
        if isinstance(self.waveform, (int, float)):
            return float(self.waveform)
        return self.waveform.value_at(t)

    @property
    def dc_value(self) -> float:
        """Value used by DC/operating-point analyses."""
        if isinstance(self.waveform, (int, float)):
            return float(self.waveform)
        return self.waveform.dc_value


@dataclass(frozen=True)
class CurrentSource(TwoTerminal):
    """Independent current source (see module docstring for polarity)."""

    waveform: "Waveform | float" = 0.0

    def value_at(self, t: float) -> float:
        """Source current at time *t* (the DC value for ``t <= 0``)."""
        if isinstance(self.waveform, (int, float)):
            return float(self.waveform)
        return self.waveform.value_at(t)

    @property
    def dc_value(self) -> float:
        """Value used by DC/operating-point analyses."""
        if isinstance(self.waveform, (int, float)):
            return float(self.waveform)
        return self.waveform.dc_value


@dataclass(frozen=True)
class VCVS(Element):
    """Voltage-controlled voltage source ``E``: V(np,nn) = gain * V(cp,cn)."""

    np: str = "0"
    nn: str = "0"
    cp: str = "0"
    cn: str = "0"
    gain: float = 1.0

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn, self.cp, self.cn)


@dataclass(frozen=True)
class VCCS(Element):
    """Voltage-controlled current source ``G``: I(np->nn) = gm * V(cp,cn)."""

    np: str = "0"
    nn: str = "0"
    cp: str = "0"
    cn: str = "0"
    gm: float = field(default=1e-3)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn, self.cp, self.cn)
