"""Junction diode model (Shockley equation with linearized high-bias tail).

Not required by the IV-converter macro itself, but part of the substrate a
usable analog netlist layer needs (and handy for building other macros and
for exercising the Newton solver's exponential-nonlinearity path in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError
from repro.circuit.elements import Element

__all__ = ["Diode", "diode_eval", "THERMAL_VOLTAGE"]

#: kT/q at 300 K [V].
THERMAL_VOLTAGE = 0.02585

#: Above this junction voltage the exponential is continued linearly to
#: keep Newton iterations from overflowing (standard SPICE practice).
_VD_CRIT_MULT = 40.0


@dataclass(frozen=True)
class Diode(Element):
    """Junction diode between ``anode`` and ``cathode``.

    Attributes:
        i_s: saturation current [A].
        n: emission coefficient.
    """

    anode: str = "0"
    cathode: str = "0"
    i_s: float = 1e-14
    n: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.i_s <= 0.0:
            raise NetlistError(f"diode {self.name}: IS must be > 0")
        if self.n <= 0.0:
            raise NetlistError(f"diode {self.name}: N must be > 0")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.anode, self.cathode)


def diode_eval(vd: np.ndarray, i_s: np.ndarray,
               n: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized diode current and conductance at junction voltage *vd*.

    Uses the Shockley equation ``i = IS*(exp(vd/(n*Vt)) - 1)`` with a
    first-order (tangent) continuation beyond ``vd_crit = 40*n*Vt`` so the
    function stays finite and C1-continuous for arbitrary Newton iterates.

    Returns:
        ``(id, gd)`` — current anode->cathode and its derivative d id/d vd.
    """
    nvt = n * THERMAL_VOLTAGE
    vd_crit = _VD_CRIT_MULT * nvt
    v_clamped = np.minimum(vd, vd_crit)
    expo = np.exp(v_clamped / nvt)
    i = i_s * (expo - 1.0)
    g = i_s * expo / nvt
    # Linear continuation above vd_crit (tangent line).
    over = vd > vd_crit
    i = np.where(over, i + g * (vd - vd_crit), i)
    return i, g
