"""Fault dictionaries and exhaustive enumeration.

"An exhaustive list of modeled faults in the IV-converter has been created
resulting in a fault list containing 55 faults.  All 45 bridging faults are
modeled with an initial impact of 10 kOhm.  The shunt-resistor Rs in the
remaining 10 pinhole models has the initial value of 2 kOhm." (paper §3.4)

This module provides that construction for arbitrary circuits: all node
pairs become bridging faults, every MOSFET becomes one pinhole fault.  A
layout-driven IFA front-end would instead weight/filter this list; the
``likelihood`` field on :class:`~repro.faults.base.FaultModel` is the hook
for that.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from itertools import combinations

from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError
from repro.faults.base import FaultModel
from repro.faults.bridging import BridgingFault, DEFAULT_BRIDGE_RESISTANCE
from repro.faults.pinhole import (
    DEFAULT_PINHOLE_POSITION,
    DEFAULT_PINHOLE_RESISTANCE,
    PinholeFault,
)

__all__ = [
    "FaultDictionary",
    "enumerate_bridging_faults",
    "enumerate_pinhole_faults",
    "exhaustive_fault_dictionary",
    "validate_fault_nodes",
]


def validate_fault_nodes(circuit: Circuit,
                         nodes: Iterable[str]) -> tuple[str, ...]:
    """Check a bridging-node universe against *circuit* at build time.

    Overlay stamps index compiled unknowns; a fault site that does not
    exist in the circuit used to surface only at solve time, deep
    inside a generation run.  Dictionary builders call this instead, so
    the mistake fails fast with a list of every offending node.

    Returns:
        The node names as a tuple (evaluated once, safe to reuse).

    Raises:
        FaultModelError: naming all nodes absent from *circuit*.
    """
    node_list = tuple(nodes)
    missing = sorted(n for n in node_list if not circuit.has_node(n))
    if missing:
        raise FaultModelError(
            f"fault node(s) {', '.join(repr(n) for n in missing)} not "
            f"present in circuit {circuit.name!r}: overlay stamps "
            "would be out of range at solve time")
    return node_list


@dataclass(frozen=True)
class FaultDictionary:
    """An ordered, id-indexed collection of fault models."""

    faults: tuple[FaultModel, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for fault in self.faults:
            if fault.fault_id in seen:
                raise FaultModelError(
                    f"duplicate fault in dictionary: {fault.fault_id}")
            seen.add(fault.fault_id)

    def __iter__(self) -> Iterator[FaultModel]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def get(self, fault_id: str) -> FaultModel:
        """Look up a fault by its stable identifier."""
        for fault in self.faults:
            if fault.fault_id == fault_id:
                return fault
        raise FaultModelError(f"no such fault: {fault_id!r}")

    def of_type(self, fault_type: str) -> tuple[FaultModel, ...]:
        """All faults of one model family (``"bridge"``/``"pinhole"``)."""
        return tuple(f for f in self.faults if f.fault_type == fault_type)

    def counts_by_type(self) -> dict[str, int]:
        """Histogram of fault families, e.g. ``{"bridge": 45, "pinhole": 10}``."""
        counts: dict[str, int] = {}
        for fault in self.faults:
            counts[fault.fault_type] = counts.get(fault.fault_type, 0) + 1
        return counts

    def subset(self, fault_ids: Iterable[str]) -> "FaultDictionary":
        """Dictionary restricted to the given ids (order preserved)."""
        wanted = set(fault_ids)
        return FaultDictionary(tuple(
            f for f in self.faults if f.fault_id in wanted))

    def by_overlay_base(self) -> dict[str | None, tuple[FaultModel, ...]]:
        """Faults grouped by compiled overlay base (``None`` = no overlay).

        Each key is one :attr:`FaultModel.overlay_base_key` — the unit of
        sharing for compile-once simulation *and* for batched SMW
        screening, where every fault of a group is served from a single
        LU factorization of that base.  All bridging faults land under
        ``"nominal"``; each pinhole site forms its own group.
        """
        groups: dict[str | None, list[FaultModel]] = {}
        for fault in self.faults:
            key = fault.overlay_base_key if fault.supports_overlay else None
            groups.setdefault(key, []).append(fault)
        return {key: tuple(members) for key, members in groups.items()}

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in
                           sorted(self.counts_by_type().items()))
        return f"FaultDictionary({len(self.faults)} faults: {counts})"


def enumerate_bridging_faults(
    nodes: Iterable[str],
    resistance: float = DEFAULT_BRIDGE_RESISTANCE,
) -> list[BridgingFault]:
    """All-pairs bridging faults over *nodes* (C(n,2) models)."""
    node_list = list(nodes)
    if len(set(node_list)) != len(node_list):
        raise FaultModelError("bridging node list contains duplicates")
    return [BridgingFault(node_a=a, node_b=b, impact=resistance)
            for a, b in combinations(node_list, 2)]


def enumerate_pinhole_faults(
    circuit: Circuit,
    resistance: float = DEFAULT_PINHOLE_RESISTANCE,
    position: float = DEFAULT_PINHOLE_POSITION,
) -> list[PinholeFault]:
    """One pinhole fault per MOSFET in *circuit*."""
    return [PinholeFault(device=m.name, impact=resistance, position=position)
            for m in circuit.elements_of_type(Mosfet)]


def exhaustive_fault_dictionary(
    circuit: Circuit,
    nodes: Iterable[str] | None = None,
    bridge_resistance: float = DEFAULT_BRIDGE_RESISTANCE,
    pinhole_resistance: float = DEFAULT_PINHOLE_RESISTANCE,
    pinhole_position: float = DEFAULT_PINHOLE_POSITION,
) -> FaultDictionary:
    """The paper's exhaustive dictionary: all node-pair bridges + pinholes.

    Args:
        circuit: target circuit.
        nodes: node universe for bridging faults; defaults to every node
            in the circuit including ground.  Macros restrict this to
            their *standard node list* (the paper's 10 IV-converter
            nodes) so internal helper nodes do not inflate the count.
    """
    if nodes is None:
        nodes = circuit.nodes(include_ground=True)
    else:
        nodes = validate_fault_nodes(circuit, nodes)
    bridges = enumerate_bridging_faults(nodes, bridge_resistance)
    pinholes = enumerate_pinhole_faults(circuit, pinhole_resistance,
                                        pinhole_position)
    return FaultDictionary(tuple(bridges) + tuple(pinholes))
