"""Bridging (resistive short) fault model.

"The bridging type of defects are modeled by a resistor between nodes"
(paper §3.4).  Injection adds one resistor whose value is the impact
parameter; the exhaustive dictionary for the IV-converter contains all 45
node pairs at an initial impact of 10 kOhm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.elements import Resistor, is_ground
from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError
from repro.faults.base import FaultModel, OverlayStamp

__all__ = ["BridgingFault", "DEFAULT_BRIDGE_RESISTANCE"]

#: Initial bridge impact used in the paper's experiment (10 kOhm).
DEFAULT_BRIDGE_RESISTANCE = 10e3


@dataclass(frozen=True)
class BridgingFault(FaultModel):
    """Resistive short between two circuit nodes.

    Attributes:
        node_a / node_b: bridged node names (order-insensitive identity).
        impact: bridge resistance [ohm]; smaller = harder short.
    """

    node_a: str = ""
    node_b: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_a or not self.node_b:
            raise FaultModelError("bridging fault needs two node names")
        if self._canon(self.node_a) == self._canon(self.node_b):
            raise FaultModelError(
                f"bridging fault nodes must differ, got {self.node_a!r} twice")

    @staticmethod
    def _canon(node: str) -> str:
        return "0" if is_ground(node) else node

    @property
    def fault_id(self) -> str:
        a, b = sorted((self._canon(self.node_a), self._canon(self.node_b)))
        return f"bridge:{a}:{b}"

    @property
    def fault_type(self) -> str:
        return "bridge"

    @property
    def location(self) -> str:
        return f"between nodes {self.node_a} and {self.node_b}"

    @property
    def element_name(self) -> str:
        """Name of the injected bridge resistor."""
        a, b = sorted((self._canon(self.node_a), self._canon(self.node_b)))
        return f"RBRIDGE_{a}_{b}"

    def apply(self, circuit: Circuit) -> Circuit:
        """Inject the bridge resistor; validates both nodes exist."""
        for node in (self.node_a, self.node_b):
            if not circuit.has_node(node):
                raise FaultModelError(
                    f"{self.fault_id}: node {node!r} not present in "
                    f"circuit {circuit.name!r}")
        bridge = Resistor(self.element_name, self.node_a, self.node_b,
                          self.impact)
        return circuit.with_element(
            bridge, name=f"{circuit.name}+{self.fault_id}")

    # ------------------------------------------------------------------
    # overlay protocol: a bridge is one conductance between two existing
    # nodes of the *unmodified* circuit, so every bridging fault shares
    # the nominal compiled base.
    # ------------------------------------------------------------------
    @property
    def supports_overlay(self) -> bool:
        return True

    @property
    def overlay_base_key(self) -> str:
        return "nominal"

    def overlay_base(self, circuit: Circuit) -> Circuit:
        return circuit

    def stamp_delta(self, compiled) -> tuple[OverlayStamp, ...]:
        """Single conductance ``1/impact`` between the bridged nodes."""
        for node in (self.node_a, self.node_b):
            if not is_ground(node) and node not in compiled.node_index:
                raise FaultModelError(
                    f"{self.fault_id}: node {node!r} not present in "
                    f"circuit {compiled.circuit.name!r}")
        return (OverlayStamp(self.node_a, self.node_b, 1.0 / self.impact),)
