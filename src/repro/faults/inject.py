"""Fault injection helper with post-injection validation."""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.validate import validate_circuit
from repro.errors import NetlistError, FaultModelError
from repro.faults.base import FaultModel

__all__ = ["inject_fault"]


def inject_fault(circuit: Circuit, fault: FaultModel,
                 validate: bool = False) -> Circuit:
    """Return a copy of *circuit* with *fault* injected.

    Thin wrapper over :meth:`FaultModel.apply` that optionally re-validates
    the faulty netlist.  Validation is off by default: fault injection is
    on the innermost ATPG loop and the models only add well-formed
    elements, but turning it on is useful when developing new fault types.

    Raises:
        FaultModelError: from the model itself, or wrapping a structural
            validation failure of the faulty circuit.
    """
    faulty = fault.apply(circuit)
    if validate:
        try:
            validate_circuit(faulty)
        except NetlistError as exc:
            raise FaultModelError(
                f"injecting {fault.fault_id} produced an invalid circuit: "
                f"{exc}") from exc
    return faulty
