"""Fault-model abstractions.

A *fault model* (paper §2.2) is a parametric netlist transformation: it
injects a structural defect into a circuit, and it carries an **impact**
parameter — "the physical size of the actual defect, represented by a fault
model parameter value set".  For both models used in the paper the impact
parameter is a resistance:

* bridging fault — the bridge resistance (lower = stronger short =
  *stronger* impact);
* pinhole fault — the gate-oxide shunt resistance (lower = stronger leak =
  *stronger* impact).

The generation algorithm manipulates impact monotonically, so the
interface normalizes direction: :meth:`FaultModel.weakened` always moves
the model toward undetectability and :meth:`FaultModel.strengthened`
toward a hard defect, regardless of how the underlying parameter maps.

Beyond the netlist-level :meth:`FaultModel.apply`, models can opt into the
**overlay protocol** used by :class:`repro.analysis.engine.SimulationEngine`:
injection then becomes a set of conductance stamps
(:class:`OverlayStamp`) on a compiled *overlay base* circuit instead of a
netlist copy plus a full recompile.  Both paper fault models qualify —
their impact parameter is exactly one conductance between two existing
nodes of their base topology — so the per-fault inner loop of a
generation run performs zero compilations.  Models that cannot express
themselves this way (e.g. ones that rewire terminals per impact value)
simply leave :attr:`FaultModel.supports_overlay` False and keep the
legacy copy+recompile path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.mna import CompiledCircuit

__all__ = ["FaultModel", "OverlayStamp",
           "IMPACT_RESISTANCE_MIN", "IMPACT_RESISTANCE_MAX"]

#: Physical plausibility bounds for resistance-type impact parameters.
IMPACT_RESISTANCE_MIN = 1.0
IMPACT_RESISTANCE_MAX = 1e9


@dataclass(frozen=True)
class OverlayStamp:
    """One conductance stamped between two nodes of an overlay base.

    Attributes:
        node_a / node_b: node names in the overlay base circuit (either
            may be ground).
        conductance: stamp value [S].
    """

    node_a: str
    node_b: str
    conductance: float


@dataclass(frozen=True)
class FaultModel(ABC):
    """Base class of injectable fault models.

    Attributes:
        impact: the model parameter value (a resistance, for both models
            in this library) [ohm].
        likelihood: optional relative occurrence weight.  An inductive
            fault analysis (IFA) front-end can populate it from layout
            data; the exhaustive dictionaries used in the paper leave it
            at 1.0.
    """

    impact: float = 1.0
    likelihood: float = 1.0

    def __post_init__(self) -> None:
        if not (IMPACT_RESISTANCE_MIN <= self.impact <= IMPACT_RESISTANCE_MAX):
            raise FaultModelError(
                f"impact {self.impact!r} outside plausible range "
                f"[{IMPACT_RESISTANCE_MIN}, {IMPACT_RESISTANCE_MAX}] ohm")
        if self.likelihood <= 0.0:
            raise FaultModelError("likelihood must be positive")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def fault_id(self) -> str:
        """Stable unique identifier, e.g. ``"bridge:n2:n3"``."""

    @property
    @abstractmethod
    def fault_type(self) -> str:
        """Model family name: ``"bridge"`` or ``"pinhole"``."""

    @property
    @abstractmethod
    def location(self) -> str:
        """Human-readable defect location."""

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    @abstractmethod
    def apply(self, circuit: Circuit) -> Circuit:
        """Return a new circuit with this fault injected.

        The input circuit is never modified.  Raises
        :class:`FaultModelError` when the fault references nodes or
        devices absent from *circuit*.
        """

    # ------------------------------------------------------------------
    # overlay protocol (compile-once fault stamping; see module doc)
    # ------------------------------------------------------------------
    @property
    def supports_overlay(self) -> bool:
        """True when this fault can be injected as conductance stamps on
        a compiled overlay base (no netlist copy, no recompile)."""
        return False

    @property
    def overlay_base_key(self) -> str:
        """Identity of the overlay base circuit this fault stamps onto.

        Faults sharing a key share one compiled base: every bridging
        fault overlays the plain nominal circuit (key ``"nominal"``),
        while each pinhole site compiles its split-channel skeleton once
        and reuses it for every impact value.  The key must **not**
        depend on :attr:`impact` — impact lives entirely in the stamps.
        """
        raise FaultModelError(
            f"{self.fault_id}: fault type {self.fault_type!r} does not "
            "support overlay stamping")

    def overlay_base(self, circuit: Circuit) -> Circuit:
        """Derive the overlay base netlist from the nominal *circuit*.

        The base carries the fault's impact-independent topology changes
        (possibly none) but **not** the impact conductance itself; it is
        compiled once per :attr:`overlay_base_key` and served to
        :meth:`stamp_delta`.
        """
        raise FaultModelError(
            f"{self.fault_id}: fault type {self.fault_type!r} does not "
            "support overlay stamping")

    def stamp_delta(self, compiled: "CompiledCircuit") -> tuple[
            OverlayStamp, ...]:
        """Conductance stamps realizing this fault on *compiled*.

        *compiled* must be a compilation of :meth:`overlay_base`'s
        output (for base key ``"nominal"``, of the nominal circuit).
        Raises :class:`FaultModelError` when the required nodes are
        absent — the same contract as :meth:`apply`.
        """
        raise FaultModelError(
            f"{self.fault_id}: fault type {self.fault_type!r} does not "
            "support overlay stamping")

    # ------------------------------------------------------------------
    # impact manipulation (used by the generation algorithm, Fig. 6)
    # ------------------------------------------------------------------
    @property
    def weaken_increases_parameter(self) -> bool:
        """True when a *weaker* defect means a *larger* parameter value.

        True for both resistance-parameterized models in this library
        (a higher bridge or shunt resistance is a weaker defect); an
        IFA-derived model with, say, a width parameter can flip it.
        """
        return True

    def with_impact(self, impact: float) -> "FaultModel":
        """Copy of this fault with the impact parameter replaced."""
        return replace(self, impact=float(impact))

    def weakened(self, factor: float) -> "FaultModel":
        """Copy with the defect weakened by *factor* (> 1)."""
        if factor <= 1.0:
            raise FaultModelError(f"weakening factor must be > 1, got {factor}")
        if self.weaken_increases_parameter:
            new = min(self.impact * factor, IMPACT_RESISTANCE_MAX)
        else:
            new = max(self.impact / factor, IMPACT_RESISTANCE_MIN)
        return self.with_impact(new)

    def strengthened(self, factor: float) -> "FaultModel":
        """Copy with the defect strengthened by *factor* (> 1)."""
        if factor <= 1.0:
            raise FaultModelError(
                f"strengthening factor must be > 1, got {factor}")
        if self.weaken_increases_parameter:
            new = max(self.impact / factor, IMPACT_RESISTANCE_MIN)
        else:
            new = min(self.impact * factor, IMPACT_RESISTANCE_MAX)
        return self.with_impact(new)

    @property
    def cache_key(self) -> str:
        """Key identifying the *exact* injected netlist transformation.

        Unlike :attr:`fault_id` (which identifies the defect site), this
        includes every model parameter that changes the injected circuit
        — subclasses with extra knobs (e.g. pinhole position) must extend
        it.  Simulation caches key on this.
        """
        return f"{self.fault_id}@{self.impact:.6e}"

    @property
    def at_weakest(self) -> bool:
        """True when the impact parameter sits at its weak-end bound."""
        bound = (IMPACT_RESISTANCE_MAX if self.weaken_increases_parameter
                 else IMPACT_RESISTANCE_MIN)
        return self.impact == bound

    @property
    def at_strongest(self) -> bool:
        """True when the impact parameter sits at its strong-end bound."""
        bound = (IMPACT_RESISTANCE_MIN if self.weaken_increases_parameter
                 else IMPACT_RESISTANCE_MAX)
        return self.impact == bound

    def __str__(self) -> str:
        return f"{self.fault_id}@{self.impact:g}"
