"""Structural fault models, dictionaries and injection (paper §2-3).

The two model families of the paper's experiment:

* :class:`BridgingFault` — resistive short between two nodes;
* :class:`PinholeFault` — Eckersall gate-oxide short (split channel plus
  gate shunt at 25 % of the channel length from the drain).

Both expose the *impact* manipulation interface the generation algorithm
drives (weaken / strengthen / critical-impact search).
"""

from repro.faults.base import (
    FaultModel,
    OverlayStamp,
    IMPACT_RESISTANCE_MAX,
    IMPACT_RESISTANCE_MIN,
)
from repro.faults.bridging import BridgingFault, DEFAULT_BRIDGE_RESISTANCE
from repro.faults.dictionary import (
    FaultDictionary,
    enumerate_bridging_faults,
    enumerate_pinhole_faults,
    exhaustive_fault_dictionary,
    validate_fault_nodes,
)
from repro.faults.ifa import (
    IfaWeights,
    bridge_likelihood,
    ifa_fault_dictionary,
    pinhole_likelihood,
    weighted_coverage,
)
from repro.faults.inject import inject_fault
from repro.faults.pinhole import (
    DEFAULT_PINHOLE_POSITION,
    DEFAULT_PINHOLE_RESISTANCE,
    PinholeFault,
)

__all__ = [
    "FaultModel",
    "OverlayStamp",
    "BridgingFault",
    "PinholeFault",
    "FaultDictionary",
    "enumerate_bridging_faults",
    "enumerate_pinhole_faults",
    "exhaustive_fault_dictionary",
    "validate_fault_nodes",
    "inject_fault",
    "IfaWeights",
    "bridge_likelihood",
    "pinhole_likelihood",
    "ifa_fault_dictionary",
    "weighted_coverage",
    "DEFAULT_BRIDGE_RESISTANCE",
    "DEFAULT_PINHOLE_RESISTANCE",
    "DEFAULT_PINHOLE_POSITION",
    "IMPACT_RESISTANCE_MIN",
    "IMPACT_RESISTANCE_MAX",
]
