"""Pinhole (gate-oxide short) fault model.

Adopts the modeling of Eckersall et al. (paper Fig. 7 and ref. [10]): the
defective transistor's channel is split at the defect position into a
source-side and a drain-side series transistor, and a shunt resistor
``Rs`` connects the gate to the split point.  The paper places defects "at
25% of the channel-length from the drain" to avoid undersized channel
lengths near the drain, and notes that drain-proximal defects have
relatively low detectability.

Injection therefore replaces one MOSFET with:

* ``<name>_PHS`` — source-side segment, ``L_src = (1 - position) * L``;
* ``<name>_PHD`` — drain-side segment,  ``L_drn = position * L``;
* ``RPINHOLE_<name>`` — the gate-to-channel shunt, value = impact.

The split point becomes a new internal node ``<name>_ph``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.elements import Resistor
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError
from repro.faults.base import FaultModel, OverlayStamp

__all__ = ["PinholeFault", "DEFAULT_PINHOLE_RESISTANCE",
           "DEFAULT_PINHOLE_POSITION"]

#: Initial shunt-resistor impact used in the paper's experiment (2 kOhm).
DEFAULT_PINHOLE_RESISTANCE = 2e3

#: Defect position as a fraction of channel length from the drain.
DEFAULT_PINHOLE_POSITION = 0.25


@dataclass(frozen=True)
class PinholeFault(FaultModel):
    """Gate-oxide short inside a MOSFET.

    Attributes:
        device: name of the afflicted MOSFET.
        position: defect location, fraction of channel length measured
            from the drain (paper value 0.25).
        impact: shunt resistance ``Rs`` [ohm]; smaller = stronger short.
    """

    device: str = ""
    position: float = DEFAULT_PINHOLE_POSITION

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.device:
            raise FaultModelError("pinhole fault needs a device name")
        if not 0.0 < self.position < 1.0:
            raise FaultModelError(
                f"pinhole position must be in (0, 1), got {self.position}")

    @property
    def fault_id(self) -> str:
        return f"pinhole:{self.device}"

    @property
    def fault_type(self) -> str:
        return "pinhole"

    @property
    def location(self) -> str:
        return (f"gate oxide of {self.device}, "
                f"{self.position:.0%} of channel from drain")

    @property
    def cache_key(self) -> str:
        """Cache identity includes the defect position (it changes the
        injected netlist, unlike the fault's site identity)."""
        return f"{self.fault_id}@{self.impact:.6e}@pos{self.position:.4f}"

    @property
    def split_node(self) -> str:
        """Name of the internal channel node created by injection."""
        return f"{self.device}_ph"

    @property
    def element_name(self) -> str:
        """Name of the injected shunt resistor."""
        return f"RPINHOLE_{self.device}"

    def _split_segments(self, circuit: Circuit) -> tuple[Mosfet, Mosfet]:
        """Validate the target device and build the two channel segments."""
        if self.device not in circuit:
            raise FaultModelError(
                f"{self.fault_id}: device {self.device!r} not present in "
                f"circuit {circuit.name!r}")
        original = circuit.element(self.device)
        if not isinstance(original, Mosfet):
            raise FaultModelError(
                f"{self.fault_id}: element {self.device!r} is a "
                f"{type(original).__name__}, not a Mosfet")
        if circuit.has_node(self.split_node):
            raise FaultModelError(
                f"{self.fault_id}: split node {self.split_node!r} already "
                "exists (fault injected twice?)")

        mid = self.split_node
        # The drain-side segment's "source" is an artificial point inside
        # the original channel; evaluating body effect against it would
        # raise that segment's threshold spuriously and the split would no
        # longer converge to the unsplit device as Rs -> inf.  The
        # charge-sheet series equivalence (I*L = KP*W*[g(vs) - g(vd)])
        # holds when the drain-side segment carries no extra body bias,
        # so its gamma is zeroed; the source-side segment keeps the full
        # model card (its source terminal is the real one).
        drain_params = original.params.scaled(gamma=0.0)
        drain_side = Mosfet(
            f"{original.name}_PHD", d=original.d, g=original.g, s=mid,
            b=original.b, params=drain_params, w=original.w,
            l=original.l * self.position, m=original.m)
        source_side = Mosfet(
            f"{original.name}_PHS", d=mid, g=original.g, s=original.s,
            b=original.b, params=original.params, w=original.w,
            l=original.l * (1.0 - self.position), m=original.m)
        return drain_side, source_side

    def apply(self, circuit: Circuit) -> Circuit:
        """Split the device channel and attach the gate shunt."""
        drain_side, source_side = self._split_segments(circuit)
        shunt = Resistor(self.element_name, drain_side.g, self.split_node,
                         self.impact)
        faulty = circuit.without_element(self.device)
        faulty = faulty.with_elements(
            [drain_side, source_side, shunt],
            name=f"{circuit.name}+{self.fault_id}")
        return faulty

    # ------------------------------------------------------------------
    # overlay protocol: the split topology depends only on the defect
    # *site* (device + position), never on the impact — so it compiles
    # once and every impact value becomes a gate-to-split-node
    # conductance stamp on that shared base.
    # ------------------------------------------------------------------
    @property
    def supports_overlay(self) -> bool:
        return True

    @property
    def overlay_base_key(self) -> str:
        return f"pinhole:{self.device}@pos{self.position:.4f}"

    def overlay_base(self, circuit: Circuit) -> Circuit:
        """The split-channel skeleton *without* the shunt resistor."""
        drain_side, source_side = self._split_segments(circuit)
        base = circuit.without_element(self.device)
        return base.with_elements(
            [drain_side, source_side],
            name=f"{circuit.name}+{self.overlay_base_key}")

    def stamp_delta(self, compiled) -> tuple[OverlayStamp, ...]:
        """Shunt conductance ``1/impact`` from the gate to the split node."""
        if self.split_node not in compiled.node_index:
            raise FaultModelError(
                f"{self.fault_id}: compiled circuit "
                f"{compiled.circuit.name!r} is not this fault's overlay "
                f"base (split node {self.split_node!r} missing)")
        gate = compiled.circuit.element(f"{self.device}_PHD").g
        return (OverlayStamp(gate, self.split_node, 1.0 / self.impact),)
