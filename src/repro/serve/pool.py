"""Bounded pool of warm simulation engines keyed by (macro, config).

A pooled entry owns one :class:`~repro.testgen.execution.TestExecutor`
(and therefore one :class:`~repro.analysis.engine.SimulationEngine`)
per (macro, configuration) pair, plus everything a serving request
needs resolved once: the macro's fault dictionary indexed by id and the
content digest of its nominal netlist (the verdict-cache key prefix).

Entries build lazily on first touch and evict LRU at capacity — the
usual serving trade: keeping an entry warm keeps its compiled overlay
bases and factorized screening solvers, so repeat traffic pays zero
compile and zero factorization (``EngineStats.factorization_reuses``
counts the win).  Because served screens run in **canonical mode**,
eviction can never change a verdict: a rebuilt engine produces the same
bits as the evicted one.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro._log import get_logger
from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.errors import ReproError, ServeError
from repro.faults.base import FaultModel
from repro.hashing import netlist_digest
from repro.macros.registry import available_macros, get_macro
from repro.testgen.execution import TestExecutor

__all__ = ["PoolStats", "PoolEntry", "EnginePool"]

_LOG = get_logger("serve.pool")


@dataclass
class PoolStats:
    """Engine-pool accounting.

    Attributes:
        constructions: entries built (macro + executor + engine).
        hits: requests served by an already-warm entry.
        evictions: entries dropped at capacity.
    """

    constructions: int = 0
    hits: int = 0
    evictions: int = 0


@dataclass
class PoolEntry:
    """One warm (macro, configuration) serving context.

    Attributes:
        macro / configuration: the pool key.
        executor: the warm test executor (canonical-mode screens only).
        netlist: content digest of the nominal netlist
            (:func:`repro.hashing.netlist_digest`).
        faults: the macro's fault dictionary, in dictionary order.
        fault_index: id -> fault lookup into *faults*.
        requests_served / verdicts_served: per-entry traffic counters.
    """

    macro: str
    configuration: str
    executor: TestExecutor
    netlist: str
    faults: tuple[FaultModel, ...]
    fault_index: dict[str, FaultModel] = field(default_factory=dict)
    requests_served: int = 0
    verdicts_served: int = 0

    def __post_init__(self) -> None:
        if not self.fault_index:
            self.fault_index = {f.fault_id: f for f in self.faults}

    def resolve_faults(self, fault_ids) -> tuple[FaultModel, ...]:
        """Faults for *fault_ids* (None = the whole dictionary)."""
        if fault_ids is None:
            return self.faults
        missing = [fid for fid in fault_ids if fid not in self.fault_index]
        if missing:
            raise ServeError(
                f"unknown fault id(s) for {self.macro}/"
                f"{self.configuration}: {missing} "
                f"(dictionary has {len(self.faults)})")
        return tuple(self.fault_index[fid] for fid in fault_ids)


class EnginePool:
    """LRU-bounded lazy pool of warm serving entries.

    Args:
        capacity: bound on concurrently-warm (macro, config) entries.
        options: simulator options shared by every pooled executor.
        box_mode: forwarded to ``Macro.test_configurations``.
    """

    def __init__(self, capacity: int = 8,
                 options: SimOptions = DEFAULT_OPTIONS, *,
                 box_mode: str = "fast") -> None:
        if capacity < 1:
            raise ServeError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.options = options
        self.box_mode = box_mode
        self.stats = PoolStats()
        self._entries: OrderedDict[tuple[str, str], PoolEntry] = \
            OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def keys(self) -> tuple[tuple[str, str], ...]:
        """Warm (macro, configuration) keys, oldest first."""
        return tuple(self._entries)

    def entry(self, macro: str, configuration: str) -> PoolEntry:
        """Warm entry for (macro, configuration), building it lazily."""
        key = (macro, configuration)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        entry = self._build(macro, configuration)
        self._entries[key] = entry
        self.stats.constructions += 1
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            _LOG.info("evicted warm engine %s/%s", *victim)
        return entry

    def _build(self, macro: str, configuration: str) -> PoolEntry:
        try:
            instance = get_macro(macro)
        except ReproError as exc:
            raise ServeError(
                f"unknown macro {macro!r} "
                f"(available: {', '.join(available_macros())})") from exc
        configs = {c.name: c
                   for c in instance.test_configurations(self.box_mode)}
        if configuration not in configs:
            raise ServeError(
                f"macro {macro!r} has no configuration "
                f"{configuration!r} (available: {', '.join(configs)})")
        circuit = instance.circuit
        executor = TestExecutor(circuit, configs[configuration],
                                self.options)
        _LOG.info("built serving entry %s/%s", macro, configuration)
        return PoolEntry(
            macro=macro,
            configuration=configuration,
            executor=executor,
            netlist=netlist_digest(circuit.to_netlist()),
            faults=tuple(instance.fault_dictionary()))

    def engine_summary(self) -> dict[str, dict]:
        """Per-entry engine/traffic stats (the ``/stats`` pool section)."""
        summary: dict[str, dict] = {}
        for (macro, config), entry in self._entries.items():
            stats = entry.executor.engine.stats
            summary[f"{macro}/{config}"] = {
                "requests_served": entry.requests_served,
                "verdicts_served": entry.verdicts_served,
                "compilations": stats.compilations,
                "factorizations": stats.factorizations,
                "factorization_reuses": stats.factorization_reuses,
                "screened_simulations": stats.screened_simulations,
            }
        return summary
