"""Stdlib asyncio HTTP endpoint over the batching front door.

Wire protocol (JSON over HTTP/1.1, one request per connection):

``POST /screen``
    Body: :class:`~repro.serve.frontdoor.ScreenRequest` wire form —
    ``{"macro": ..., "configuration": ..., "fault_ids": [...]?,
    "vector": [...]?}``.  Response 200: the
    :class:`~repro.serve.frontdoor.ScreenResponse` wire form.  Invalid
    requests get 400 with ``{"error": ...}``.

``GET /stats``
    Serving counters, verdict-cache counters and the per-entry engine
    pool summary.

``GET /healthz``
    ``{"ok": true}`` — liveness only, touches no engine.

No third-party HTTP stack: requests are parsed directly off the
``asyncio`` stream (header block, then ``Content-Length`` body), which
keeps the serving layer inside the repo's no-new-dependencies rule.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict

from repro._log import get_logger
from repro.errors import ServeError
from repro.serve.frontdoor import BatchingFrontDoor, ScreenRequest
from repro.serve.metrics import stats_to_dict

__all__ = ["ATPGServer"]

_LOG = get_logger("serve.server")

#: Upper bound on accepted request bodies (a full-dictionary request
#: with an explicit vector is well under 100 kB).
MAX_BODY_BYTES = 1 << 20
#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 1 << 16

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error"}


class ATPGServer:
    """Asyncio HTTP server serving fault verdicts from a front door.

    Args:
        frontdoor: the batching dispatcher to serve from.
        host / port: bind address; ``port=0`` picks a free port (read
            the resulting :attr:`port` after :meth:`start` — the test
            suite and the CI smoke job rely on this).
    """

    def __init__(self, frontdoor: BatchingFrontDoor,
                 host: str = "127.0.0.1", port: int = 8787) -> None:
        self.frontdoor = frontdoor
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _LOG.info("serving on http://%s:%d", self.host, self.port)

    async def serve_forever(self) -> None:
        """Start (when needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the solver thread."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.frontdoor.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except Exception as exc:  # defensive: never kill the server
            _LOG.warning("request handling failed: %s", exc)
            status, payload = 500, {"error": f"internal error: {exc}"}
        body = json.dumps(payload, sort_keys=False).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              ) -> tuple[int, dict]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request head"}
        if len(head) > MAX_HEAD_BYTES:
            return 413, {"error": "request head too large"}
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {lines[0]!r}"}
        method, path, _ = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()

        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET /healthz"}
            return 200, {"ok": True}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET /stats"}
            return 200, self.stats_payload()
        if path == "/screen":
            if method != "POST":
                return 405, {"error": "use POST /screen"}
            return await self._handle_screen(reader, headers)
        return 404, {"error": f"no such endpoint: {path}"}

    async def _handle_screen(self, reader: asyncio.StreamReader,
                             headers: dict) -> tuple[int, dict]:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"error": "bad Content-Length"}
        if length <= 0:
            return 400, {"error": "POST /screen needs a JSON body"}
        if length > MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return 400, {"error": "truncated request body"}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}
        try:
            request = ScreenRequest.from_dict(payload)
            response = await self.frontdoor.screen(request)
        except ServeError as exc:
            return 400, {"error": str(exc)}
        return 200, response.to_dict()

    def stats_payload(self) -> dict:
        """The ``/stats`` body: serve + cache + pool sections."""
        return {
            "serve": stats_to_dict(self.frontdoor.stats),
            "cache": asdict(self.frontdoor.cache.stats),
            "pool": {
                "entries": len(self.frontdoor.pool),
                **asdict(self.frontdoor.pool.stats),
                "engines": self.frontdoor.pool.engine_summary(),
            },
        }
