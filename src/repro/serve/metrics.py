"""Serving observability: counters, latency quantiles, reporters.

This module is the serving layer's **only** clock boundary: every
``time.monotonic`` read in ``repro.serve`` happens here (the repo-level
linter enforces it).  The rest of the serving code handles opaque timer
tokens, so no wall-clock value can leak into a verdict — latencies are
observability output, never simulation input.

Reporters mirror the :mod:`repro.lint` style: ``render_text`` for
humans, ``stats_to_dict``/``render_json`` for machines (the ``/stats``
endpoint serves the latter verbatim).
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["LATENCY_WINDOW", "ServeStats", "render_text", "render_json",
           "stats_to_dict"]

#: Latency samples kept for the quantile estimates (sliding window).
LATENCY_WINDOW = 2048


@dataclass
class ServeStats:
    """Accounting of one serving front door.

    Attributes:
        requests: screening requests accepted.
        errors: requests rejected (unknown macro/config, bad vector...).
        batches: coalesced family solves flushed (one per
            (macro, configuration, vector) group per window).
        faults_requested: per-fault verdicts asked for, summed over
            requests (the same fault in two requests counts twice).
        verdicts_served: per-fault verdicts returned.
        cache_hits / cache_misses: verdict-cache outcomes as seen by the
            front door (hits include single-flight coalescing: a fault
            computed once for two concurrent requests is one miss plus
            one hit).
        batch_sizes: recent flush sizes (unique faults per batch).
        latencies: recent request latencies in seconds.
    """

    requests: int = 0
    errors: int = 0
    batches: int = 0
    faults_requested: int = 0
    verdicts_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batch_sizes: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    latencies: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    # ------------------------------------------------------------------
    # clock boundary
    # ------------------------------------------------------------------
    def timer(self) -> float:
        """Opaque start token for one request (monotonic clock read)."""
        return time.monotonic()

    def observe_latency(self, token: float) -> float:
        """Record the latency of a request started at *token* (seconds)."""
        elapsed = time.monotonic() - token
        self.latencies.append(elapsed)
        return elapsed

    # ------------------------------------------------------------------
    # derived figures
    # ------------------------------------------------------------------
    @property
    def coalesce_ratio(self) -> float:
        """Fraction of requests that shared a batch with another one.

        ``1 - batches/requests``: 0.0 when every request flushed alone,
        approaching 1.0 as the window folds many requests into few
        family solves.
        """
        if self.requests <= 0:
            return 0.0
        return max(0.0, 1.0 - self.batches / self.requests)

    @property
    def cache_hit_rate(self) -> float:
        """Verdict-cache hit fraction (0.0 with no traffic)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Mean unique faults per flushed batch (recent window)."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def latency_quantile(self, q: float) -> float:
        """Nearest-rank latency quantile in seconds (0.0 when empty)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    @property
    def p50_latency(self) -> float:
        """Median request latency (seconds, recent window)."""
        return self.latency_quantile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile request latency (seconds, recent window)."""
        return self.latency_quantile(0.95)


def stats_to_dict(stats: ServeStats) -> dict:
    """JSON-ready mapping with stable key order (the ``/stats`` body)."""
    return {
        "requests": stats.requests,
        "errors": stats.errors,
        "batches": stats.batches,
        "faults_requested": stats.faults_requested,
        "verdicts_served": stats.verdicts_served,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "cache_hit_rate": stats.cache_hit_rate,
        "coalesce_ratio": stats.coalesce_ratio,
        "mean_batch_size": stats.mean_batch_size,
        "p50_latency_s": stats.p50_latency,
        "p95_latency_s": stats.p95_latency,
    }


def render_text(stats: ServeStats, *, title: str | None = None) -> str:
    """Human-readable stats block (lint-reporter style)."""
    payload = stats_to_dict(stats)
    lines: list[str] = []
    if title:
        lines.append(title)
    prefix = "  " if title else ""
    lines.append(f"{prefix}requests: {payload['requests']} "
                 f"({payload['errors']} error(s)), "
                 f"verdicts: {payload['verdicts_served']}")
    lines.append(f"{prefix}batches: {payload['batches']} "
                 f"(mean size {payload['mean_batch_size']:.1f}, "
                 f"coalesce ratio {payload['coalesce_ratio']:.2f})")
    lines.append(f"{prefix}cache: {payload['cache_hits']} hit(s) / "
                 f"{payload['cache_misses']} miss(es) "
                 f"(rate {payload['cache_hit_rate']:.2f})")
    lines.append(f"{prefix}latency: p50 {payload['p50_latency_s'] * 1e3:.2f} ms, "
                 f"p95 {payload['p95_latency_s'] * 1e3:.2f} ms")
    return "\n".join(lines)


def render_json(stats: ServeStats, *, indent: int = 2) -> str:
    """Machine-readable stats (stable ordering, ASCII-safe)."""
    return json.dumps(stats_to_dict(stats), indent=indent, sort_keys=False)
