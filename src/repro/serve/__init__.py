"""ATPG-as-a-service: warm engines, coalesced screens, cached verdicts.

The serving layer turns the batch-oriented ATPG stack into a long-lived
service:

* :mod:`repro.serve.pool` — bounded LRU pool of warm
  :class:`~repro.testgen.execution.TestExecutor`\\ s keyed by
  (macro, configuration);
* :mod:`repro.serve.cache` — content-addressed verdict store
  (BLAKE2b keys shared with dictionary sharding via
  :mod:`repro.hashing`), optionally journaled to disk;
* :mod:`repro.serve.frontdoor` — asyncio request coalescing into
  single batched family solves, plus the in-process
  :class:`ServingClient`;
* :mod:`repro.serve.server` — stdlib HTTP endpoint
  (``repro serve`` CLI subcommand);
* :mod:`repro.serve.metrics` — serving counters and latency quantiles
  (the package's only clock boundary).

The contract throughout: every served verdict is bitwise identical to
a cold :class:`~repro.testgen.execution.TestExecutor` run — pooling,
batching, coalescing and caching change wall-clock time only.
"""

from repro.serve.cache import CacheStats, VerdictCache, VerdictRecord
from repro.serve.frontdoor import (
    BatchingFrontDoor,
    FaultVerdict,
    ScreenRequest,
    ScreenResponse,
    ServingClient,
)
from repro.serve.metrics import ServeStats, render_json, render_text
from repro.serve.pool import EnginePool, PoolEntry, PoolStats
from repro.serve.server import ATPGServer

__all__ = [
    "ATPGServer",
    "BatchingFrontDoor",
    "CacheStats",
    "EnginePool",
    "FaultVerdict",
    "PoolEntry",
    "PoolStats",
    "ScreenRequest",
    "ScreenResponse",
    "ServeStats",
    "ServingClient",
    "VerdictCache",
    "VerdictRecord",
    "render_json",
    "render_text",
]
