"""Content-addressed verdict cache with optional JSON-lines spill.

A served verdict is a pure function of (netlist, configuration, fault,
stimulus vector, tolerance box) — the canonical-mode contract pinned by
the serving equivalence suite.  The cache therefore keys each
:class:`VerdictRecord` by :func:`repro.hashing.verdict_key` (the BLAKE2b
derivation shared with dictionary sharding) and may serve a hit bitwise
without touching an engine.

Persistence is an **append-only JSON-lines journal**: every store
appends one line, a restart replays the journal newest-line-wins into
the in-memory LRU.  Floats are serialized with ``repr`` semantics
(Python's ``json`` emits the shortest round-trip form), so a verdict
survives the disk trip bit-for-bit — the spill round-trip test pins
this.  Evictions do not rewrite the journal; it is a log, not a mirror
(compaction = delete the file).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro._log import get_logger
from repro.errors import ServeError
from repro.testgen.sensitivity import SensitivityReport

__all__ = ["CacheStats", "VerdictRecord", "VerdictCache"]

_LOG = get_logger("serve.cache")


@dataclass
class CacheStats:
    """Verdict-cache accounting.

    Attributes:
        hits / misses: lookup outcomes.
        stores: records inserted.
        evictions: records dropped at capacity.
        spill_writes: journal lines appended.
        spill_loads: records replayed from the journal at start-up.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    spill_writes: int = 0
    spill_loads: int = 0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Combine two accounts."""
        return CacheStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})


@dataclass(frozen=True)
class VerdictRecord:
    """One cached screening verdict (a flattened sensitivity report).

    Every float is stored exactly as screened; :meth:`to_report`
    rebuilds the :class:`SensitivityReport` bitwise.
    """

    fault_id: str
    value: float
    components: tuple[float, ...]
    deviations: tuple[float, ...]
    boxes: tuple[float, ...]
    params: tuple[float, ...]

    @property
    def detected(self) -> bool:
        """Detection verdict (``S_f < 0``)."""
        return self.value < 0.0

    @classmethod
    def from_report(cls, fault_id: str,
                    report: SensitivityReport) -> "VerdictRecord":
        """Flatten a sensitivity report for storage."""
        return cls(
            fault_id=fault_id,
            value=float(report.value),
            components=tuple(float(c) for c in report.components),
            deviations=tuple(float(d) for d in report.deviations),
            boxes=tuple(float(b) for b in report.boxes),
            params=tuple(float(p) for p in report.params))

    def to_report(self) -> SensitivityReport:
        """Rebuild the sensitivity report (bitwise)."""
        return SensitivityReport(
            value=self.value,
            components=np.array(self.components),
            deviations=np.array(self.deviations),
            boxes=np.array(self.boxes),
            params=np.array(self.params))

    def to_dict(self) -> dict:
        """JSON-ready mapping (stable key order)."""
        return {
            "fault_id": self.fault_id,
            "value": self.value,
            "components": list(self.components),
            "deviations": list(self.deviations),
            "boxes": list(self.boxes),
            "params": list(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VerdictRecord":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                fault_id=str(payload["fault_id"]),
                value=float(payload["value"]),
                components=tuple(float(c) for c in payload["components"]),
                deviations=tuple(float(d) for d in payload["deviations"]),
                boxes=tuple(float(b) for b in payload["boxes"]),
                params=tuple(float(p) for p in payload["params"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed verdict record: {exc}") from exc


class VerdictCache:
    """Bounded LRU of verdict records, optionally journaled to disk.

    Args:
        capacity: in-memory record bound (LRU eviction beyond it).
        spill_path: JSON-lines journal file.  When given, existing lines
            are replayed on construction (newest line wins) and every
            store appends one line, so the cache survives restarts.
    """

    def __init__(self, capacity: int = 4096,
                 spill_path: str | Path | None = None) -> None:
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.spill_path = Path(spill_path) if spill_path else None
        self.stats = CacheStats()
        self._records: OrderedDict[str, VerdictRecord] = OrderedDict()
        if self.spill_path is not None and self.spill_path.exists():
            self._load_spill()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> VerdictRecord | None:
        """Record under *key*, refreshing LRU recency; None on miss."""
        record = self._records.get(key)
        if record is None:
            self.stats.misses += 1
            return None
        self._records.move_to_end(key)
        self.stats.hits += 1
        return record

    def put(self, key: str, record: VerdictRecord) -> None:
        """Insert *record* (and journal it when spilling is on)."""
        known = key in self._records
        self._records[key] = record
        self._records.move_to_end(key)
        self.stats.stores += 1
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.stats.evictions += 1
        if self.spill_path is not None and not known:
            line = json.dumps({"key": key, "record": record.to_dict()},
                              sort_keys=False)
            with self.spill_path.open("a", encoding="utf-8") as sink:
                sink.write(line + "\n")
            self.stats.spill_writes += 1

    def _load_spill(self) -> None:
        """Replay the journal into the LRU (newest line wins)."""
        assert self.spill_path is not None
        with self.spill_path.open("r", encoding="utf-8") as source:
            for lineno, line in enumerate(source, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    key = str(payload["key"])
                    record = VerdictRecord.from_dict(payload["record"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ServeError) as exc:
                    raise ServeError(
                        f"corrupt verdict spill {self.spill_path} "
                        f"line {lineno}: {exc}") from exc
                self._records[key] = record
                self._records.move_to_end(key)
                self.stats.spill_loads += 1
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.stats.evictions += 1
        _LOG.info("replayed %d cached verdict(s) from %s",
                  self.stats.spill_loads, self.spill_path)
