"""Asyncio batching front door: coalesced canonical screening.

Concurrent screening requests that share a (macro, configuration,
stimulus vector) factorization are folded into **one** canonical
:meth:`TestExecutor.screen_faults` family solve: the first request
opens a group and arms a flush timer (``window`` seconds, via
``asyncio.sleep``-style waiting — no clock reads here); later arrivals
join the group; reaching ``max_batch`` unique faults flushes early.
One flush = one batched SMW screen of the union of requested faults,
served from the pooled engine's cached factorization when warm.

Correctness leans on two proven properties: canonical screens are
**batch-composition independent** (a fault's verdict is bitwise equal
whether screened alone or inside any union), and **history free**
(bitwise equal to a fresh executor's first screen).  So coalescing and
caching are pure wall-clock optimizations — every response is
bit-for-bit what a cold :class:`TestExecutor` would have produced.

The verdict cache gives single-flight semantics on top: a fault
screened for one waiter is a cache hit for every later one, within and
across flushes (and across restarts when the cache spills to disk).

Simulation is CPU-bound synchronous code, so flushes run on a
single-worker thread pool: the event loop stays responsive while at
most one engine solve runs at a time (engines are not thread-safe).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro._log import get_logger
from repro.errors import ServeError
from repro.faults.base import FaultModel
from repro.hashing import verdict_key
from repro.serve.cache import VerdictCache, VerdictRecord
from repro.serve.metrics import ServeStats
from repro.serve.pool import EnginePool, PoolEntry

__all__ = ["ScreenRequest", "FaultVerdict", "ScreenResponse",
           "BatchingFrontDoor", "ServingClient"]

_LOG = get_logger("serve.frontdoor")

#: Default coalescing window in seconds.
DEFAULT_WINDOW = 0.010
#: Default early-flush bound on unique faults per batch.
DEFAULT_MAX_BATCH = 256


@dataclass(frozen=True)
class ScreenRequest:
    """One screening request.

    Attributes:
        macro: registered macro name (see ``repro describe``).
        configuration: test-configuration name within the macro.
        fault_ids: fault ids to screen; ``None`` screens the whole
            dictionary.
        vector: test-parameter values; ``None`` uses the
            configuration's seed test point.  Values are clipped to the
            parameter bounds exactly like every executor entry point.
    """

    macro: str
    configuration: str
    fault_ids: tuple[str, ...] | None = None
    vector: tuple[float, ...] | None = None

    @classmethod
    def from_dict(cls, payload: dict) -> "ScreenRequest":
        """Parse the JSON wire form (unknown keys rejected)."""
        if not isinstance(payload, dict):
            raise ServeError(f"request must be a JSON object, "
                             f"got {type(payload).__name__}")
        unknown = set(payload) - {"macro", "configuration", "fault_ids",
                                  "vector"}
        if unknown:
            raise ServeError(f"unknown request field(s): {sorted(unknown)}")
        try:
            macro = str(payload["macro"])
            configuration = str(payload["configuration"])
        except KeyError as exc:
            raise ServeError(f"request needs field {exc}") from exc
        fault_ids = payload.get("fault_ids")
        if fault_ids is not None:
            fault_ids = tuple(str(fid) for fid in fault_ids)
        vector = payload.get("vector")
        if vector is not None:
            try:
                vector = tuple(float(v) for v in vector)
            except (TypeError, ValueError) as exc:
                raise ServeError(f"bad vector: {exc}") from exc
        return cls(macro=macro, configuration=configuration,
                   fault_ids=fault_ids, vector=vector)


@dataclass(frozen=True)
class FaultVerdict:
    """One fault's served verdict plus serving provenance."""

    record: VerdictRecord
    cached: bool
    key: str

    def to_dict(self) -> dict:
        """JSON wire form (record fields + provenance)."""
        payload = self.record.to_dict()
        payload["detected"] = self.record.detected
        payload["cached"] = self.cached
        payload["key"] = self.key
        return payload


@dataclass(frozen=True)
class ScreenResponse:
    """Response to one :class:`ScreenRequest` (input fault order)."""

    macro: str
    configuration: str
    vector: tuple[float, ...]
    boxes: tuple[float, ...]
    verdicts: tuple[FaultVerdict, ...]

    @property
    def n_detected(self) -> int:
        """Detected faults (``S_f < 0``) in this response."""
        return sum(1 for v in self.verdicts if v.record.detected)

    def to_dict(self) -> dict:
        """JSON wire form."""
        return {
            "macro": self.macro,
            "configuration": self.configuration,
            "vector": list(self.vector),
            "boxes": list(self.boxes),
            "n_detected": self.n_detected,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


@dataclass
class _Group:
    """Accumulating coalesced batch for one (macro, config, vector)."""

    entry: PoolEntry
    vector: tuple[float, ...]
    early: asyncio.Event = field(default_factory=asyncio.Event)
    waiters: list[tuple[tuple[FaultModel, ...], asyncio.Future]] = \
        field(default_factory=list)
    unique_ids: set = field(default_factory=set)


class BatchingFrontDoor:
    """Coalescing dispatcher over an engine pool and a verdict cache.

    Args:
        pool: warm engine pool (built lazily per (macro, config)).
        cache: content-addressed verdict store.
        stats: serving counters (a fresh :class:`ServeStats` otherwise).
        window: coalescing window in seconds — how long the first
            request of a group waits for company before flushing.
            ``0`` flushes immediately (batching within one request and
            caching still apply).
        max_batch: unique-fault bound that flushes a group early.
    """

    def __init__(self, pool: EnginePool, cache: VerdictCache,
                 stats: ServeStats | None = None, *,
                 window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH) -> None:
        if window < 0:
            raise ServeError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = pool
        self.cache = cache
        self.stats = stats if stats is not None else ServeStats()
        self.window = window
        self.max_batch = max_batch
        self._pending: dict[tuple, _Group] = {}
        self._solver_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-solver")

    def close(self) -> None:
        """Release the solver thread (idempotent)."""
        self._solver_thread.shutdown(wait=True)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def screen(self, request: ScreenRequest) -> ScreenResponse:
        """Serve one screening request (coalescing with concurrent ones)."""
        token = self.stats.timer()
        self.stats.requests += 1
        try:
            entry = self.pool.entry(request.macro, request.configuration)
            faults = entry.resolve_faults(request.fault_ids)
            if not faults:
                raise ServeError("request resolves to zero faults")
            vector = self._resolve_vector(entry, request.vector)
        except ServeError:
            self.stats.errors += 1
            raise
        self.stats.faults_requested += len(faults)

        key = (request.macro, request.configuration, vector)
        group = self._pending.get(key)
        if group is None:
            group = _Group(entry=entry, vector=vector)
            self._pending[key] = group
            asyncio.get_running_loop().create_task(
                self._flush_after_window(key, group))
        future = asyncio.get_running_loop().create_future()
        group.waiters.append((faults, future))
        group.unique_ids.update(f.fault_id for f in faults)
        if len(group.unique_ids) >= self.max_batch:
            group.early.set()

        verdicts_by_id, boxes = await future
        entry.requests_served += 1
        entry.verdicts_served += len(faults)
        self.stats.verdicts_served += len(faults)
        response = ScreenResponse(
            macro=request.macro,
            configuration=request.configuration,
            vector=vector,
            boxes=boxes,
            verdicts=tuple(verdicts_by_id[f.fault_id] for f in faults))
        self.stats.observe_latency(token)
        return response

    @staticmethod
    def _resolve_vector(entry: PoolEntry,
                        vector: tuple[float, ...] | None,
                        ) -> tuple[float, ...]:
        parameters = entry.executor.configuration.parameters
        if vector is None:
            vector = entry.executor.configuration.seed_test().values
        clipped = parameters.clip(list(vector))
        if len(clipped) != len(tuple(vector)):
            raise ServeError(
                f"vector has {len(tuple(vector))} value(s), configuration "
                f"{entry.configuration!r} takes {len(clipped)}")
        return tuple(float(v) for v in clipped)

    # ------------------------------------------------------------------
    # flush path
    # ------------------------------------------------------------------
    async def _flush_after_window(self, key: tuple, group: _Group) -> None:
        if self.window > 0:
            try:
                await asyncio.wait_for(group.early.wait(),
                                       timeout=self.window)
            except asyncio.TimeoutError:
                pass
        # From here the group is sealed: concurrent arrivals open a new
        # one (the event loop makes pop + snapshot atomic between
        # awaits).
        self._pending.pop(key, None)
        waiters = list(group.waiters)
        union: dict[str, FaultModel] = {}
        for faults, _ in waiters:
            for fault in faults:
                union.setdefault(fault.fault_id, fault)
        # Screen in dictionary order so the batch composition is a pure
        # function of the requested id *set*.
        index = {f.fault_id: i for i, f in enumerate(group.entry.faults)}
        ordered = tuple(sorted(union.values(),
                               key=lambda f: index.get(f.fault_id, -1)))
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(ordered))
        loop = asyncio.get_running_loop()
        try:
            verdicts, boxes, misses = await loop.run_in_executor(
                self._solver_thread, self._serve_batch,
                group.entry, ordered, group.vector)
        except Exception as exc:  # surfaced to every waiter
            for _, future in waiters:
                if not future.done():
                    future.set_exception(
                        exc if isinstance(exc, ServeError)
                        else ServeError(f"batch solve failed: {exc}"))
            return
        requested = sum(len(faults) for faults, _ in waiters)
        self.stats.cache_misses += misses
        self.stats.cache_hits += requested - misses
        for _, future in waiters:
            if not future.done():
                future.set_result((verdicts, boxes))

    def _serve_batch(self, entry: PoolEntry,
                     faults: tuple[FaultModel, ...],
                     vector: tuple[float, ...],
                     ) -> tuple[dict[str, FaultVerdict],
                                tuple[float, ...], int]:
        """Synchronous batch solve (runs on the solver thread).

        Cache lookups first; the misses run as one canonical screen and
        their records are stored, so every verdict is computed at most
        once per cache lifetime.  Returns (verdicts by fault id, boxes,
        miss count).
        """
        executor = entry.executor
        boxes = tuple(float(b) for b in
                      executor.boxes(list(vector), canonical=True))
        keys = {fault.fault_id: verdict_key(
            netlist=entry.netlist, configuration=entry.configuration,
            fault_id=fault.fault_id, vector=vector, boxes=boxes)
            for fault in faults}
        verdicts: dict[str, FaultVerdict] = {}
        misses: list[FaultModel] = []
        for fault in faults:
            record = self.cache.get(keys[fault.fault_id])
            if record is not None:
                verdicts[fault.fault_id] = FaultVerdict(
                    record=record, cached=True, key=keys[fault.fault_id])
            else:
                misses.append(fault)
        if misses:
            _LOG.info("screening %d/%d fault(s) of %s/%s (cache served %d)",
                      len(misses), len(faults), entry.macro,
                      entry.configuration, len(faults) - len(misses))
            reports = executor.screen_faults(misses, list(vector),
                                             canonical=True)
            for fault, report in zip(misses, reports):
                record = VerdictRecord.from_report(fault.fault_id, report)
                self.cache.put(keys[fault.fault_id], record)
                verdicts[fault.fault_id] = FaultVerdict(
                    record=record, cached=False,
                    key=keys[fault.fault_id])
        return verdicts, boxes, len(misses)


class ServingClient:
    """In-process client API over a :class:`BatchingFrontDoor`."""

    def __init__(self, frontdoor: BatchingFrontDoor) -> None:
        self.frontdoor = frontdoor

    async def screen(self, macro: str, configuration: str, *,
                     fault_ids=None, vector=None) -> ScreenResponse:
        """Screen faults of (macro, configuration) — see
        :class:`ScreenRequest` for argument semantics."""
        request = ScreenRequest(
            macro=macro, configuration=configuration,
            fault_ids=tuple(fault_ids) if fault_ids is not None else None,
            vector=tuple(float(v) for v in vector)
            if vector is not None else None)
        return await self.frontdoor.screen(request)

    @property
    def stats(self) -> ServeStats:
        """The front door's serving counters."""
        return self.frontdoor.stats
