"""Optimization result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["OptimizationResult"]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a minimization run.

    Attributes:
        x: best parameter vector found.
        fun: objective value at ``x``.
        nfev: number of objective evaluations spent.
        converged: True when the tolerance test passed; False when the
            run stopped on its evaluation budget or iteration cap (the
            result is still the best point seen).
        message: human-readable stop reason.
        history: objective value after each outer iteration (diagnostic).
    """

    x: np.ndarray
    fun: float
    nfev: int
    converged: bool
    message: str = ""
    history: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.atleast_1d(np.asarray(self.x,
                                                               float)))

    def __repr__(self) -> str:
        status = "converged" if self.converged else "budget/cap"
        return (f"OptimizationResult(x={self.x.tolist()}, "
                f"fun={self.fun:.6g}, nfev={self.nfev}, {status})")
