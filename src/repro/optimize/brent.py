"""Brent's method for bounded scalar minimization.

Implemented from R.P. Brent, *Algorithms for Minimization without
Derivatives* (1973), chapter 5 — the reference the paper cites for its
single-parameter test configurations ("Optimizations of single-parameter
test configurations are using Brent's method [7]", §3.3).  The algorithm
combines golden-section steps with safeguarded successive parabolic
interpolation; no derivatives, no bracketing phase (the parameter bounds
of a test configuration are the interval).

This file intentionally does not use :mod:`scipy.optimize`: the optimizer
is part of the reproduced system.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.budget import BudgetExhausted, CountedObjective
from repro.optimize.result import OptimizationResult

__all__ = ["brent_minimize"]

#: (3 - sqrt(5)) / 2, the golden-section step fraction.
_GOLDEN = 0.3819660112501051

#: Machine-epsilon-based safety used in the tolerance test.
_SQRT_EPS = float(np.sqrt(np.finfo(float).eps))


def brent_minimize(
    fn: Callable[[np.ndarray], float],
    lo: float,
    hi: float,
    xtol: float = 1e-4,
    max_evals: int = 40,
    seed: float | None = None,
) -> OptimizationResult:
    """Minimize a scalar function on ``[lo, hi]``.

    Args:
        fn: objective; receives a length-1 numpy array (uniform interface
            with the multi-parameter optimizers).
        lo / hi: interval bounds, ``lo < hi``.
        xtol: absolute convergence tolerance on the parameter (interpreted
            relative to the interval, see below).
        max_evals: hard evaluation budget; the incumbent is returned when
            it runs out.
        seed: optional start point inside the interval — the test
            configuration's seed parameter value.  Brent's initial point
            defaults to the golden-section point when omitted.

    Returns:
        :class:`OptimizationResult`; ``converged`` reflects the tolerance
        test, not budget exhaustion.
    """
    if not lo < hi:
        raise OptimizationError(f"need lo < hi, got [{lo}, {hi}]")
    if xtol <= 0.0:
        raise OptimizationError(f"xtol must be positive, got {xtol}")

    counted = CountedObjective(fn, max_evals)
    a, b = float(lo), float(hi)
    history: list[float] = []

    if seed is not None and not (lo <= seed <= hi):
        raise OptimizationError(
            f"seed {seed} outside interval [{lo}, {hi}]")

    x = (a + _GOLDEN * (b - a)) if seed is None else float(seed)
    # Keep the seed strictly interior so the parabolic machinery has room.
    span = b - a
    x = min(max(x, a + 1e-12 * span), b - 1e-12 * span)
    w = v = x
    d = e = 0.0

    converged = False
    message = "evaluation budget exhausted"
    try:
        fx = counted(np.array([x]))
        fw = fv = fx
        history.append(fx)
        while True:
            m = 0.5 * (a + b)
            tol = _SQRT_EPS * abs(x) + xtol
            tol2 = 2.0 * tol
            if abs(x - m) <= tol2 - 0.5 * (b - a):
                converged = True
                message = "xtol satisfied"
                break

            use_golden = True
            if abs(e) > tol:
                # Fit a parabola through (v, fv), (w, fw), (x, fx).
                r = (x - w) * (fx - fv)
                q = (x - v) * (fx - fw)
                p = (x - v) * q - (x - w) * r
                q = 2.0 * (q - r)
                if q > 0.0:
                    p = -p
                q = abs(q)
                e_prev = e
                e = d
                if (abs(p) < abs(0.5 * q * e_prev) and p > q * (a - x)
                        and p < q * (b - x)):
                    # Acceptable parabolic step.
                    d = p / q
                    u = x + d
                    if (u - a) < tol2 or (b - u) < tol2:
                        d = tol if x < m else -tol
                    use_golden = False
            if use_golden:
                e = (b - x) if x < m else (a - x)
                d = _GOLDEN * e

            u = x + (d if abs(d) >= tol else (tol if d > 0 else -tol))
            fu = counted(np.array([u]))
            history.append(min(history[-1], fu))

            if fu <= fx:
                if u < x:
                    b = x
                else:
                    a = x
                v, fv = w, fw
                w, fw = x, fx
                x, fx = u, fu
            else:
                if u < x:
                    a = u
                else:
                    b = u
                if fu <= fw or w == x:
                    v, fv = w, fw
                    w, fw = u, fu
                elif fu <= fv or v == x or v == w:
                    v, fv = u, fu
    except BudgetExhausted:
        if counted.best_x is None:
            # Nothing was evaluated: the exhaustion came from an *outer*
            # budget (e.g. Powell's total) before our first call went
            # through.  Propagate so the owner of that budget returns
            # its own incumbent.
            raise

    assert counted.best_x is not None, "objective never evaluated"
    return OptimizationResult(
        x=counted.best_x, fun=counted.best_f, nfev=counted.nfev,
        converged=converged, message=message, history=tuple(history))
