"""Derivative-free local optimizers (Brent, Powell) with hard budgets.

These are from-scratch implementations of the two methods the paper
cites — scipy.optimize is intentionally not used (the optimizers are part
of the reproduced system, and budget-capped best-effort behaviour on
noisy simulation-backed objectives is a first-class requirement here).
"""

from repro.optimize.brent import brent_minimize
from repro.optimize.budget import BudgetExhausted, CountedObjective
from repro.optimize.powell import powell_minimize
from repro.optimize.result import OptimizationResult

__all__ = [
    "brent_minimize",
    "powell_minimize",
    "OptimizationResult",
    "CountedObjective",
    "BudgetExhausted",
]
