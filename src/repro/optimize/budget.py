"""Evaluation budgets for simulation-backed objectives.

Every objective evaluation behind the ATPG flow is at least one circuit
simulation, so optimizers must be able to stop on a hard evaluation
budget and still return their best point.  :class:`CountedObjective`
wraps the raw objective, counts calls, tracks the incumbent and raises
:class:`BudgetExhausted` (internal control flow) when the budget is spent.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import OptimizationError

__all__ = ["BudgetExhausted", "CountedObjective"]


class BudgetExhausted(Exception):
    """Internal signal: the evaluation budget ran out.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it never
    escapes the optimizers, which catch it and return the incumbent.
    """


class CountedObjective:
    """Wraps ``f(x) -> float`` with counting and incumbent tracking."""

    def __init__(self, fn: Callable[[np.ndarray], float],
                 max_evals: int) -> None:
        if max_evals < 1:
            raise OptimizationError(
                f"max_evals must be >= 1, got {max_evals}")
        self._fn = fn
        self._max_evals = max_evals
        self.nfev = 0
        self.best_x: np.ndarray | None = None
        self.best_f = float("inf")

    def __call__(self, x: Sequence[float] | float) -> float:
        if self.nfev >= self._max_evals:
            raise BudgetExhausted
        self.nfev += 1
        x_arr = np.atleast_1d(np.asarray(x, float))
        value = float(self._fn(x_arr))
        if np.isnan(value):
            # A failed simulation is treated as a terrible objective value
            # instead of crashing the whole generation run.
            value = float("inf")
        if value < self.best_f:
            self.best_f = value
            self.best_x = x_arr.copy()
        return value

    @property
    def remaining(self) -> int:
        """Evaluations left in the budget."""
        return self._max_evals - self.nfev
