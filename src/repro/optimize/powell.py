"""Powell's direction-set method with Brent line searches, box-constrained.

The paper optimizes multi-parameter test configurations "by Powell's
method described in [8] (Acton, *Numerical Methods that Work*), in which
Brent's method is used to explore one-dimensional search-directions"
(§3.3).  This module follows that construction: a derivative-free
direction-set loop whose line minimizations call
:func:`repro.optimize.brent.brent_minimize` over the exact segment where
the search line intersects the parameter box.

Classic Powell direction replacement is included: after each sweep the
direction of largest decrease may be replaced by the overall displacement
direction when the standard acceptance test passes, which restores
conjugacy on smooth valleys without derivative information.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.brent import brent_minimize
from repro.optimize.budget import BudgetExhausted, CountedObjective
from repro.optimize.result import OptimizationResult

__all__ = ["powell_minimize"]


def _line_interval(x: np.ndarray, direction: np.ndarray,
                   bounds: np.ndarray) -> tuple[float, float]:
    """Step range [t_lo, t_hi] keeping ``x + t*direction`` inside the box."""
    t_lo, t_hi = -np.inf, np.inf
    for xi, di, (lo, hi) in zip(x, direction, bounds):
        if abs(di) < 1e-300:
            continue
        t1, t2 = (lo - xi) / di, (hi - xi) / di
        if t1 > t2:
            t1, t2 = t2, t1
        t_lo = max(t_lo, t1)
        t_hi = min(t_hi, t2)
    if not np.isfinite(t_lo) or not np.isfinite(t_hi) or t_hi <= t_lo:
        return 0.0, 0.0
    return float(t_lo), float(t_hi)


def powell_minimize(
    fn: Callable[[np.ndarray], float],
    x0: np.ndarray,
    bounds: np.ndarray,
    ftol: float = 1e-3,
    xtol_frac: float = 1e-3,
    max_iters: int = 6,
    max_evals: int = 80,
    line_evals: int = 10,
) -> OptimizationResult:
    """Minimize ``fn`` over a parameter box starting from *x0*.

    Args:
        fn: objective over a length-d numpy array.
        x0: start point (the configuration's seed parameter values);
            clipped into the box.
        bounds: (d, 2) lower/upper bounds.
        ftol: relative function-decrease convergence threshold per sweep.
        xtol_frac: line-search tolerance as a fraction of each
            direction's feasible step range.
        max_iters: maximum direction-set sweeps.
        max_evals: hard total evaluation budget.
        line_evals: evaluation budget per line minimization.

    Returns:
        :class:`OptimizationResult` with the best point seen.
    """
    bounds = np.atleast_2d(np.asarray(bounds, float))
    n = bounds.shape[0]
    if bounds.shape != (n, 2) or np.any(bounds[:, 0] >= bounds[:, 1]):
        raise OptimizationError(f"malformed bounds {bounds.tolist()}")
    x = np.atleast_1d(np.asarray(x0, float))
    if x.shape != (n,):
        raise OptimizationError(
            f"x0 shape {x.shape} does not match bounds ({n} parameters)")
    x = np.clip(x, bounds[:, 0], bounds[:, 1])

    counted = CountedObjective(fn, max_evals)
    directions = [np.eye(n)[i] for i in range(n)]
    history: list[float] = []
    converged = False
    message = "evaluation budget exhausted"

    try:
        f_current = counted(x)
        history.append(f_current)
        for _ in range(max_iters):
            x_sweep_start = x.copy()
            f_sweep_start = f_current
            biggest_drop = 0.0
            biggest_drop_index = 0

            for index, direction in enumerate(directions):
                t_lo, t_hi = _line_interval(x, direction, bounds)
                if t_hi - t_lo < 1e-15:
                    continue
                xtol = xtol_frac * (t_hi - t_lo)

                def line(t: np.ndarray, _x=x, _d=direction) -> float:
                    return counted(_x + float(t[0]) * _d)

                line_result = brent_minimize(
                    line, t_lo, t_hi, xtol=xtol,
                    max_evals=min(line_evals, max(counted.remaining, 1)),
                    seed=min(max(0.0, t_lo), t_hi))
                if line_result.fun < f_current:
                    drop = f_current - line_result.fun
                    if drop > biggest_drop:
                        biggest_drop = drop
                        biggest_drop_index = index
                    x = np.clip(x + float(line_result.x[0]) * direction,
                                bounds[:, 0], bounds[:, 1])
                    f_current = line_result.fun

            history.append(f_current)
            decrease = f_sweep_start - f_current
            if 2.0 * decrease <= ftol * (abs(f_sweep_start)
                                         + abs(f_current)) + 1e-12:
                converged = True
                message = "ftol satisfied"
                break

            # Powell direction replacement (Acton/NR acceptance test).
            displacement = x - x_sweep_start
            norm = float(np.linalg.norm(displacement))
            if norm > 1e-14:
                x_ext = np.clip(x + displacement, bounds[:, 0], bounds[:, 1])
                f_ext = counted(x_ext)
                if f_ext < f_sweep_start:
                    t1 = (2.0 * (f_sweep_start - 2.0 * f_current + f_ext)
                          * (f_sweep_start - f_current - biggest_drop) ** 2)
                    t2 = biggest_drop * (f_sweep_start - f_ext) ** 2
                    if t1 < t2:
                        directions.pop(biggest_drop_index)
                        directions.append(displacement / norm)
                if f_ext < f_current:
                    x, f_current = x_ext, f_ext
        else:
            message = "iteration cap reached"
    except BudgetExhausted:
        pass

    assert counted.best_x is not None, "objective never evaluated"
    best_x = np.clip(counted.best_x, bounds[:, 0], bounds[:, 1])
    return OptimizationResult(
        x=best_x, fun=counted.best_f, nfev=counted.nfev,
        converged=converged, message=message, history=tuple(history))
