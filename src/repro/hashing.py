"""Shared content-address key derivation (BLAKE2b).

Two subsystems address work by content rather than by position:

* dictionary **sharding** (:mod:`repro.testgen.sharding`) assigns each
  fault to a shard by hashing its stable ``fault_id``, so the partition
  never depends on enumeration order, worker count or hash
  randomization;
* the serving **verdict cache** (:mod:`repro.serve.cache`) stores each
  screened verdict under a digest of everything the verdict is a pure
  function of — the netlist, the configuration, the fault, the stimulus
  vector and the tolerance box.

Both derivations live here so they can never drift apart.  Everything
is BLAKE2b (``hashlib`` — unaffected by ``PYTHONHASHSEED``) over UTF-8
canonical strings.  Floats are serialized with :func:`repr`, which in
Python 3 is the shortest string that round-trips bitwise, so two
vectors hash equal *iff* they are bitwise equal.

Compatibility contract: :func:`stable_index` reproduces the exact
digests :func:`repro.testgen.sharding.shard_index` has emitted since
PR 5 (``digest_size=8``, big-endian, modulo) — the sharding determinism
suite pins this.
"""

from __future__ import annotations

from collections.abc import Iterable
from hashlib import blake2b

__all__ = [
    "FIELD_SEPARATOR",
    "content_digest",
    "float_token",
    "floats_token",
    "netlist_digest",
    "stable_digest",
    "stable_index",
    "verdict_key",
]

#: ASCII unit separator — joins key fields unambiguously (never appears
#: in identifiers, netlist cards or ``repr`` of a float).
FIELD_SEPARATOR = "\x1f"


def stable_digest(text: str, *, digest_size: int = 8) -> bytes:
    """BLAKE2b digest of one UTF-8 string (process/seed independent)."""
    return blake2b(text.encode("utf-8"), digest_size=digest_size).digest()


def stable_index(text: str, n: int) -> int:
    """Deterministic bucket of *text* among ``n`` buckets.

    This is the PR 5 shard assignment: ``digest_size=8`` BLAKE2b of the
    string, big-endian integer, modulo ``n``.  Stable across processes,
    machines and Python hash seeds.
    """
    if n < 1:
        raise ValueError(f"bucket count must be >= 1, got {n}")
    return int.from_bytes(stable_digest(text), "big") % n


def float_token(value: float) -> str:
    """Canonical token for one float (``repr`` round-trips bitwise)."""
    return repr(float(value))


def floats_token(values: Iterable[float]) -> str:
    """Canonical comma-joined token for a float sequence."""
    return ",".join(float_token(v) for v in values)


def content_digest(fields: Iterable[str], *, digest_size: int = 16) -> str:
    """Hex digest of several string fields, separator-joined.

    The unit separator keeps field boundaries unambiguous: ``("ab",
    "c")`` and ``("a", "bc")`` hash differently.
    """
    payload = FIELD_SEPARATOR.join(fields)
    return blake2b(payload.encode("utf-8"),
                   digest_size=digest_size).hexdigest()


def netlist_digest(netlist: str) -> str:
    """Content address of a serialized netlist (see ``Circuit.to_netlist``)."""
    return content_digest(("netlist", netlist))


def verdict_key(*, netlist: str, configuration: str, fault_id: str,
                vector: Iterable[float], boxes: Iterable[float]) -> str:
    """Content address of one screening verdict.

    A screened verdict is a pure function of exactly these inputs (the
    canonical-mode contract proven by the serving equivalence suite):
    the nominal netlist digest, the test-configuration name (name-based
    identity, as in the executor caches), the fault id, the clipped
    stimulus vector and the tolerance box half-widths.  Anything equal
    under this key may be served from cache bitwise.

    Args:
        netlist: digest from :func:`netlist_digest` (or any stable
            content address of the nominal circuit).
        configuration: test-configuration name.
        fault_id: stable fault identifier.
        vector: clipped test-parameter values.
        boxes: tolerance box half-widths (spread + equipment).
    """
    return content_digest((
        "verdict",
        netlist,
        configuration,
        fault_id,
        floats_token(vector),
        floats_token(boxes),
    ))
