"""Test-equipment accuracy model.

The paper extends the classic tolerance-box concept by folding in "the
accuracy specifications of test equipment, as it would be useful to
construct an envelope which boxes in an area where fault-detection can not
be guaranteed" (§2.2).  An accuracy specification here follows datasheet
convention: a reading-proportional term plus an absolute offset/floor,

    error_bound(reading) = offset + relative * |reading|

keyed by *measurement kind* (``"voltage"``, ``"current"``, ``"thd"``, ...),
so one tester model serves every test configuration of a macro.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ToleranceError

__all__ = ["AccuracySpec", "EquipmentSpec", "DEFAULT_EQUIPMENT"]


@dataclass(frozen=True)
class AccuracySpec:
    """Gain+offset accuracy of one measurement kind.

    Attributes:
        offset: absolute error floor, in the unit of the measurement.
        relative: fraction-of-reading error term.
    """

    offset: float = 0.0
    relative: float = 0.0

    def __post_init__(self) -> None:
        if self.offset < 0.0 or self.relative < 0.0:
            raise ToleranceError(
                f"accuracy terms must be non-negative "
                f"(offset={self.offset}, relative={self.relative})")
        if self.offset == 0.0 and self.relative == 0.0:
            raise ToleranceError(
                "an exact instrument (offset=relative=0) is not physical; "
                "specify at least a floor")

    def error_bound(self, reading: float) -> float:
        """Worst-case measurement error magnitude at *reading*."""
        return self.offset + self.relative * abs(reading)


@dataclass(frozen=True)
class EquipmentSpec:
    """Tester accuracy per measurement kind, with a defensive default.

    Attributes:
        accuracies: mapping from measurement kind to its accuracy.
        default: accuracy used for kinds not in the mapping.
    """

    accuracies: Mapping[str, AccuracySpec] = field(default_factory=dict)
    default: AccuracySpec = field(
        default_factory=lambda: AccuracySpec(offset=1e-3, relative=1e-3))

    def __post_init__(self) -> None:
        # Defensive copy; treated as immutable by convention (and kept a
        # plain dict so EquipmentSpec instances pickle cleanly into the
        # worker processes of parallel generation runs).
        object.__setattr__(self, "accuracies", dict(self.accuracies))

    def accuracy(self, kind: str) -> AccuracySpec:
        """Accuracy spec for a measurement *kind*."""
        return self.accuracies.get(kind, self.default)

    def error_bound(self, kind: str, reading: float) -> float:
        """Worst-case error magnitude of a *kind* measurement at *reading*."""
        return self.accuracy(kind).error_bound(reading)


#: A representative mid-90s mixed-signal production tester:
#: - DC voltmeter: 1 mV floor + 0.1 % of reading
#: - DC ammeter: 100 nA floor + 0.2 % of reading
#: - THD analyzer: 0.05 percentage-point floor + 2 % of reading
#: - sampled-waveform deviations: 2 mV floor + 0.5 % of reading
#: - AC gain (network option): 0.1 dB floor + 0.5 % of reading [dB]
DEFAULT_EQUIPMENT = EquipmentSpec(
    accuracies={
        "voltage": AccuracySpec(offset=1e-3, relative=1e-3),
        "current": AccuracySpec(offset=100e-9, relative=2e-3),
        "thd": AccuracySpec(offset=0.05, relative=0.02),
        "voltage_sample": AccuracySpec(offset=2e-3, relative=5e-3),
        "gain_db": AccuracySpec(offset=0.1, relative=5e-3),
    },
    default=AccuracySpec(offset=1e-3, relative=1e-3),
)
