"""Process-variation model: global (lot) skew plus local mismatch.

"For the experiment with the IV-converter global and local [deviations
have been taken into account]" (paper §3.4, sentence truncated in the
scan).  We model exactly that two-level structure:

* **global** variations shift a parameter identically in every device of a
  sampled circuit (lot-to-lot / wafer-level skew);
* **mismatch** variations add an independent per-device term
  (local, Pelgrom-style).

Sampling a :class:`ProcessVariation` against a circuit yields a new
circuit whose resistors, capacitors and MOSFET model cards are perturbed.
All randomness flows through an explicit ``numpy.random.Generator`` so
tolerance-box calibration is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.errors import ToleranceError

__all__ = ["Spread", "ProcessVariation", "ProcessSampleBatch",
           "DEFAULT_PROCESS"]


@dataclass(frozen=True)
class Spread:
    """One parameter's variability.

    Attributes:
        global_sigma: standard deviation of the lot-level component.
        mismatch_sigma: standard deviation of the per-device component.
        relative: if True the sigmas are fractions of the nominal value,
            otherwise absolute quantities in the parameter's unit.
    """

    global_sigma: float = 0.0
    mismatch_sigma: float = 0.0
    relative: bool = True

    def __post_init__(self) -> None:
        if self.global_sigma < 0.0 or self.mismatch_sigma < 0.0:
            raise ToleranceError("spread sigmas must be non-negative")

    def perturb(self, nominal: float, global_draw: float,
                mismatch_draw: float) -> float:
        """Apply the two normalized draws (N(0,1)) to a nominal value."""
        shift = (self.global_sigma * global_draw
                 + self.mismatch_sigma * mismatch_draw)
        if self.relative:
            return nominal * (1.0 + shift)
        return nominal + shift


@dataclass(frozen=True)
class ProcessVariation:
    """Technology spread specification for sampling circuit variants.

    Attributes:
        mos_vto: threshold-voltage spread [V], absolute.
        mos_kp: transconductance-parameter spread, relative.
        resistor: sheet-resistance spread, relative.
        capacitor: capacitance spread, relative.
        clip_sigma: normalized draws are clipped to +-clip_sigma to keep
            pathological tails out of box calibration.
    """

    mos_vto: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.030, mismatch_sigma=0.005, relative=False))
    mos_kp: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.05, mismatch_sigma=0.01, relative=True))
    resistor: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.05, mismatch_sigma=0.005, relative=True))
    capacitor: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.05, mismatch_sigma=0.005, relative=True))
    clip_sigma: float = 3.0

    def _draw(self, rng: np.random.Generator) -> float:
        return float(np.clip(rng.standard_normal(), -self.clip_sigma,
                             self.clip_sigma))

    def sample_batch(self, circuit: Circuit, rng: np.random.Generator,
                     n_samples: int) -> "ProcessSampleBatch":
        """Draw *n_samples* circuit variants as one vectorized batch.

        The batch consumes the generator in **exactly** the order
        ``n_samples`` sequential :meth:`sample` calls would (per sample:
        the six global draws, then one mismatch draw per resistor and
        capacitor and two per MOSFET, in circuit iteration order), and
        every perturbed value is computed with the same elementwise
        arithmetic — so ``batch.circuit(i)`` is bitwise identical to the
        ``i``-th :meth:`sample` result from the same generator state.
        That equivalence is what pins the vectorized Monte Carlo
        screening path to the scalar reference path.
        """
        if n_samples < 1:
            raise ToleranceError(
                f"sample batch needs n_samples >= 1, got {n_samples}")
        labels = ["global:mos_vto:nmos", "global:mos_vto:pmos",
                  "global:mos_kp:nmos", "global:mos_kp:pmos",
                  "global:resistor", "global:capacitor"]
        elements = list(circuit)
        for element in elements:
            if isinstance(element, Resistor):
                labels.append(f"mismatch:{element.name}:resistance")
            elif isinstance(element, Capacitor):
                labels.append(f"mismatch:{element.name}:capacitance")
            elif isinstance(element, Mosfet):
                labels.append(f"mismatch:{element.name}:vto")
                labels.append(f"mismatch:{element.name}:kp")
        # One row per sample, columns in draw order: reshaping the flat
        # stream row-major reproduces the per-sample sequential order.
        draws = np.clip(
            rng.standard_normal((n_samples, len(labels))),
            -self.clip_sigma, self.clip_sigma)

        res_names: list[str] = []
        res_nom: list[float] = []
        res_cols: list[np.ndarray] = []
        cap_names: list[str] = []
        cap_nom: list[float] = []
        cap_cols: list[np.ndarray] = []
        mos_names: list[str] = []
        mos_vto_nom: list[float] = []
        mos_kp_nom: list[float] = []
        mos_vto_cols: list[np.ndarray] = []
        mos_kp_cols: list[np.ndarray] = []

        col = 6
        g_vto = {"nmos": draws[:, 0], "pmos": draws[:, 1]}
        g_kp = {"nmos": draws[:, 2], "pmos": draws[:, 3]}
        g_res = draws[:, 4]
        g_cap = draws[:, 5]
        for element in elements:
            if isinstance(element, Resistor):
                new_r = self.resistor.perturb(
                    element.resistance, g_res, draws[:, col])
                res_names.append(element.name)
                res_nom.append(element.resistance)
                res_cols.append(np.maximum(new_r, 1e-3))
                col += 1
            elif isinstance(element, Capacitor):
                new_c = self.capacitor.perturb(
                    element.capacitance, g_cap, draws[:, col])
                cap_names.append(element.name)
                cap_nom.append(element.capacitance)
                cap_cols.append(np.maximum(new_c, 1e-18))
                col += 1
            elif isinstance(element, Mosfet):
                kind = element.params.kind
                vto_mag = abs(element.params.vto)
                new_vto_mag = self.mos_vto.perturb(
                    vto_mag, g_vto[kind], draws[:, col])
                new_vto = np.copysign(np.maximum(new_vto_mag, 1e-3),
                                      element.params.vto)
                new_kp = np.maximum(self.mos_kp.perturb(
                    element.params.kp, g_kp[kind], draws[:, col + 1]), 1e-9)
                mos_names.append(element.name)
                mos_vto_nom.append(element.params.vto)
                mos_kp_nom.append(element.params.kp)
                mos_vto_cols.append(new_vto)
                mos_kp_cols.append(new_kp)
                col += 2

        def _stack(cols: list[np.ndarray]) -> np.ndarray:
            if not cols:
                return np.zeros((n_samples, 0))
            return np.stack(cols, axis=1)

        return ProcessSampleBatch(
            variation=self, nominal=circuit, n_samples=n_samples,
            draws=draws, param_labels=tuple(labels),
            resistor_names=tuple(res_names),
            resistor_nominals=np.array(res_nom, dtype=float),
            resistances=_stack(res_cols),
            capacitor_names=tuple(cap_names),
            capacitor_nominals=np.array(cap_nom, dtype=float),
            capacitances=_stack(cap_cols),
            mosfet_names=tuple(mos_names),
            mos_vto_nominals=np.array(mos_vto_nom, dtype=float),
            mos_kp_nominals=np.array(mos_kp_nom, dtype=float),
            mos_vto=_stack(mos_vto_cols),
            mos_kp=_stack(mos_kp_cols))

    def sample(self, circuit: Circuit,
               rng: np.random.Generator) -> Circuit:
        """Return a perturbed variant of *circuit*.

        Global draws are taken once per parameter family (separately per
        MOS polarity, since NMOS and PMOS process corners move
        independently); mismatch draws are per element.
        """
        g_vto = {"nmos": self._draw(rng), "pmos": self._draw(rng)}
        g_kp = {"nmos": self._draw(rng), "pmos": self._draw(rng)}
        g_res = self._draw(rng)
        g_cap = self._draw(rng)

        variant = circuit.copy(name=f"{circuit.name}~mc")
        for element in circuit:
            if isinstance(element, Resistor):
                new_r = self.resistor.perturb(
                    element.resistance, g_res, self._draw(rng))
                variant = variant.replace_element(
                    Resistor(element.name, element.n1, element.n2,
                             max(new_r, 1e-3)))
            elif isinstance(element, Capacitor):
                new_c = self.capacitor.perturb(
                    element.capacitance, g_cap, self._draw(rng))
                variant = variant.replace_element(
                    Capacitor(element.name, element.n1, element.n2,
                              max(new_c, 1e-18)))
            elif isinstance(element, Mosfet):
                kind = element.params.kind
                # VTO moves away from zero for both polarities when the
                # draw is positive: perturb magnitude, keep sign.
                vto_mag = abs(element.params.vto)
                new_vto_mag = self.mos_vto.perturb(
                    vto_mag, g_vto[kind], self._draw(rng))
                new_vto = float(np.copysign(max(new_vto_mag, 1e-3),
                                            element.params.vto))
                new_kp = max(self.mos_kp.perturb(
                    element.params.kp, g_kp[kind], self._draw(rng)), 1e-9)
                params = element.params.scaled(vto=new_vto, kp=new_kp)
                variant = variant.replace_element(
                    Mosfet(element.name, element.d, element.g, element.s,
                           element.b, params, element.w, element.l,
                           element.m))
        return variant


@dataclass(frozen=True)
class ProcessSampleBatch:
    """A seeded batch of process samples in vector form.

    Built by :meth:`ProcessVariation.sample_batch`.  The normalized draw
    matrix (``draws``) and the derived per-element parameter arrays are
    row-per-sample; ``circuit(i)`` materializes row *i* as a netlist for
    the scalar reference path (bitwise identical to what
    :meth:`ProcessVariation.sample` would have produced from the same
    generator state).

    Attributes:
        variation: the spread specification the batch was drawn from.
        nominal: the unperturbed circuit.
        n_samples: number of process samples (rows).
        draws: ``(n_samples, n_params)`` clipped N(0,1) draw matrix.
        param_labels: one label per draw column
            (``"global:..."`` / ``"mismatch:<element>:<param>"``).
        resistor_names / capacitor_names / mosfet_names: perturbed
            element names, in circuit iteration order.
        resistor_nominals / capacitor_nominals: nominal values per name.
        resistances / capacitances: ``(n_samples, n_elements)`` perturbed
            values (floored exactly like the scalar path).
        mos_vto_nominals / mos_kp_nominals: nominal model-card values.
        mos_vto / mos_kp: ``(n_samples, n_mosfets)`` perturbed values.
    """

    variation: ProcessVariation
    nominal: Circuit
    n_samples: int
    draws: np.ndarray
    param_labels: tuple[str, ...]
    resistor_names: tuple[str, ...]
    resistor_nominals: np.ndarray
    resistances: np.ndarray
    capacitor_names: tuple[str, ...]
    capacitor_nominals: np.ndarray
    capacitances: np.ndarray
    mosfet_names: tuple[str, ...]
    mos_vto_nominals: np.ndarray
    mos_kp_nominals: np.ndarray
    mos_vto: np.ndarray
    mos_kp: np.ndarray

    @property
    def n_params(self) -> int:
        """Number of draw columns per sample."""
        return self.draws.shape[1]

    def circuit(self, i: int) -> Circuit:
        """Materialize sample *i* as a perturbed circuit variant."""
        if not 0 <= i < self.n_samples:
            raise ToleranceError(
                f"sample index {i} outside batch of {self.n_samples}")
        variant = self.nominal.copy(name=f"{self.nominal.name}~mc")
        ri = ci = mi = 0
        for element in self.nominal:
            if isinstance(element, Resistor):
                variant = variant.replace_element(
                    Resistor(element.name, element.n1, element.n2,
                             float(self.resistances[i, ri])))
                ri += 1
            elif isinstance(element, Capacitor):
                variant = variant.replace_element(
                    Capacitor(element.name, element.n1, element.n2,
                              float(self.capacitances[i, ci])))
                ci += 1
            elif isinstance(element, Mosfet):
                params = element.params.scaled(
                    vto=float(self.mos_vto[i, mi]),
                    kp=float(self.mos_kp[i, mi]))
                variant = variant.replace_element(
                    Mosfet(element.name, element.d, element.g, element.s,
                           element.b, params, element.w, element.l,
                           element.m))
                mi += 1
        return variant


#: Default spread used by the macros in this repository.
DEFAULT_PROCESS = ProcessVariation()
