"""Process-variation model: global (lot) skew plus local mismatch.

"For the experiment with the IV-converter global and local [deviations
have been taken into account]" (paper §3.4, sentence truncated in the
scan).  We model exactly that two-level structure:

* **global** variations shift a parameter identically in every device of a
  sampled circuit (lot-to-lot / wafer-level skew);
* **mismatch** variations add an independent per-device term
  (local, Pelgrom-style).

Sampling a :class:`ProcessVariation` against a circuit yields a new
circuit whose resistors, capacitors and MOSFET model cards are perturbed.
All randomness flows through an explicit ``numpy.random.Generator`` so
tolerance-box calibration is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.errors import ToleranceError

__all__ = ["Spread", "ProcessVariation", "DEFAULT_PROCESS"]


@dataclass(frozen=True)
class Spread:
    """One parameter's variability.

    Attributes:
        global_sigma: standard deviation of the lot-level component.
        mismatch_sigma: standard deviation of the per-device component.
        relative: if True the sigmas are fractions of the nominal value,
            otherwise absolute quantities in the parameter's unit.
    """

    global_sigma: float = 0.0
    mismatch_sigma: float = 0.0
    relative: bool = True

    def __post_init__(self) -> None:
        if self.global_sigma < 0.0 or self.mismatch_sigma < 0.0:
            raise ToleranceError("spread sigmas must be non-negative")

    def perturb(self, nominal: float, global_draw: float,
                mismatch_draw: float) -> float:
        """Apply the two normalized draws (N(0,1)) to a nominal value."""
        shift = (self.global_sigma * global_draw
                 + self.mismatch_sigma * mismatch_draw)
        if self.relative:
            return nominal * (1.0 + shift)
        return nominal + shift


@dataclass(frozen=True)
class ProcessVariation:
    """Technology spread specification for sampling circuit variants.

    Attributes:
        mos_vto: threshold-voltage spread [V], absolute.
        mos_kp: transconductance-parameter spread, relative.
        resistor: sheet-resistance spread, relative.
        capacitor: capacitance spread, relative.
        clip_sigma: normalized draws are clipped to +-clip_sigma to keep
            pathological tails out of box calibration.
    """

    mos_vto: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.030, mismatch_sigma=0.005, relative=False))
    mos_kp: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.05, mismatch_sigma=0.01, relative=True))
    resistor: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.05, mismatch_sigma=0.005, relative=True))
    capacitor: Spread = field(default_factory=lambda: Spread(
        global_sigma=0.05, mismatch_sigma=0.005, relative=True))
    clip_sigma: float = 3.0

    def _draw(self, rng: np.random.Generator) -> float:
        return float(np.clip(rng.standard_normal(), -self.clip_sigma,
                             self.clip_sigma))

    def sample(self, circuit: Circuit,
               rng: np.random.Generator) -> Circuit:
        """Return a perturbed variant of *circuit*.

        Global draws are taken once per parameter family (separately per
        MOS polarity, since NMOS and PMOS process corners move
        independently); mismatch draws are per element.
        """
        g_vto = {"nmos": self._draw(rng), "pmos": self._draw(rng)}
        g_kp = {"nmos": self._draw(rng), "pmos": self._draw(rng)}
        g_res = self._draw(rng)
        g_cap = self._draw(rng)

        variant = circuit.copy(name=f"{circuit.name}~mc")
        for element in circuit:
            if isinstance(element, Resistor):
                new_r = self.resistor.perturb(
                    element.resistance, g_res, self._draw(rng))
                variant = variant.replace_element(
                    Resistor(element.name, element.n1, element.n2,
                             max(new_r, 1e-3)))
            elif isinstance(element, Capacitor):
                new_c = self.capacitor.perturb(
                    element.capacitance, g_cap, self._draw(rng))
                variant = variant.replace_element(
                    Capacitor(element.name, element.n1, element.n2,
                              max(new_c, 1e-18)))
            elif isinstance(element, Mosfet):
                kind = element.params.kind
                # VTO moves away from zero for both polarities when the
                # draw is positive: perturb magnitude, keep sign.
                vto_mag = abs(element.params.vto)
                new_vto_mag = self.mos_vto.perturb(
                    vto_mag, g_vto[kind], self._draw(rng))
                new_vto = float(np.copysign(max(new_vto_mag, 1e-3),
                                            element.params.vto))
                new_kp = max(self.mos_kp.perturb(
                    element.params.kp, g_kp[kind], self._draw(rng)), 1e-9)
                params = element.params.scaled(vto=new_vto, kp=new_kp)
                variant = variant.replace_element(
                    Mosfet(element.name, element.d, element.g, element.s,
                           element.b, params, element.w, element.l,
                           element.m))
        return variant


#: Default spread used by the macros in this repository.
DEFAULT_PROCESS = ProcessVariation()
