"""Monte-Carlo calibration of box functions.

For every point of a coarse grid over a configuration's parameter box, the
calibrator simulates the *nominal* circuit and ``n_samples`` process-
perturbed variants, records the worst absolute deviation per return value
(inflated by a safety margin), and fits an
:class:`~repro.tolerance.box.InterpolatedBoxFunction` through the grid.

This mirrors the paper's precomputed "box-functions ... estimating the
(single) tolerance-box value given a test parameter value set" (§3.4):
calibration is done once per (macro, configuration) and cached on disk,
because it is by far the most simulation-hungry preparatory step.

The calibrator is deliberately decoupled from :mod:`repro.testgen`: it
receives a plain ``evaluate(circuit, params) -> return_values`` callable,
so the tolerance layer stays below the test-generation layer.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Sequence
from pathlib import Path

import numpy as np

from repro._log import get_logger
from repro.circuit.netlist import Circuit
from repro.errors import ToleranceError
from repro.tolerance.box import InterpolatedBoxFunction
from repro.tolerance.process import ProcessVariation

__all__ = ["calibrate_box_function", "grid_points"]

_LOG = get_logger("tolerance.calibrate")

#: Multiplier on the observed worst-case deviation ("safely boxes in").
SAFETY_MARGIN = 1.25

#: Relative floor so a zero-deviation grid point still yields a usable box.
_RELATIVE_FLOOR = 1e-6


def grid_points(bounds: np.ndarray, points_per_axis: int) -> np.ndarray:
    """Full-factorial grid over a parameter box.

    Args:
        bounds: (d, 2) lower/upper bounds per parameter.
        points_per_axis: grid resolution per axis (>= 2).

    Returns:
        (points_per_axis**d, d) array of parameter points.
    """
    bounds = np.atleast_2d(np.asarray(bounds, float))
    if points_per_axis < 2:
        raise ToleranceError("need at least 2 grid points per axis")
    axes = [np.linspace(low, high, points_per_axis)
            for low, high in bounds]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def _cache_key(tag: str, bounds: np.ndarray, points_per_axis: int,
               n_samples: int, seed: int) -> str:
    payload = json.dumps({
        "tag": tag,
        "bounds": np.asarray(bounds, float).tolist(),
        "points_per_axis": points_per_axis,
        "n_samples": n_samples,
        "seed": seed,
        "safety": SAFETY_MARGIN,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def calibrate_box_function(
    evaluate: Callable[[Circuit, Sequence[float]], np.ndarray],
    nominal_circuit: Circuit,
    variation: ProcessVariation,
    bounds: np.ndarray,
    tag: str,
    points_per_axis: int = 3,
    n_samples: int = 16,
    seed: int = 20250610,
    cache_dir: Path | str | None = None,
) -> InterpolatedBoxFunction:
    """Calibrate (or load from cache) a box function for one configuration.

    Args:
        evaluate: simulates one circuit at one parameter point and
            returns the configuration's return values.
        nominal_circuit: the fault-free macro circuit.
        variation: process-spread specification to sample from.
        bounds: (d, 2) parameter bounds of the configuration.
        tag: unique cache tag, conventionally
            ``"<macro>/<configuration>"``.
        points_per_axis: calibration grid resolution.
        n_samples: Monte-Carlo variants per grid point.
        seed: RNG seed (cache key component; calibration is deterministic).
        cache_dir: directory for the JSON cache; ``None`` disables caching.

    Returns:
        An interpolating box function over the calibrated grid.
    """
    bounds = np.atleast_2d(np.asarray(bounds, float))
    key = _cache_key(tag, bounds, points_per_axis, n_samples, seed)
    cache_path: Path | None = None
    if cache_dir is not None:
        safe_tag = tag.replace("/", "_").replace(":", "_")
        cache_path = Path(cache_dir) / f"box_{safe_tag}_{key}.json"
        if cache_path.exists():
            data = json.loads(cache_path.read_text())
            _LOG.debug("box cache hit for %s (%s)", tag, cache_path.name)
            return InterpolatedBoxFunction(
                np.array(data["grid"]), np.array(data["half_widths"]),
                bounds)

    rng = np.random.default_rng(seed)
    grid = grid_points(bounds, points_per_axis)

    # Sample the circuit variants once and reuse them across grid points:
    # the box should reflect the *same* population of process corners at
    # every parameter point, and compiling/sampling fewer circuits is
    # also substantially cheaper.
    variants = [variation.sample(nominal_circuit, rng)
                for _ in range(n_samples)]

    half_rows: list[np.ndarray] = []
    for point in grid:
        nominal = np.atleast_1d(np.asarray(
            evaluate(nominal_circuit, point), float))
        worst = np.zeros_like(nominal)
        for variant in variants:
            response = np.atleast_1d(np.asarray(
                evaluate(variant, point), float))
            worst = np.maximum(worst, np.abs(response - nominal))
        floor = _RELATIVE_FLOOR * np.maximum(np.abs(nominal), 1.0)
        half_rows.append(np.maximum(SAFETY_MARGIN * worst, floor))
        _LOG.debug("calibrated %s at %s: %s", tag, point.tolist(),
                   half_rows[-1].tolist())

    half_widths = np.vstack(half_rows)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(json.dumps({
            "tag": tag,
            "grid": grid.tolist(),
            "half_widths": half_widths.tolist(),
            "n_samples": n_samples,
            "seed": seed,
        }, indent=1))
        _LOG.info("calibrated box for %s (%d grid points, %d samples) -> %s",
                  tag, len(grid), n_samples, cache_path.name)
    return InterpolatedBoxFunction(grid, half_widths, bounds)
