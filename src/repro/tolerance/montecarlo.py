"""Vectorized Monte Carlo tolerance screening.

The paper's tolerance boxes (Fig. 5) are calibrated against process
spread one sample at a time; every fault verdict that must *survive*
process spread therefore multiplies the whole dictionary cost by the
sample count.  This module removes that multiplier: each process sample
is a small-rank perturbation of the already-factorized nominal system —
resistor spread is exactly a per-branch conductance delta, MOSFET
``vto``/``kp`` spread enters through per-column model-card overrides —
so all (sample x fault) pairs of an overlay family are screened by
:class:`repro.analysis.batched.MonteCarloOverlaySolver` against **one**
LU factorization per (overlay base, stimulus) pair.

Semantics, per process sample ``s`` and fault ``f``:

* ``golden``          — fault-free reading at the *nominal* process point;
* ``dev_free(s)``     — fault-free reading of sample ``s`` minus golden:
  the empirical process spread of the measurement;
* ``box``             — ``SAFETY_MARGIN * max_s |dev_free(s)|`` (floored)
  plus twice the equipment error at the golden reading scale, i.e. the
  empirical analog of the calibrated Fig. 5 box;
* ``margin(s, f)``    — ``min_j (1 - |dev(s,f)_j| / box_j)``; the fault is
  detected in sample ``s`` iff the margin is negative;
* ``P(detect | f)``   — fraction of samples in which ``f`` is detected.

Statistical correctness is pinned the same way batched fault screening
is: any vectorized margin closer than ``confirm_margin`` to the
detection threshold (and every column the batched solver could not
certify) is recomputed on the scalar one-sample-at-a-time reference path
(:func:`_scalar_raw`), so a detection verdict can never hinge on
solver-tolerance-level differences between the two paths.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

import numpy as np

from repro._log import get_logger
from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.analysis.batched import MonteCarloOverlaySolver
from repro.analysis.mna import CompiledCircuit
from repro.analysis.newton import newton_solve, robust_solve
from repro.circuit.elements import Resistor
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ToleranceError
from repro.faults.base import FaultModel
from repro.tolerance.box import ToleranceBox
from repro.tolerance.calibrate import SAFETY_MARGIN, _RELATIVE_FLOOR
from repro.tolerance.process import (
    DEFAULT_PROCESS,
    ProcessSampleBatch,
    ProcessVariation,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testgen.configuration import TestConfiguration

__all__ = [
    "FaultDetectionEstimate",
    "MonteCarloScreenResult",
    "MonteCarloStats",
    "empirical_process_boxes",
    "empirical_tolerance_box",
    "screen_dictionary_montecarlo",
]

_LOG = get_logger("tolerance.montecarlo")

#: Deviation assigned when a faulty sample cannot be simulated at all
#: (same convention as the executor: unsimulatable == maximally deviant).
_FAILED_SIMULATION_DEVIATION = 1e9

#: Pinhole overlay bases split a device into drain/source channel
#: segments; their Monte Carlo model-card overrides come from the root
#: device's sampled parameters.
_SPLIT_SUFFIXES = ("_PHD", "_PHS")


@dataclass
class MonteCarloStats:
    """Accounting of one Monte Carlo screening run.

    Attributes:
        factorizations: nominal LU factorizations performed (one per
            overlay base; the unit the sample count amortizes over).
        columns_screened / columns_confirmed: (sample x fault) columns
            certified by the chord pass / recovered by batched Newton.
        columns_failed: columns neither pass could certify (served by
            the scalar reference path).
        margin_confirms: borderline vectorized verdicts recomputed on
            the scalar path.
        scalar_solves: full compile+solve simulations performed (the
            entire scalar path, plus vectorized-path confirmations).
    """

    factorizations: int = 0
    columns_screened: int = 0
    columns_confirmed: int = 0
    columns_failed: int = 0
    margin_confirms: int = 0
    scalar_solves: int = 0

    def merged(self, other: "MonteCarloStats") -> "MonteCarloStats":
        """Combine two accounts (e.g. across dictionary shards)."""
        return MonteCarloStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})


@dataclass(frozen=True)
class FaultDetectionEstimate:
    """Per-fault detection statistics over a process-sample batch.

    Attributes:
        fault_id / fault_type: identity of the screened fault.
        margins: ``(n_samples,)`` detection margins (negative = detected).
        detected: ``(n_samples,)`` boolean verdicts per sample.
        detection_probability: fraction of samples detecting the fault.
        n_confirmed: samples whose verdict was recomputed on the scalar
            reference path (borderline margin or uncertified column).
    """

    fault_id: str
    fault_type: str
    margins: np.ndarray
    detected: np.ndarray
    detection_probability: float
    n_confirmed: int


@dataclass(frozen=True)
class MonteCarloScreenResult:
    """Everything one Monte Carlo screening run produced.

    Attributes:
        fault_ids: screened fault identities, in dictionary order.
        estimates: one :class:`FaultDetectionEstimate` per fault.
        n_samples / seed: batch geometry and its RNG seed.
        vectorized: True when the batched SMW path served the run.
        nominal_reading: golden fault-free reading at the nominal
            process point.
        sample_readings: ``(n_samples, n_ret)`` fault-free readings per
            process sample (the empirical spread behind the boxes).
        boxes: tolerance-box half-widths the margins were scored
            against.
        stats: solver/scalar accounting for the run.
    """

    fault_ids: tuple[str, ...]
    estimates: tuple[FaultDetectionEstimate, ...]
    n_samples: int
    seed: int
    vectorized: bool
    nominal_reading: np.ndarray
    sample_readings: np.ndarray
    boxes: np.ndarray
    stats: MonteCarloStats = field(compare=False)

    def estimate_for(self, fault_id: str) -> FaultDetectionEstimate:
        """Estimate of one fault by id."""
        for estimate in self.estimates:
            if estimate.fault_id == fault_id:
                return estimate
        raise ToleranceError(f"no such fault in result: {fault_id!r}")

    @property
    def detection_probabilities(self) -> dict[str, float]:
        """``fault_id -> P(detect)`` mapping, in dictionary order."""
        return {e.fault_id: e.detection_probability for e in self.estimates}


def empirical_tolerance_box(result: MonteCarloScreenResult) -> ToleranceBox:
    """Fig. 5-style tolerance box of a Monte Carlo run.

    Centred on the golden nominal reading with the run's empirical
    half-widths (process spread plus equipment envelope).
    """
    return ToleranceBox(nominal=result.nominal_reading,
                        half_width=result.boxes)


# ----------------------------------------------------------------------
# scalar reference path
# ----------------------------------------------------------------------
class _ScalarReference:
    """Anchored one-sample-at-a-time reference over one sample batch.

    The scalar reference is deliberately **branch-continuous**: a fault's
    operating point is first solved cold (``robust_solve`` from zeros) at
    the *nominal* process point — the anchor — and every process sample
    then warm-starts Newton from that anchor.  Cold-starting each sample
    independently would let the homotopy of ``robust_solve`` latch a
    *different* operating branch of a multi-stable faulty circuit for a
    sub-percent parameter perturbation, turning detection probabilities
    into solver noise; anchoring resolves each sample to the branch the
    fault actually sits on at nominal, exactly as the per-fault overlay
    path tracks its own warm slots across stimulus steps.

    Both the pure scalar mode and the vectorized path's margin
    confirmation route through this object, so confirmed entries are
    **bitwise** identical between the two modes.
    """

    def __init__(self, batch: ProcessSampleBatch,
                 configuration: "TestConfiguration", params: dict,
                 options: SimOptions, stats: MonteCarloStats) -> None:
        self.batch = batch
        self.configuration = configuration
        self.params = params
        self.options = options
        self.stats = stats
        self._variants: dict[int, Circuit] = {}
        self._anchors: dict[str | None, np.ndarray | None] = {}
        self._raws: dict[tuple[int, str | None], np.ndarray | None] = {}

    def variant(self, sample: int) -> Circuit:
        """Materialized process variant of one sample (cached)."""
        circuit = self._variants.get(sample)
        if circuit is None:
            circuit = self.batch.circuit(sample)
            self._variants[sample] = circuit
        return circuit

    def _solve(self, circuit: Circuit, warm: np.ndarray | None,
               ) -> tuple[np.ndarray, np.ndarray]:
        """Compile *circuit* and solve it at the screening point.

        Warm-starts Newton from *warm* when given (falling back to a
        cold robust solve), returns ``(raw, x)``.  Raises
        :class:`AnalysisError` when no path converges.
        """
        procedure = self.configuration.procedure
        self.stats.scalar_solves += 1
        compiled = CompiledCircuit(circuit)
        with procedure.screening_patch(compiled, self.params):
            b = compiled.source_vector(None)
            x = None
            if warm is not None and warm.shape == (compiled.size,):
                outcome = newton_solve(compiled, warm, b, self.options)
                if outcome.converged:
                    x = outcome.x
            if x is None:
                x, _, _ = robust_solve(compiled, np.zeros(compiled.size),
                                       b, self.options)
            raw = np.asarray(procedure.raw_from_solution(compiled, x),
                             dtype=float)
        return raw, x

    def anchor(self, fault: FaultModel | None) -> np.ndarray | None:
        """Nominal-process-point solution of *fault* (None = fault-free).

        The anchor compile shares the sample compiles' unknown ordering
        (``fault.apply`` is topology-deterministic), so its solution
        vector warm-starts them directly.
        """
        key = None if fault is None else fault.cache_key
        if key not in self._anchors:
            circuit = self.batch.nominal
            if fault is not None:
                circuit = fault.apply(circuit)
            try:
                _, x = self._solve(circuit, None)
                self._anchors[key] = x
            except AnalysisError as exc:
                _LOG.warning("scalar MC anchor failed (%s): %s", key, exc)
                self._anchors[key] = None
        return self._anchors[key]

    def raw(self, sample: int,
            fault: FaultModel | None) -> np.ndarray | None:
        """Reference reading of (sample, fault); fault None = fault-free.

        Returns None when the sample cannot be simulated at all (the
        caller scores it as maximally deviant).
        """
        key = (sample, None if fault is None else fault.cache_key)
        if key not in self._raws:
            circuit = self.variant(sample)
            if fault is not None:
                circuit = fault.apply(circuit)
            try:
                raw, _ = self._solve(circuit, self.anchor(fault))
            except AnalysisError as exc:
                _LOG.warning("scalar MC simulation failed (%s): %s -> "
                             "treating as maximal deviation",
                             circuit.name, exc)
                raw = None
            self._raws[key] = raw
        return self._raws[key]

    def golden(self) -> np.ndarray:
        """Fault-free reading at the nominal process point."""
        if self.anchor(None) is None:
            raise ToleranceError(
                f"nominal circuit {self.batch.nominal.name!r} failed to "
                "simulate at the screening point — the testbench itself "
                "is broken")
        procedure = self.configuration.procedure
        compiled = CompiledCircuit(self.batch.nominal)
        return np.asarray(
            procedure.raw_from_solution(compiled, self.anchor(None)),
            dtype=float)


# ----------------------------------------------------------------------
# vectorized path
# ----------------------------------------------------------------------
def _resistor_stamp_sets(circuit: Circuit, batch: ProcessSampleBatch,
                         ) -> list[list[tuple[str, str, float]]]:
    """Per-sample conductance-delta stamps realizing resistor spread.

    A perturbed resistance is *exactly* a conductance delta between its
    terminals, so resistor process spread is a rank-1 update per
    resistor — no linearization error.  Zero deltas are dropped (a
    variation with no resistor spread contributes no stamps at all).
    """
    index = {name: k for k, name in enumerate(batch.resistor_names)}
    terminals = [(element.name, element.n1, element.n2)
                 for element in circuit if isinstance(element, Resistor)]
    delta_g = 1.0 / batch.resistances - 1.0 / batch.resistor_nominals
    stamp_sets: list[list[tuple[str, str, float]]] = []
    for s in range(batch.n_samples):
        stamps = []
        for name, n1, n2 in terminals:
            dg = float(delta_g[s, index[name]])
            if dg != 0.0:
                stamps.append((n1, n2, dg))
        stamp_sets.append(stamps)
    return stamp_sets


def _mos_override_arrays(compiled: CompiledCircuit,
                         batch: ProcessSampleBatch,
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Per-(device, sample) ``(beta, vto)`` arrays for an overlay base.

    Devices of the base map to batch columns by name; pinhole split
    segments (``<root>_PHD`` / ``<root>_PHS``) inherit the root device's
    sampled card.  ``beta = kp * (w/l) * m`` is linear in ``kp``, so the
    sampled beta is the base's compiled beta scaled by the sample's
    ``kp`` ratio — correct for split segments too, whose channel-length
    split is already folded into the compiled nominal beta.
    """
    index = {name: k for k, name in enumerate(batch.mosfet_names)}
    kp_ratio = batch.mos_kp / batch.mos_kp_nominals
    n_mos, n_samples = len(compiled.mos_names), batch.n_samples
    beta = np.repeat(compiled.mos_beta[:, None], n_samples, axis=1)
    vto = np.repeat(compiled.mos_vto[:, None], n_samples, axis=1)
    for k, name in enumerate(compiled.mos_names):
        root = index.get(name)
        if root is None:
            for suffix in _SPLIT_SUFFIXES:
                if name.endswith(suffix):
                    root = index.get(name[:-len(suffix)])
                    break
        if root is None:
            raise ToleranceError(
                f"overlay base device {name!r} has no Monte Carlo "
                "parameter source in the sampled batch")
        beta[k] = compiled.mos_beta[k] * kp_ratio[:, root]
        vto[k] = batch.mos_vto[:, root]
    return beta, vto


def _screen_base(base_circuit: Circuit, configuration: "TestConfiguration",
                 params: dict, options: SimOptions,
                 batch: ProcessSampleBatch,
                 fault_stamps: Sequence[tuple[tuple[str, str, float], ...]],
                 stats: MonteCarloStats, max_columns: int,
                 node_hint: dict[str, float] | None = None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Screen every (sample x fault) column of one overlay base.

    Factorizes the base's nominal system once, then serves
    ``n_samples * len(fault_stamps)`` columns from it in bounded chunks
    (``max_columns`` columns per solver call keeps the batched Newton
    fallback's stacked-Jacobian memory bounded; the factorization is
    reused across chunks).  Returns ``(raws, ok)`` with shapes
    ``(n_faults, n_samples, n_ret)`` and ``(n_faults, n_samples)``.

    *node_hint* carries fault-free node voltages of a previously solved
    base, keyed by node name.  An overlay base (e.g. a pinhole split)
    is electrically near-identical to the nominal circuit, so its
    operating point is one warm Newton hop from the nominal one; an
    empty dict is filled with this base's solution for reuse.  The hint
    only seeds the operating-point solve — a failed warm attempt falls
    back to the usual cold robust solve.
    """
    procedure = configuration.procedure
    compiled = CompiledCircuit(base_circuit)
    res_stamps = _resistor_stamp_sets(base_circuit, batch)
    mos_beta, mos_vto = _mos_override_arrays(compiled, batch)

    n_faults, n_samples = len(fault_stamps), batch.n_samples
    n_ret = configuration.n_return_values
    raws = np.zeros((n_faults, n_samples, n_ret))
    ok = np.zeros((n_faults, n_samples), dtype=bool)

    columns = [(f, s) for f in range(n_faults) for s in range(n_samples)]
    with procedure.screening_patch(compiled, params):
        b = compiled.source_vector(None)
        x_op = None
        if node_hint:
            x0 = np.zeros(compiled.size)
            for name, volts in node_hint.items():
                idx = compiled.node_index.get(name)
                if idx is not None:
                    x0[idx] = volts
            outcome = newton_solve(compiled, x0, b, options)
            if outcome.converged:
                x_op = outcome.x
        if x_op is None:
            x_op, _, _ = robust_solve(compiled, np.zeros(compiled.size),
                                      b, options)
        if node_hint is not None and not node_hint:
            node_hint.update(
                (name, float(x_op[i]))
                for name, i in compiled.node_index.items())
        solver = MonteCarloOverlaySolver(compiled, x_op, b, options)
        stats.factorizations += 1
        # Anchor solve per fault at the *nominal* process point: a hard
        # fault (e.g. a strong bridge) sits far outside the chord trust
        # region, so its sample columns would all escalate to cold
        # batched Newton.  One anchor solve per fault puts every sample
        # column of that fault on the fault's own solution branch, where
        # the process perturbation is a small warm-started chord hop.
        # The anchors themselves are batched: one screen of pure fault
        # columns (nominal device cards, cold start) replaces a robust
        # per-fault solve loop at the same branch-selection contract.
        anchors: list[np.ndarray | None] = [None] * len(fault_stamps)
        anchor_cols = [f for f, stamps in enumerate(fault_stamps)
                       if stamps]
        for f, stamps in enumerate(fault_stamps):
            if not stamps:
                anchors[f] = x_op
        if anchor_cols:
            screened = solver.screen_columns(
                [list(fault_stamps[f]) for f in anchor_cols])
            for f, column in zip(anchor_cols, screened):
                if column.converged:
                    anchors[f] = column.x
        for start in range(0, len(columns), max_columns):
            chunk = columns[start:start + max_columns]
            samples = np.array([s for _, s in chunk])
            stamp_sets = [res_stamps[s] + list(fault_stamps[f])
                          for f, s in chunk]
            screened = solver.screen_columns(
                stamp_sets, mos_beta=mos_beta[:, samples],
                mos_vto=mos_vto[:, samples],
                warm=[anchors[f] for f, _ in chunk])
            for (f, s), column in zip(chunk, screened):
                if column.status == "screened":
                    stats.columns_screened += 1
                elif column.status == "confirmed":
                    stats.columns_confirmed += 1
                else:
                    stats.columns_failed += 1
                    continue
                raws[f, s] = procedure.raw_from_solution(compiled, column.x)
                ok[f, s] = True
    return raws, ok


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _empirical_boxes(configuration: "TestConfiguration",
                     golden: np.ndarray,
                     free_deviations: np.ndarray) -> np.ndarray:
    """Empirical Fig. 5 box half-widths from fault-free sample spread.

    Same composition as the calibrated executor boxes: a safety-margined
    worst-case spread term (floored like
    :func:`repro.tolerance.calibrate.calibrate_box_function`) plus twice
    the equipment error at the golden reading scale.
    """
    worst = np.max(np.abs(free_deviations), axis=0)
    floor = _RELATIVE_FLOOR * np.maximum(np.abs(golden), 1.0)
    spread = np.maximum(SAFETY_MARGIN * worst, floor)
    scales = configuration.procedure.reading_scales(golden)
    equip = np.array([
        configuration.equipment.error_bound(kind, float(scale))
        for kind, scale in zip(configuration.return_kinds, scales)])
    return spread + 2.0 * equip


def _margins(deviations: np.ndarray, boxes: np.ndarray) -> np.ndarray:
    """Detection margins ``min_j (1 - |dev_j| / box_j)`` per sample."""
    return np.min(1.0 - np.abs(deviations) / boxes, axis=-1)


def empirical_process_boxes(
        circuit: Circuit,
        configuration: "TestConfiguration",
        vector: Sequence[float],
        options: SimOptions = DEFAULT_OPTIONS, *,
        variation: ProcessVariation = DEFAULT_PROCESS,
        n_samples: int = 256,
        seed: int = 0,
        vectorized: bool = True,
        max_columns: int = 2048) -> np.ndarray:
    """Empirical Fig. 5 box half-widths of the fault-free process spread.

    Runs only the fault-free pass of :func:`screen_dictionary_montecarlo`
    (same draws, same solver path) and returns the box half-widths it
    would derive.  This is the canonical box source for *sharded* Monte
    Carlo screening: every shard must score margins against the **same**
    box, so the parent computes it once here and passes it down instead
    of letting each shard derive its own.
    """
    if n_samples < 1:
        raise ToleranceError(f"n_samples must be >= 1, got {n_samples}")
    vector = configuration.parameters.clip(vector)
    params = configuration.parameters.to_dict(vector)
    procedure = configuration.procedure
    stats = MonteCarloStats()
    batch = variation.sample_batch(circuit, np.random.default_rng(seed),
                                   n_samples)
    reference = _ScalarReference(batch, configuration, params, options,
                                 stats)
    golden = reference.golden()
    n_ret = configuration.n_return_values
    free_raws = np.zeros((n_samples, n_ret))
    if vectorized and getattr(procedure, "supports_screening", False):
        raws, ok = _screen_base(circuit, configuration, params, options,
                                batch, [()], stats, max_columns)
        for s in range(n_samples):
            if ok[0, s]:
                free_raws[s] = raws[0, s]
            else:
                raw = reference.raw(s, None)
                if raw is None:
                    raise ToleranceError(
                        f"fault-free process sample {s} failed to "
                        "simulate on both paths")
                free_raws[s] = raw
    else:
        for s in range(n_samples):
            raw = reference.raw(s, None)
            if raw is None:
                raise ToleranceError(
                    f"fault-free process sample {s} failed to simulate")
            free_raws[s] = raw
    free_deviations = np.atleast_2d(
        procedure.deviations(golden, free_raws))
    return _empirical_boxes(configuration, golden, free_deviations)


def screen_dictionary_montecarlo(
        circuit: Circuit,
        configuration: "TestConfiguration",
        faults: Sequence[FaultModel],
        vector: Sequence[float],
        options: SimOptions = DEFAULT_OPTIONS, *,
        variation: ProcessVariation = DEFAULT_PROCESS,
        n_samples: int = 256,
        seed: int = 0,
        boxes: np.ndarray | None = None,
        confirm_margin: float = 0.02,
        vectorized: bool = True,
        max_columns: int = 2048) -> MonteCarloScreenResult:
    """Detection probabilities of a fault dictionary under process spread.

    Draws ``n_samples`` seeded process samples, reads the fault-free and
    per-fault response of every sample at the configuration's parameter
    *vector*, scores each (sample, fault) reading against the tolerance
    box, and reports per-fault detection probabilities.

    Args:
        circuit: the nominal macro circuit.
        configuration: test configuration to evaluate (its procedure
            must support the batched screening protocol for the
            vectorized path; others fall back to the scalar path).
        faults: fault dictionary; ids must be unique.
        vector: configuration parameter vector (clipped to bounds).
        options: simulator options shared by all paths.
        variation: process-spread specification to sample.
        n_samples: process samples to draw (>= 1).
        seed: RNG seed for the draw matrix.
        boxes: optional externally-supplied box half-widths; when None
            the empirical box is derived from this run's fault-free
            sample spread.
        confirm_margin: vectorized verdicts closer than this to the
            detection threshold are recomputed on the scalar path.
        vectorized: route through the batched SMW solver (True) or the
            scalar one-sample-at-a-time reference (False).
        max_columns: memory bound on (sample x fault) columns per
            batched solver call.
    """
    if not faults:
        raise ToleranceError("Monte Carlo screening needs >= 1 fault")
    fault_ids = [fault.fault_id for fault in faults]
    if len(set(fault_ids)) != len(fault_ids):
        raise ToleranceError(f"duplicate fault ids: {fault_ids}")
    if n_samples < 1:
        raise ToleranceError(f"n_samples must be >= 1, got {n_samples}")

    vector = configuration.parameters.clip(vector)
    params = configuration.parameters.to_dict(vector)
    procedure = configuration.procedure
    stats = MonteCarloStats()
    batch = variation.sample_batch(circuit, np.random.default_rng(seed),
                                   n_samples)
    reference = _ScalarReference(batch, configuration, params, options,
                                 stats)

    # Golden fault-free reading at the nominal process point: identical
    # computation in both modes (cold compile of the nominal circuit),
    # so shared-box comparisons across modes are bitwise-consistent.
    golden = reference.golden()

    n_ret = configuration.n_return_values
    use_vectorized = bool(vectorized
                          and getattr(procedure, "supports_screening", False))

    free_raws = np.zeros((n_samples, n_ret))
    fault_raws = np.zeros((len(faults), n_samples, n_ret))
    fault_ok = np.zeros((len(faults), n_samples), dtype=bool)

    if use_vectorized:
        # Group faults by overlay base so every family shares one
        # factorization; the fault-free pass rides on the nominal base
        # as a stamp-free fault slot.
        overlay = [f for f in faults if f.supports_overlay]
        legacy = [f for f in faults if not f.supports_overlay]
        groups: dict[str, list[FaultModel]] = {"nominal": []}
        for fault in overlay:
            groups.setdefault(fault.overlay_base_key, []).append(fault)
        # The nominal group runs first (dict insertion order) and fills
        # this with its fault-free node voltages; every later overlay
        # base warm-starts its operating point from them.
        base_hint: dict[str, float] = {}
        for base_key, members in groups.items():
            if base_key == "nominal":
                base_circuit = circuit
                stamp_lists: list[tuple] = [()]  # fault-free slot
            else:
                base_circuit = members[0].overlay_base(circuit)
                stamp_lists = []
            base_compiled = CompiledCircuit(base_circuit)
            for fault in members:
                stamp_lists.append(tuple(
                    (st.node_a, st.node_b, st.conductance)
                    for st in fault.stamp_delta(base_compiled)))
            raws, ok = _screen_base(base_circuit, configuration, params,
                                    options, batch, stamp_lists, stats,
                                    max_columns, node_hint=base_hint)
            offset = 0
            if base_key == "nominal":
                offset = 1
                for s in range(n_samples):
                    if ok[0, s]:
                        free_raws[s] = raws[0, s]
                    else:
                        raw = reference.raw(s, None)
                        if raw is None:
                            raise ToleranceError(
                                f"fault-free process sample {s} failed to "
                                "simulate on both paths")
                        free_raws[s] = raw
            for j, fault in enumerate(members):
                k = fault_ids.index(fault.fault_id)
                fault_raws[k] = raws[offset + j]
                fault_ok[k] = ok[offset + j]
        for fault in legacy:
            k = fault_ids.index(fault.fault_id)
            for s in range(n_samples):
                raw = reference.raw(s, fault)
                if raw is not None:
                    fault_raws[k, s] = raw
                    fault_ok[k, s] = True
    else:
        for s in range(n_samples):
            raw = reference.raw(s, None)
            if raw is None:
                raise ToleranceError(
                    f"fault-free process sample {s} failed to simulate")
            free_raws[s] = raw
        for k, fault in enumerate(faults):
            for s in range(n_samples):
                raw = reference.raw(s, fault)
                if raw is not None:
                    fault_raws[k, s] = raw
                    fault_ok[k, s] = True

    free_deviations = np.atleast_2d(
        procedure.deviations(golden, free_raws))
    if boxes is None:
        boxes = _empirical_boxes(configuration, golden, free_deviations)
    else:
        boxes = np.asarray(boxes, dtype=float)
        if boxes.shape != (n_ret,):
            raise ToleranceError(
                f"boxes must have shape ({n_ret},), got {boxes.shape}")
    if np.any(boxes <= 0.0):
        raise ToleranceError("tolerance boxes must be positive")

    estimates = []
    for k, fault in enumerate(faults):
        deviations = np.atleast_2d(
            procedure.deviations(golden, fault_raws[k]))
        deviations[~fault_ok[k]] = _FAILED_SIMULATION_DEVIATION
        margins = _margins(deviations, boxes)
        n_confirmed = 0
        if use_vectorized:
            # Margin confirmation: borderline verdicts re-run on the
            # scalar reference so the verdict is bitwise the scalar
            # path's (shared boxes assumed).  Columns the batched solver
            # could not converge are *not* re-run: its homotopy ladder
            # mirrors robust_solve's full escalation, so a failed column
            # is the batched analog of the scalar ConvergenceError and
            # carries the same maximal-deviation verdict.
            for s in range(n_samples):
                if not fault_ok[k, s] or abs(margins[s]) >= confirm_margin:
                    continue
                stats.margin_confirms += 1
                n_confirmed += 1
                raw = reference.raw(s, fault)
                if raw is None:
                    dev = np.full(n_ret, _FAILED_SIMULATION_DEVIATION)
                else:
                    dev = np.atleast_1d(procedure.deviations(golden, raw))
                margins[s] = _margins(dev, boxes)
        detected = margins < 0.0
        estimates.append(FaultDetectionEstimate(
            fault_id=fault.fault_id, fault_type=fault.fault_type,
            margins=margins, detected=detected,
            detection_probability=float(np.mean(detected)),
            n_confirmed=n_confirmed))

    return MonteCarloScreenResult(
        fault_ids=tuple(fault_ids), estimates=tuple(estimates),
        n_samples=n_samples, seed=seed, vectorized=use_vectorized,
        nominal_reading=golden, sample_readings=free_raws, boxes=boxes,
        stats=stats)
