"""Tolerance boxes and box functions.

A *tolerance box* (paper §2.2, Fig. 5) is a window in measurement space
around the nominal return values: any response inside the box may have
come from a fault-free macro under process spread and tester error, so
only responses *outside* the box count as detections.

A *box function* estimates the box half-width for any test-parameter value
set of a configuration ("for each test configuration so-called
box-functions have been determined estimating the (single) tolerance-box
value given a test parameter value set within the allowed range", §3.4).
The half-width returned by the box function covers process spread only;
the execution layer adds the equipment error for the actual nominal
reading (see :mod:`repro.testgen.sensitivity`), because the equipment term
depends on the reading itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ToleranceError

__all__ = [
    "ToleranceBox",
    "BoxFunction",
    "ConstantBoxFunction",
    "CallableBoxFunction",
    "InterpolatedBoxFunction",
]


@dataclass(frozen=True)
class ToleranceBox:
    """Concrete box at one parameter point: nominal values +- half-widths."""

    nominal: np.ndarray
    half_width: np.ndarray

    def __post_init__(self) -> None:
        nominal = np.atleast_1d(np.asarray(self.nominal, float))
        half = np.atleast_1d(np.asarray(self.half_width, float))
        if nominal.shape != half.shape:
            raise ToleranceError(
                f"nominal {nominal.shape} and half_width {half.shape} "
                "shapes differ")
        if np.any(half <= 0.0):
            raise ToleranceError("box half-widths must be positive")
        object.__setattr__(self, "nominal", nominal)
        object.__setattr__(self, "half_width", half)

    @property
    def lower(self) -> np.ndarray:
        """Lower box corner."""
        return self.nominal - self.half_width

    @property
    def upper(self) -> np.ndarray:
        """Upper box corner."""
        return self.nominal + self.half_width

    def contains(self, values: Sequence[float]) -> bool:
        """True if *values* lies inside (or on) the box in every dimension."""
        values = np.atleast_1d(np.asarray(values, float))
        return bool(np.all(np.abs(values - self.nominal) <= self.half_width))

    def exceedance(self, values: Sequence[float]) -> np.ndarray:
        """Per-dimension normalized distance ``|v - nominal| / half_width``.

        Values > 1 indicate the measurement escapes the box in that
        dimension (guaranteed detection).
        """
        values = np.atleast_1d(np.asarray(values, float))
        return np.abs(values - self.nominal) / self.half_width


class BoxFunction(ABC):
    """Estimates process-spread half-width(s) as a function of parameters."""

    @abstractmethod
    def half_widths(self, params: Sequence[float]) -> np.ndarray:
        """Process-spread half-width per return value at *params*."""

    def __call__(self, params: Sequence[float]) -> np.ndarray:
        return self.half_widths(params)


class ConstantBoxFunction(BoxFunction):
    """Parameter-independent half-widths (simplest usable model)."""

    def __init__(self, values: Sequence[float]) -> None:
        self._values = np.atleast_1d(np.asarray(values, float))
        if np.any(self._values <= 0.0):
            raise ToleranceError("box half-widths must be positive")

    def half_widths(self, params: Sequence[float]) -> np.ndarray:
        return self._values.copy()

    def __repr__(self) -> str:
        return f"ConstantBoxFunction({self._values.tolist()})"


class CallableBoxFunction(BoxFunction):
    """Adapter for a user-supplied ``params -> half_widths`` callable."""

    def __init__(self, fn: Callable[[np.ndarray], Sequence[float]],
                 description: str = "callable") -> None:
        self._fn = fn
        self._description = description

    def half_widths(self, params: Sequence[float]) -> np.ndarray:
        out = np.atleast_1d(np.asarray(
            self._fn(np.asarray(params, float)), float))
        if np.any(out <= 0.0):
            raise ToleranceError(
                f"box function {self._description!r} returned non-positive "
                f"half-widths {out.tolist()} at params {params}")
        return out

    def __repr__(self) -> str:
        return f"CallableBoxFunction({self._description})"


class InterpolatedBoxFunction(BoxFunction):
    """Inverse-distance-weighted interpolation over calibration grid points.

    Monte-Carlo box calibration (:mod:`repro.tolerance.calibrate`) yields
    half-widths on a coarse grid of parameter points; this class
    interpolates between them.  IDW is used because it is dimension-
    agnostic, never extrapolates outside the calibrated value range, and
    degrades gracefully at the grid edges — all desirable for a quantity
    that must stay positive and conservative.

    Args:
        grid_points: (n, d) calibrated parameter points.
        half_widths: (n, p) spread half-widths at those points.
        bounds: (d, 2) parameter bounds used to normalize distances.
        power: IDW exponent (2 = classic Shepard weighting).
    """

    def __init__(self, grid_points: np.ndarray, half_widths: np.ndarray,
                 bounds: np.ndarray, power: float = 2.0) -> None:
        self._points = np.atleast_2d(np.asarray(grid_points, float))
        widths = np.asarray(half_widths, float)
        if widths.ndim == 1:
            widths = widths[:, None]
        self._widths = widths
        self._bounds = np.atleast_2d(np.asarray(bounds, float))
        self._power = power
        if len(self._points) != len(self._widths):
            raise ToleranceError(
                f"{len(self._points)} grid points vs "
                f"{len(self._widths)} half-width rows")
        if len(self._points) == 0:
            raise ToleranceError("empty calibration grid")
        if np.any(self._widths <= 0.0):
            raise ToleranceError("calibrated half-widths must be positive")
        span = self._bounds[:, 1] - self._bounds[:, 0]
        if np.any(span <= 0.0):
            raise ToleranceError("parameter bounds must have positive span")
        self._span = span

    def half_widths(self, params: Sequence[float]) -> np.ndarray:
        p = np.asarray(params, float)
        if p.shape != (self._points.shape[1],):
            raise ToleranceError(
                f"expected {self._points.shape[1]} parameters, "
                f"got shape {p.shape}")
        delta = (self._points - p) / self._span
        dist2 = np.sum(delta**2, axis=1)
        exact = dist2 < 1e-24
        if np.any(exact):
            return self._widths[np.argmax(exact)].copy()
        weights = dist2 ** (-self._power / 2.0)
        weights /= np.sum(weights)
        return weights @ self._widths

    @property
    def n_grid_points(self) -> int:
        """Number of calibrated parameter points."""
        return len(self._points)

    def __repr__(self) -> str:
        return (f"InterpolatedBoxFunction({self.n_grid_points} points, "
                f"{self._widths.shape[1]} return values)")
