"""Tolerance boxes: process spread, tester accuracy, box functions.

The tolerance layer answers one question for the sensitivity cost
function: *how large must a response deviation be before it is a
guaranteed fault detection?*  (paper §2.2, Fig. 5.)
"""

from repro.tolerance.box import (
    BoxFunction,
    CallableBoxFunction,
    ConstantBoxFunction,
    InterpolatedBoxFunction,
    ToleranceBox,
)
from repro.tolerance.calibrate import calibrate_box_function, grid_points
from repro.tolerance.corners import (
    ProcessCorner,
    STANDARD_CORNERS,
    apply_corner,
    available_corners,
    get_corner,
)
from repro.tolerance.equipment import (
    AccuracySpec,
    DEFAULT_EQUIPMENT,
    EquipmentSpec,
)
from repro.tolerance.montecarlo import (
    FaultDetectionEstimate,
    MonteCarloScreenResult,
    MonteCarloStats,
    empirical_process_boxes,
    empirical_tolerance_box,
    screen_dictionary_montecarlo,
)
from repro.tolerance.process import (
    DEFAULT_PROCESS,
    ProcessSampleBatch,
    ProcessVariation,
    Spread,
)

__all__ = [
    "ToleranceBox",
    "BoxFunction",
    "ConstantBoxFunction",
    "CallableBoxFunction",
    "InterpolatedBoxFunction",
    "calibrate_box_function",
    "grid_points",
    "AccuracySpec",
    "EquipmentSpec",
    "DEFAULT_EQUIPMENT",
    "ProcessCorner",
    "STANDARD_CORNERS",
    "available_corners",
    "get_corner",
    "apply_corner",
    "Spread",
    "ProcessVariation",
    "ProcessSampleBatch",
    "DEFAULT_PROCESS",
    "FaultDetectionEstimate",
    "MonteCarloScreenResult",
    "MonteCarloStats",
    "empirical_process_boxes",
    "empirical_tolerance_box",
    "screen_dictionary_montecarlo",
]
