"""Deterministic process corners: named points of the spread model.

Monte Carlo sampling (:mod:`repro.tolerance.process`) explores the
process distribution *statistically*; a **corner** pins one point of it
*deterministically*.  A corner is a set of normalized global draws — in
units of each parameter family's sigma, exactly the quantities
:meth:`~repro.tolerance.process.Spread.perturb` consumes — with all
mismatch terms at zero, so applying a corner to a circuit is a pure
function of (circuit, corner, variation): no RNG, bitwise reproducible,
safe inside the sharded campaign paths.

The shipped library follows the foundry naming convention:

========  ======================================================
``tt``    typical — every draw zero (the nominal circuit back)
``ss``    slow/slow — |VTO| up, KP down, both polarities
``ff``    fast/fast — |VTO| down, KP up, both polarities
``sf``    slow NMOS / fast PMOS (skewed)
``fs``    fast NMOS / slow PMOS (skewed)
``rhi``   sheet resistance and capacitance high
``rlo``   sheet resistance and capacitance low
========  ======================================================

MOS corners sit at ±2 sigma — strong enough to move operating points,
weak enough that every zoo macro still solves — and the passive corners
at ±2 sigma of the resistor/capacitor spreads.  Campaign sweep specs
reference corners by these names or define custom draw sets inline.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.errors import ToleranceError
from repro.tolerance.process import DEFAULT_PROCESS, ProcessVariation

__all__ = [
    "ProcessCorner",
    "STANDARD_CORNERS",
    "available_corners",
    "get_corner",
    "apply_corner",
]

#: Sigma multiplier of the shipped corner library.
_CORNER_SIGMA = 2.0


@dataclass(frozen=True)
class ProcessCorner:
    """One named, deterministic point of the process distribution.

    Attributes:
        name: corner label (appears in scenario ids and manifests).
        vto_nmos / vto_pmos: normalized |VTO| draws (sigma units;
            positive widens the threshold magnitude = slower device).
        kp_nmos / kp_pmos: normalized KP draws (positive = faster).
        resistor / capacitor: normalized passive draws.
    """

    name: str
    vto_nmos: float = 0.0
    vto_pmos: float = 0.0
    kp_nmos: float = 0.0
    kp_pmos: float = 0.0
    resistor: float = 0.0
    capacitor: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ToleranceError("corner needs a non-empty name")
        for f in fields(self):
            if f.name == "name":
                continue
            value = getattr(self, f.name)
            if not np.isfinite(value):
                raise ToleranceError(
                    f"corner {self.name!r}: draw {f.name} must be "
                    f"finite, got {value!r}")

    @property
    def draws(self) -> dict[str, float]:
        """The six normalized draws as a stable-keyed mapping."""
        return {f.name: float(getattr(self, f.name))
                for f in fields(self) if f.name != "name"}

    @property
    def is_typical(self) -> bool:
        """True when every draw is zero (the identity corner)."""
        return all(v == 0.0 for v in self.draws.values())

    def token(self) -> str:
        """Canonical string for content addressing (scenario ids)."""
        from repro.hashing import float_token
        parts = [self.name]
        parts.extend(f"{key}={float_token(value)}"
                     for key, value in sorted(self.draws.items()))
        return ";".join(parts)

    def apply(self, circuit: Circuit,
              variation: ProcessVariation = DEFAULT_PROCESS) -> Circuit:
        """Perturb *circuit* to this corner of *variation*.

        Global draws are applied through the same
        :meth:`~repro.tolerance.process.Spread.perturb` arithmetic (and
        the same parameter floors) as Monte Carlo sampling, with every
        mismatch draw at zero; ``tt`` returns the input circuit
        unchanged (same object), so the nominal cell costs nothing.
        """
        if self.is_typical:
            return circuit
        g_vto = {"nmos": self.vto_nmos, "pmos": self.vto_pmos}
        g_kp = {"nmos": self.kp_nmos, "pmos": self.kp_pmos}
        variant = circuit.copy(name=f"{circuit.name}~{self.name}")
        for element in circuit:
            if isinstance(element, Resistor):
                new_r = variation.resistor.perturb(
                    element.resistance, self.resistor, 0.0)
                variant = variant.replace_element(
                    Resistor(element.name, element.n1, element.n2,
                             max(new_r, 1e-3)))
            elif isinstance(element, Capacitor):
                new_c = variation.capacitor.perturb(
                    element.capacitance, self.capacitor, 0.0)
                variant = variant.replace_element(
                    Capacitor(element.name, element.n1, element.n2,
                              max(new_c, 1e-18)))
            elif isinstance(element, Mosfet):
                kind = element.params.kind
                vto_mag = abs(element.params.vto)
                new_vto_mag = variation.mos_vto.perturb(
                    vto_mag, g_vto[kind], 0.0)
                new_vto = float(np.copysign(max(new_vto_mag, 1e-3),
                                            element.params.vto))
                new_kp = max(variation.mos_kp.perturb(
                    element.params.kp, g_kp[kind], 0.0), 1e-9)
                params = element.params.scaled(vto=new_vto, kp=new_kp)
                variant = variant.replace_element(
                    Mosfet(element.name, element.d, element.g, element.s,
                           element.b, params, element.w, element.l,
                           element.m))
        return variant


_S = _CORNER_SIGMA

#: The shipped corner library (see module docstring).
STANDARD_CORNERS: dict[str, ProcessCorner] = {
    corner.name: corner for corner in (
        ProcessCorner("tt"),
        ProcessCorner("ss", vto_nmos=+_S, vto_pmos=+_S,
                      kp_nmos=-_S, kp_pmos=-_S),
        ProcessCorner("ff", vto_nmos=-_S, vto_pmos=-_S,
                      kp_nmos=+_S, kp_pmos=+_S),
        ProcessCorner("sf", vto_nmos=+_S, vto_pmos=-_S,
                      kp_nmos=-_S, kp_pmos=+_S),
        ProcessCorner("fs", vto_nmos=-_S, vto_pmos=+_S,
                      kp_nmos=+_S, kp_pmos=-_S),
        ProcessCorner("rhi", resistor=+_S, capacitor=+_S),
        ProcessCorner("rlo", resistor=-_S, capacitor=-_S),
    )
}


def available_corners() -> tuple[str, ...]:
    """Names of the shipped corner library, sorted."""
    return tuple(sorted(STANDARD_CORNERS))


def get_corner(name: str) -> ProcessCorner:
    """Look up a shipped corner by name."""
    try:
        return STANDARD_CORNERS[name]
    except KeyError:
        raise ToleranceError(
            f"unknown process corner {name!r}; "
            f"available: {list(available_corners())}") from None


def apply_corner(circuit: Circuit, corner: ProcessCorner | str,
                 variation: ProcessVariation = DEFAULT_PROCESS) -> Circuit:
    """Apply a corner (by object or library name) to *circuit*."""
    if isinstance(corner, str):
        corner = get_corner(corner)
    return corner.apply(circuit, variation)
