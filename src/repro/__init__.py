"""repro — compact structural test generation for analog macros.

A complete reproduction of Kaal & Kerkhoff, *Compact Structural Test
Generation for Analog Macros* (ED&TC/DATE 1997): fault-model-driven test
generation and compaction for analog macros, together with every substrate
the methodology needs — an MNA circuit simulator with level-1 MOSFETs,
bridging/pinhole fault models, tolerance boxes, and Brent/Powell
optimizers.

Quickstart::

    from repro.macros import IVConverterMacro
    from repro.testgen import generate_tests
    from repro.compaction import collapse_test_set

    macro = IVConverterMacro()
    result = generate_tests(macro, macro.fault_dictionary())
    compact = collapse_test_set(result, delta=0.1)

See README.md / DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.errors import (
    AnalysisError,
    CompactionError,
    ConvergenceError,
    FaultModelError,
    NetlistError,
    OptimizationError,
    ParseError,
    ReproError,
    SingularMatrixError,
    TestGenerationError,
    ToleranceError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "NetlistError",
    "ParseError",
    "AnalysisError",
    "ConvergenceError",
    "SingularMatrixError",
    "FaultModelError",
    "ToleranceError",
    "OptimizationError",
    "TestGenerationError",
    "CompactionError",
]
