"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the ATPG flow can fence the whole library with one
``except`` clause.  The sub-classes follow the package structure: netlist
construction errors, simulation (convergence) errors, fault-model errors,
optimization errors and test-generation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for structurally invalid circuits.

    Examples: duplicate element names, elements referencing undeclared
    nodes, floating nodes without a DC path to ground, shorted ideal
    voltage-source loops.
    """


class ParseError(NetlistError):
    """Raised by the SPICE-like netlist parser on malformed input.

    Carries the offending line number and text so the message can point at
    the exact location in the source deck.
    """

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None) -> None:
        location = f" (line {line_no}: {line!r})" if line_no is not None else ""
        super().__init__(f"{message}{location}")
        self.line_no = line_no
        self.line = line


class AnalysisError(ReproError):
    """Base class for simulation-engine failures."""


class ConvergenceError(AnalysisError):
    """Raised when Newton-Raphson fails to converge.

    The engine escalates through damping, gmin stepping and source
    stepping before giving up; this error means all homotopies failed.
    """


class SingularMatrixError(AnalysisError):
    """Raised when the MNA matrix is numerically singular.

    Usually indicates a floating node or an ill-formed circuit that
    slipped past validation (e.g. a current source driving an open pin).
    """


class OverlayValidationError(AnalysisError):
    """Raised by the simulation engine's ``validate_overlay`` debug mode
    when an overlay-stamped simulation disagrees with the legacy
    copy+recompile path beyond tolerance.

    This indicates a bug in a fault model's overlay implementation (or an
    overlay/patch leak on a shared compiled circuit), never a property of
    the circuit under test.
    """


class FaultModelError(ReproError):
    """Raised for invalid fault definitions or impossible injections."""


class LintError(ReproError):
    """Raised when a pre-flight lint pass rejects a scenario.

    Carries the offending :class:`repro.lint.Diagnostic` records on the
    ``diagnostics`` attribute so callers can render or filter them; the
    message itself lists the blocking findings.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class ToleranceError(ReproError):
    """Raised for invalid tolerance-box or process-variation setups."""


class OptimizationError(ReproError):
    """Raised for invalid optimizer setups (bad bounds, empty budget)."""


class TestGenerationError(ReproError):
    """Raised for inconsistent test-configuration or generation inputs."""


class CompactionError(ReproError):
    """Raised for invalid compaction inputs (empty sets, bad delta)."""


class ServeError(ReproError):
    """Raised for invalid serving requests or serving-layer misuse.

    Examples: unknown macro or configuration names in a screening
    request, malformed stimulus vectors, fault ids outside the macro's
    dictionary, or a corrupt verdict-cache spill file.
    """
