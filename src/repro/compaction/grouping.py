"""Grouping of optimized tests in test-parameter space.

The compaction step starts from the observation behind the paper's
Fig. 8: fault-specific optimal tests of one configuration cluster in the
parameter space ("if the tests can be grouped in the parameter space.
Several groups may be located in the parameter space of the test
configuration", §4.1).  We group with single-linkage agglomeration over
normalized parameter coordinates: two tests join the same group when they
are connected by a chain of pairwise distances below the threshold.
Single-linkage is the right relaxation here because the screening
criterion (not the clustering) is what ultimately accepts or rejects a
collapse — the clustering only proposes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompactionError

__all__ = ["single_linkage_groups", "farthest_pair_split"]


def single_linkage_groups(points: np.ndarray,
                          threshold: float) -> list[list[int]]:
    """Cluster row vectors of *points* with single-linkage at *threshold*.

    Args:
        points: (n, d) coordinates (normalized parameter vectors).
        threshold: maximum merge distance.

    Returns:
        List of index groups (each sorted), ordered by smallest member.
    """
    points = np.atleast_2d(np.asarray(points, float))
    n = len(points)
    if n == 0:
        return []
    if threshold < 0.0:
        raise CompactionError(f"threshold must be >= 0, got {threshold}")

    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    for i in range(n):
        deltas = points[i + 1:] - points[i]
        distances = np.linalg.norm(deltas, axis=1)
        for offset in np.nonzero(distances <= threshold)[0]:
            union(i, i + 1 + int(offset))

    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return sorted((sorted(g) for g in groups.values()), key=lambda g: g[0])


def farthest_pair_split(points: np.ndarray,
                        indices: list[int]) -> tuple[list[int], list[int]]:
    """Split a group in two, seeded by its farthest pair.

    Used when a proposed collapse fails the delta-screening: the group is
    bisected (each member joins the nearer of the two extreme points) and
    both halves are retried recursively.
    """
    if len(indices) < 2:
        raise CompactionError("cannot split a group of fewer than 2 tests")
    pts = np.atleast_2d(np.asarray(points, float))[indices]
    # Farthest pair (exact O(m^2); groups are small).
    best = (0, 1)
    best_dist = -1.0
    for a in range(len(indices)):
        deltas = pts[a + 1:] - pts[a]
        if len(deltas) == 0:
            continue
        distances = np.linalg.norm(deltas, axis=1)
        b = int(np.argmax(distances))
        if distances[b] > best_dist:
            best_dist = float(distances[b])
            best = (a, a + 1 + b)
    seed_a, seed_b = best
    group_a: list[int] = []
    group_b: list[int] = []
    for k, index in enumerate(indices):
        da = float(np.linalg.norm(pts[k] - pts[seed_a]))
        db = float(np.linalg.norm(pts[k] - pts[seed_b]))
        (group_a if da <= db else group_b).append(index)
    if not group_a or not group_b:
        # Degenerate (all points identical): split arbitrarily.
        middle = len(indices) // 2
        return indices[:middle], indices[middle:]
    return group_a, group_b
