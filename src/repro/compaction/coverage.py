"""Fault-coverage verification of (compact) test sets.

The collapse algorithm guarantees bounded sensitivity loss at the
critical impact; what production cares about is whether the compact set
still *detects every dictionary fault at its dictionary impact*.  This
module verifies exactly that, either against each fault's assigned group
test only (cheap) or against the whole set (a fault counts as covered if
*any* test fires — the realistic production question).

Two coverage semantics are supported:

* ``deterministic`` — the classic verdict at the nominal process point:
  a fault is covered by a test iff ``S_f < 0`` there.
* ``detection_probability`` — the manufacturing verdict: each test's
  verdict for a fault is the *fraction of process samples* in which the
  fault escapes the tolerance box (vectorized Monte Carlo screen, one
  factorization per overlay base), and the fault counts as covered only
  if some test reaches ``P(detect) >= detection_threshold``.  A fault
  that fires at nominal but only for half the manufactured devices is
  deterministically covered yet probabilistically *uncovered* — exactly
  the escapes the compact set must not hide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TestGenerationError
from repro.faults.base import FaultModel
from repro.testgen.configuration import Test
from repro.testgen.execution import MacroTestbench

__all__ = [
    "FaultCoverage",
    "CoverageReport",
    "evaluate_coverage",
    "select_covering_tests",
]


@dataclass(frozen=True)
class FaultCoverage:
    """Coverage record of one fault against a test set.

    ``detection_probability`` is the best (largest) per-test detection
    probability observed for the fault; ``NaN`` in deterministic mode,
    where no Monte Carlo sampling happened.
    """

    fault_id: str
    fault_type: str
    covered: bool
    best_sensitivity: float
    detecting_tests: tuple[str, ...]
    detection_probability: float = float("nan")


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of a test set over a fault population.

    Attributes:
        entries: per-fault records.
        n_tests: size of the evaluated test set.
    """

    entries: tuple[FaultCoverage, ...]
    n_tests: int

    @property
    def n_faults(self) -> int:
        """Number of evaluated faults."""
        return len(self.entries)

    @property
    def n_covered(self) -> int:
        """Faults detected by at least one test."""
        return sum(1 for e in self.entries if e.covered)

    @property
    def fraction(self) -> float:
        """Fault coverage as a fraction (1.0 = full coverage)."""
        return self.n_covered / self.n_faults if self.entries else 1.0

    def uncovered(self) -> tuple[FaultCoverage, ...]:
        """Faults the set fails to detect."""
        return tuple(e for e in self.entries if not e.covered)

    def by_type(self) -> dict[str, tuple[int, int]]:
        """``fault_type -> (covered, total)`` histogram."""
        table: dict[str, list[int]] = {}
        for entry in self.entries:
            covered, total = table.setdefault(entry.fault_type, [0, 0])
            table[entry.fault_type] = [covered + (1 if entry.covered else 0),
                                       total + 1]
        return {k: (v[0], v[1]) for k, v in table.items()}


def evaluate_coverage(
    testbench: MacroTestbench,
    faults: list[FaultModel] | tuple[FaultModel, ...],
    tests: list[Test] | tuple[Test, ...],
    stop_at_first: bool = True,
    *,
    mode: str = "deterministic",
    detection_threshold: float = 0.9,
    n_samples: int = 64,
    seed: int = 0,
) -> CoverageReport:
    """Evaluate which faults (at their own impact) the test set detects.

    Args:
        testbench: macro testbench for sensitivity evaluations.
        faults: fault models at the impact of interest (usually the
            dictionary impact).
        tests: the test set to grade.
        stop_at_first: stop probing a fault after its first detection
            (cheaper); set False to enumerate every detecting test.
        mode: ``"deterministic"`` grades each (fault, test) pair at the
            nominal process point (``S_f < 0``);
            ``"detection_probability"`` grades it by the Monte Carlo
            detection probability under process spread — a fault is
            detected by a test only if ``P(detect) >=
            detection_threshold``.
        detection_threshold: coverage bar for the probabilistic mode.
        n_samples / seed: process-sample batch per test (probabilistic
            mode only; the same seed per test keeps grading a pure
            function of the test set).

    Note:
        Grading iterates tests in the outer loop so each test probes its
        whole remaining fault population in one batched SMW screen
        (:meth:`~repro.testgen.execution.TestExecutor.screen_faults`, or
        the Monte Carlo screen in probabilistic mode) — one
        factorization per (test, overlay base) instead of up to
        ``len(faults) * len(tests)`` independent solves.  Verdicts are
        identical to per-fault evaluation (the screen certifies against
        the same Newton contract and margin-confirms borderline cases).
    """
    if mode not in ("deterministic", "detection_probability"):
        raise TestGenerationError(
            f"unknown coverage mode {mode!r}; use 'deterministic' or "
            "'detection_probability'")
    if not 0.0 < detection_threshold <= 1.0:
        raise TestGenerationError(
            "detection_threshold must be in (0, 1], got "
            f"{detection_threshold}")
    probabilistic = mode == "detection_probability"
    n_faults = len(faults)
    best = [float("inf")] * n_faults
    probability = [0.0] * n_faults
    detecting: list[list[str]] = [[] for _ in range(n_faults)]
    pending = list(range(n_faults))
    for test in tests:
        if not pending:
            break
        executor = testbench.executor(test.config_name)
        probe = [faults[i] for i in pending]
        if probabilistic:
            result = executor.detection_probabilities(
                probe, test.values, n_samples=n_samples, seed=seed)
            hits = [e.detection_probability >= detection_threshold
                    for e in result.estimates]
            # The "sensitivity" of a probabilistic verdict is the mean
            # detection margin over the sample batch: the expected
            # distance from the tolerance box, not the nominal one.
            values = [float(np.mean(e.margins)) for e in result.estimates]
            probs = [e.detection_probability for e in result.estimates]
        else:
            reports = executor.screen_faults(probe, test.values)
            hits = [report.detected for report in reports]
            values = [report.value for report in reports]
            probs = [0.0] * len(reports)
        still_pending: list[int] = []
        for i, hit, value, prob in zip(pending, hits, values, probs):
            best[i] = min(best[i], value)
            probability[i] = max(probability[i], prob)
            if hit:
                detecting[i].append(str(test))
                if stop_at_first:
                    continue
            still_pending.append(i)
        pending = still_pending
    entries = tuple(FaultCoverage(
        fault_id=fault.fault_id, fault_type=fault.fault_type,
        covered=bool(detecting[i]), best_sensitivity=best[i],
        detecting_tests=tuple(detecting[i]),
        detection_probability=(probability[i] if probabilistic
                               else float("nan")))
        for i, fault in enumerate(faults))
    return CoverageReport(entries=entries, n_tests=len(tests))


def select_covering_tests(
    testbench: MacroTestbench,
    faults: list[FaultModel] | tuple[FaultModel, ...],
    tests: list[Test] | tuple[Test, ...],
    *,
    mode: str = "deterministic",
    detection_threshold: float = 0.9,
    n_samples: int = 64,
    seed: int = 0,
) -> tuple[Test, ...]:
    """Greedy minimal test subset preserving the given coverage.

    Compaction against coverage: grade every (fault, test) pair once
    (``stop_at_first=False``), then greedily keep the test covering the
    most still-uncovered faults until coverage stops improving.  Under
    ``mode="detection_probability"`` the pair verdict is probabilistic
    (``P(detect) >= detection_threshold``), so the compact set is the
    smallest one that still catches every fault *across process spread*
    — a strictly harder bar than nominal-point coverage, and the one a
    production test program has to meet.

    Faults no test covers are ignored (they constrain nothing); ties
    break on test order, so the selection is deterministic.  The kept
    tests are returned in their original order.
    """
    report = evaluate_coverage(
        testbench, faults, tests, stop_at_first=False, mode=mode,
        detection_threshold=detection_threshold, n_samples=n_samples,
        seed=seed)
    names = [str(test) for test in tests]
    coverage_sets = [
        {i for i, entry in enumerate(report.entries)
         if name in entry.detecting_tests}
        for name in names]
    uncovered = set().union(*coverage_sets) if coverage_sets else set()
    keep: set[int] = set()
    while uncovered:
        gains = [len(covers & uncovered) if t not in keep else -1
                 for t, covers in enumerate(coverage_sets)]
        t_best = int(np.argmax(gains))
        if gains[t_best] <= 0:
            break
        keep.add(t_best)
        uncovered -= coverage_sets[t_best]
    return tuple(test for t, test in enumerate(tests) if t in keep)
