"""Fault-coverage verification of (compact) test sets.

The collapse algorithm guarantees bounded sensitivity loss at the
critical impact; what production cares about is whether the compact set
still *detects every dictionary fault at its dictionary impact*.  This
module verifies exactly that, either against each fault's assigned group
test only (cheap) or against the whole set (a fault counts as covered if
*any* test fires — the realistic production question).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.base import FaultModel
from repro.testgen.configuration import Test
from repro.testgen.execution import MacroTestbench

__all__ = ["FaultCoverage", "CoverageReport", "evaluate_coverage"]


@dataclass(frozen=True)
class FaultCoverage:
    """Coverage record of one fault against a test set."""

    fault_id: str
    fault_type: str
    covered: bool
    best_sensitivity: float
    detecting_tests: tuple[str, ...]


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of a test set over a fault population.

    Attributes:
        entries: per-fault records.
        n_tests: size of the evaluated test set.
    """

    entries: tuple[FaultCoverage, ...]
    n_tests: int

    @property
    def n_faults(self) -> int:
        """Number of evaluated faults."""
        return len(self.entries)

    @property
    def n_covered(self) -> int:
        """Faults detected by at least one test."""
        return sum(1 for e in self.entries if e.covered)

    @property
    def fraction(self) -> float:
        """Fault coverage as a fraction (1.0 = full coverage)."""
        return self.n_covered / self.n_faults if self.entries else 1.0

    def uncovered(self) -> tuple[FaultCoverage, ...]:
        """Faults the set fails to detect."""
        return tuple(e for e in self.entries if not e.covered)

    def by_type(self) -> dict[str, tuple[int, int]]:
        """``fault_type -> (covered, total)`` histogram."""
        table: dict[str, list[int]] = {}
        for entry in self.entries:
            covered, total = table.setdefault(entry.fault_type, [0, 0])
            table[entry.fault_type] = [covered + (1 if entry.covered else 0),
                                       total + 1]
        return {k: (v[0], v[1]) for k, v in table.items()}


def evaluate_coverage(
    testbench: MacroTestbench,
    faults: list[FaultModel] | tuple[FaultModel, ...],
    tests: list[Test] | tuple[Test, ...],
    stop_at_first: bool = True,
) -> CoverageReport:
    """Evaluate which faults (at their own impact) the test set detects.

    Args:
        testbench: macro testbench for sensitivity evaluations.
        faults: fault models at the impact of interest (usually the
            dictionary impact).
        tests: the test set to grade.
        stop_at_first: stop probing a fault after its first detection
            (cheaper); set False to enumerate every detecting test.

    Note:
        Grading iterates tests in the outer loop so each test probes its
        whole remaining fault population in one batched SMW screen
        (:meth:`~repro.testgen.execution.TestExecutor.screen_faults`) —
        one factorization per test instead of up to
        ``len(faults) * len(tests)`` independent solves.  Verdicts are
        identical to per-fault evaluation (the screen certifies against
        the same Newton contract and margin-confirms borderline cases).
    """
    n_faults = len(faults)
    best = [float("inf")] * n_faults
    detecting: list[list[str]] = [[] for _ in range(n_faults)]
    pending = list(range(n_faults))
    for test in tests:
        if not pending:
            break
        executor = testbench.executor(test.config_name)
        reports = executor.screen_faults(
            [faults[i] for i in pending], test.values)
        still_pending: list[int] = []
        for i, report in zip(pending, reports):
            best[i] = min(best[i], report.value)
            if report.detected:
                detecting[i].append(str(test))
                if stop_at_first:
                    continue
            still_pending.append(i)
        pending = still_pending
    entries = tuple(FaultCoverage(
        fault_id=fault.fault_id, fault_type=fault.fault_type,
        covered=bool(detecting[i]), best_sensitivity=best[i],
        detecting_tests=tuple(detecting[i]))
        for i, fault in enumerate(faults))
    return CoverageReport(entries=entries, n_tests=len(tests))
