"""Test compaction: parameter-space grouping + delta-screened collapse (§4)."""

from repro.compaction.collapse import (
    CollapsedGroup,
    CompactionResult,
    CompactionSettings,
    MemberScreening,
    collapse_test_set,
)
from repro.compaction.coverage import (
    CoverageReport,
    FaultCoverage,
    evaluate_coverage,
    select_covering_tests,
)
from repro.compaction.grouping import farthest_pair_split, single_linkage_groups
from repro.compaction.ordering import (
    DetectionMatrix,
    OrderedTestPlan,
    detection_matrix,
    greedy_order,
)

__all__ = [
    "DetectionMatrix",
    "OrderedTestPlan",
    "detection_matrix",
    "greedy_order",
    "CompactionSettings",
    "MemberScreening",
    "CollapsedGroup",
    "CompactionResult",
    "collapse_test_set",
    "single_linkage_groups",
    "farthest_pair_split",
    "FaultCoverage",
    "CoverageReport",
    "evaluate_coverage",
    "select_covering_tests",
]
