"""The test-set collapse algorithm (paper §4.1).

Fault-specific best tests ``T_tc,f1 .. T_tc,fn`` of one configuration are
collapsed onto a single test ``T_tc,c`` whose parameter values are the
average of the group members.  The collapse is *screened*: for every
member fault the sensitivity loss at the collapsed parameters must stay
within a delta-fraction slide toward the insensitivity level ``S = 1``:

    S_fi(T_tc,c)  <=  S_fi(T_tc,fi) + delta * (1 - S_fi(T_tc,fi))

``delta = 0`` accepts only lossless collapses; ``delta = 1`` accepts
anything still below insensitivity.  Screening evaluates each fault at
its *critical impact level* — the impact the optimal test was defined at,
where sensitivity margins are thinnest.

Groups that fail screening are bisected (farthest-pair split) and both
halves are retried, down to singletons, which pass trivially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro._log import get_logger
from repro.compaction.grouping import farthest_pair_split, single_linkage_groups
from repro.errors import CompactionError
from repro.testgen.configuration import Test
from repro.testgen.execution import MacroTestbench
from repro.testgen.generator import GeneratedTest, GenerationResult

__all__ = ["CompactionSettings", "MemberScreening", "CollapsedGroup",
           "CompactionResult", "collapse_test_set"]

_LOG = get_logger("compaction.collapse")


@dataclass(frozen=True)
class CompactionSettings:
    """Tunables of the collapse algorithm.

    Attributes:
        delta: acceptable sensitivity-loss fraction (paper's delta).
        grouping_radius: single-linkage threshold in normalized parameter
            coordinates (unit box).
        max_split_depth: recursion cap for failed-group bisection.
    """

    delta: float = 0.1
    grouping_radius: float = 0.15
    max_split_depth: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.delta <= 1.0:
            raise CompactionError(f"delta must be in [0, 1], got {self.delta}")
        if self.grouping_radius < 0.0:
            raise CompactionError("grouping_radius must be >= 0")


@dataclass(frozen=True)
class MemberScreening:
    """Screening record of one fault in a collapsed group."""

    fault_id: str
    sensitivity_optimal: float
    sensitivity_collapsed: float
    accepted: bool

    @property
    def loss(self) -> float:
        """Raw sensitivity shift (collapsed minus optimal)."""
        return self.sensitivity_collapsed - self.sensitivity_optimal


@dataclass(frozen=True)
class CollapsedGroup:
    """One group of fault-specific tests collapsed onto a single test."""

    config_name: str
    collapsed_test: Test
    members: tuple[GeneratedTest, ...]
    screenings: tuple[MemberScreening, ...]

    @property
    def fault_ids(self) -> tuple[str, ...]:
        """Fault ids covered by this group."""
        return tuple(m.fault.fault_id for m in self.members)

    @property
    def size(self) -> int:
        """Number of member tests collapsed into one."""
        return len(self.members)


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of collapsing a generation result.

    Attributes:
        groups: accepted collapsed groups (singletons included).
        undetectable_fault_ids: faults that had no test to collapse.
        settings: the settings used.
        n_original_tests: test count before collapsing.
        wall_time_s: run time of the collapse (screening simulations).
    """

    groups: tuple[CollapsedGroup, ...]
    undetectable_fault_ids: tuple[str, ...]
    settings: CompactionSettings
    n_original_tests: int
    wall_time_s: float

    @property
    def tests(self) -> tuple[Test, ...]:
        """The compact test set."""
        return tuple(g.collapsed_test for g in self.groups)

    @property
    def n_compact_tests(self) -> int:
        """Size of the compact set."""
        return len(self.groups)

    @property
    def compaction_ratio(self) -> float:
        """Original over compact test count (higher = better)."""
        if self.n_compact_tests == 0:
            return float("nan")
        return self.n_original_tests / self.n_compact_tests

    def groups_for_config(self, config_name: str) -> tuple[CollapsedGroup, ...]:
        """Groups belonging to one configuration."""
        return tuple(g for g in self.groups if g.config_name == config_name)

    def worst_loss(self) -> float:
        """Largest sensitivity shift accepted anywhere (diagnostic)."""
        losses = [s.loss for g in self.groups for s in g.screenings]
        return max(losses) if losses else 0.0


def _screen_group(testbench: MacroTestbench, config_name: str,
                  members: list[GeneratedTest],
                  settings: CompactionSettings
                  ) -> tuple[Test, list[MemberScreening], bool]:
    """Propose the centroid test for *members* and screen it."""
    configuration = testbench.configuration(config_name)
    vectors = np.array([m.test.values for m in members])
    centroid = configuration.parameters.clip(vectors.mean(axis=0))
    candidate = configuration.make_test(centroid)

    screenings: list[MemberScreening] = []
    all_ok = True
    for member in members:
        s_opt = member.sensitivity_at_critical
        probe = member.fault.with_impact(member.critical_impact)
        s_col = testbench.evaluate_test(probe, candidate).value
        limit = s_opt + settings.delta * (1.0 - s_opt)
        ok = s_col <= limit + 1e-12
        screenings.append(MemberScreening(
            fault_id=member.fault.fault_id, sensitivity_optimal=s_opt,
            sensitivity_collapsed=s_col, accepted=ok))
        all_ok = all_ok and ok
    return candidate, screenings, all_ok


def _collapse_recursive(testbench: MacroTestbench, config_name: str,
                        points: np.ndarray, members: list[GeneratedTest],
                        indices: list[int], settings: CompactionSettings,
                        depth: int) -> list[CollapsedGroup]:
    group_members = [members[i] for i in indices]
    candidate, screenings, ok = _screen_group(
        testbench, config_name, group_members, settings)
    if ok or len(indices) == 1 or depth >= settings.max_split_depth:
        if not ok and len(indices) > 1:
            _LOG.warning(
                "group of %d tests in %s kept despite screening failure "
                "(split depth exhausted)", len(indices), config_name)
        if not ok and len(indices) == 1:
            # A singleton "collapse" is the original test; a screening
            # failure here can only be simulation noise.
            _LOG.debug("singleton screening discrepancy in %s", config_name)
        return [CollapsedGroup(
            config_name=config_name, collapsed_test=candidate,
            members=tuple(group_members), screenings=tuple(screenings))]
    left, right = farthest_pair_split(points, indices)
    _LOG.debug("splitting group of %d in %s -> %d + %d",
               len(indices), config_name, len(left), len(right))
    return (_collapse_recursive(testbench, config_name, points, members,
                                left, settings, depth + 1)
            + _collapse_recursive(testbench, config_name, points, members,
                                  right, settings, depth + 1))


def collapse_test_set(
    generation: GenerationResult,
    testbench: MacroTestbench,
    settings: CompactionSettings = CompactionSettings(),
) -> CompactionResult:
    """Collapse a generation result into a compact test set (§4.1).

    Args:
        generation: output of :func:`repro.testgen.generate_tests`.
        testbench: the macro testbench (screening needs simulations).
        settings: delta, grouping radius, split depth.

    Returns:
        :class:`CompactionResult` with the compact set and full screening
        records.
    """
    started = time.monotonic()
    undetectable = tuple(t.fault.fault_id for t in generation.tests
                         if t.test is None)
    groups: list[CollapsedGroup] = []

    for config_name in testbench.configuration_names:
        members = [t for t in generation.tests
                   if t.test is not None and t.config_name == config_name]
        if not members:
            continue
        configuration = testbench.configuration(config_name)
        points = np.array([
            configuration.parameters.normalize(m.test.values)
            for m in members])
        for index_group in single_linkage_groups(points,
                                                 settings.grouping_radius):
            groups.extend(_collapse_recursive(
                testbench, config_name, points, members, index_group,
                settings, depth=0))

    result = CompactionResult(
        groups=tuple(groups), undetectable_fault_ids=undetectable,
        settings=settings,
        n_original_tests=sum(1 for t in generation.tests
                             if t.test is not None),
        wall_time_s=time.monotonic() - started)
    _LOG.info("collapsed %d tests -> %d (delta=%.2g, ratio %.1fx)",
              result.n_original_tests, result.n_compact_tests,
              settings.delta, result.compaction_ratio)
    return result
