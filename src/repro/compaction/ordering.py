"""Test ordering: schedule a compact set for earliest fault detection.

A production tester aborts a failing device at its *first* failing test,
so the order of the compact set determines average test time on faulty
material.  This module builds the fault x test detection matrix and
greedily orders the tests so that each position detects the most
still-uncovered (optionally likelihood-weighted) faults — the classic
greedy set-cover schedule.

This is an extension beyond the 1997 paper (which stops at the compact
set), but it is the natural next step the paper's industrial framing
points at, and it reuses the same sensitivity machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._log import get_logger
from repro.errors import CompactionError
from repro.faults.base import FaultModel
from repro.testgen.configuration import Test
from repro.testgen.execution import MacroTestbench

__all__ = ["DetectionMatrix", "OrderedTestPlan", "detection_matrix",
           "greedy_order"]

_LOG = get_logger("compaction.ordering")


@dataclass(frozen=True)
class DetectionMatrix:
    """Boolean fault-by-test detection table plus the S values behind it.

    Attributes:
        fault_ids: row labels.
        tests: column objects.
        detects: (n_faults, n_tests) boolean matrix.
        sensitivities: (n_faults, n_tests) S values (diagnostics).
    """

    fault_ids: tuple[str, ...]
    tests: tuple[Test, ...]
    detects: np.ndarray
    sensitivities: np.ndarray

    def coverage_of(self, test_indices: list[int]) -> np.ndarray:
        """Boolean per-fault coverage by the given test columns."""
        if not test_indices:
            return np.zeros(len(self.fault_ids), dtype=bool)
        return np.any(self.detects[:, test_indices], axis=1)


@dataclass(frozen=True)
class OrderedTestPlan:
    """Greedy-ordered test schedule with its coverage growth curve.

    Attributes:
        order: test indices into the matrix, best-first.
        tests: the tests in scheduled order.
        incremental_coverage: weighted coverage gained at each position.
        cumulative_coverage: weighted coverage after each position.
        total_weight: total fault weight (denominator of the curve).
    """

    order: tuple[int, ...]
    tests: tuple[Test, ...]
    incremental_coverage: tuple[float, ...]
    cumulative_coverage: tuple[float, ...]
    total_weight: float

    @property
    def final_coverage(self) -> float:
        """Weighted coverage of the full schedule (0..1)."""
        return self.cumulative_coverage[-1] if self.cumulative_coverage \
            else 0.0

    def tests_for_coverage(self, target: float) -> int:
        """Schedule positions needed to reach *target* coverage."""
        for index, cov in enumerate(self.cumulative_coverage, start=1):
            if cov >= target:
                return index
        raise CompactionError(
            f"schedule never reaches coverage {target:.2f} "
            f"(final {self.final_coverage:.2f})")


def detection_matrix(testbench: MacroTestbench,
                     faults: list[FaultModel] | tuple[FaultModel, ...],
                     tests: list[Test] | tuple[Test, ...]
                     ) -> DetectionMatrix:
    """Evaluate every (fault, test) pair.

    Cost is ``len(faults) * len(tests)`` faulty simulations (nominal
    responses are cached), so run it on the *compact* set.
    """
    if not faults or not tests:
        raise CompactionError("detection matrix needs faults and tests")
    sensitivities = np.empty((len(faults), len(tests)))
    for i, fault in enumerate(faults):
        for j, test in enumerate(tests):
            sensitivities[i, j] = testbench.evaluate_test(fault,
                                                          test).value
    return DetectionMatrix(
        fault_ids=tuple(f.fault_id for f in faults),
        tests=tuple(tests),
        detects=sensitivities < 0.0,
        sensitivities=sensitivities)


def greedy_order(matrix: DetectionMatrix,
                 weights: dict[str, float] | None = None
                 ) -> OrderedTestPlan:
    """Greedy set-cover ordering of the matrix's tests.

    Args:
        matrix: detection table from :func:`detection_matrix`.
        weights: optional fault-id -> weight map (e.g. IFA likelihoods);
            unweighted faults count 1.0.

    Ties are broken toward the test with the lowest summed sensitivity
    over uncovered faults (the "most decisive" detector), then by column
    order for determinism.  Tests adding nothing are appended at the end
    in column order (they may still matter for faults outside this
    matrix).
    """
    weight_vec = np.array([
        (weights or {}).get(fid, 1.0) for fid in matrix.fault_ids])
    if np.any(weight_vec < 0.0):
        raise CompactionError("fault weights must be non-negative")
    total = float(np.sum(weight_vec))

    uncovered = np.ones(len(matrix.fault_ids), dtype=bool)
    remaining = list(range(len(matrix.tests)))
    order: list[int] = []
    incremental: list[float] = []
    cumulative: list[float] = []
    covered_weight = 0.0

    while remaining:
        gains = []
        for j in remaining:
            new = matrix.detects[:, j] & uncovered
            gain = float(np.sum(weight_vec[new]))
            decisive = float(np.sum(matrix.sensitivities[new, j]))
            gains.append((gain, -decisive, -j))
        best_pos = int(np.argmax([g for g, *_ in gains])) \
            if any(g > 0 for g, *_ in gains) else None
        if best_pos is None:
            # Nothing else detects anything new: append the rest stably.
            for j in remaining:
                order.append(j)
                incremental.append(0.0)
                cumulative.append(covered_weight / total if total else 1.0)
            break
        # Among max-gain candidates prefer the most decisive.
        best_gain = max(g for g, *_ in gains)
        candidates = [(dec, jneg) for (g, dec, jneg) in gains
                      if g == best_gain]
        _, jneg = max(candidates)
        j = -jneg
        remaining.remove(j)
        newly = matrix.detects[:, j] & uncovered
        gain = float(np.sum(weight_vec[newly]))
        uncovered &= ~matrix.detects[:, j]
        covered_weight += gain
        order.append(j)
        incremental.append(gain / total if total else 0.0)
        cumulative.append(covered_weight / total if total else 1.0)

    _LOG.info("greedy schedule: %.0f%% coverage after %d of %d tests",
              100 * (cumulative[0] if cumulative else 0.0), 1,
              len(matrix.tests))
    return OrderedTestPlan(
        order=tuple(order),
        tests=tuple(matrix.tests[j] for j in order),
        incremental_coverage=tuple(incremental),
        cumulative_coverage=tuple(cumulative),
        total_weight=total)
