"""Command-line interface: ``python -m repro <command>``.

Thin argparse wrapper over the library for interactive use:

* ``describe``  — macro structure + test-configuration cards (Fig. 1);
* ``faults``    — fault dictionary (exhaustive or IFA-weighted);
* ``tps``       — tps-graph of one fault under one configuration;
* ``generate``  — the Fig. 6 generation run (JSON output optional);
* ``compact``   — generation + collapse + coverage, the full flow;
* ``mc``        — Monte Carlo detection probabilities under process
  spread (vectorized tolerance screening);
* ``lint``      — static pre-flight checks over a macro's circuit,
  fault dictionary and test configurations (no simulation);
* ``serve``     — long-lived HTTP verdict server (warm engine pool,
  request coalescing, content-addressed verdict cache);
* ``campaign``  — config-file-driven scenario sweeps
  (``campaign run|list|report``): expand a TOML/JSON spec into
  (topology x corner x dictionary) cells, lint-vet each, and fan them
  through the sharded executors into a resumable JSON-lines manifest.

``describe`` and ``faults`` take ``--json`` so serving clients and
scripts can enumerate macros, configurations and fault ids
machine-readably.

Examples::

    python -m repro describe --macro rc-ladder
    python -m repro describe --macro iv-converter --json
    python -m repro faults --macro iv-converter --ifa --top 10
    python -m repro serve --port 8787 --window-ms 10
    python -m repro tps --macro iv-converter --config thd \\
        --fault bridge:n2:n3 --impact 34k --grid 7
    python -m repro compact --macro rc-ladder --delta 0.1
    python -m repro lint --all --strict
    python -m repro campaign list benchmarks/campaigns/smoke.toml
    python -m repro campaign run benchmarks/campaigns/smoke.toml \\
        --manifest results/smoke.jsonl --jobs 4 --resume
    python -m repro campaign report results/smoke.jsonl
    python -m repro lint --macro ota --format json
    python -m repro mc --macro iv-converter --config dc-output \\
        --samples 256 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    evaluate_coverage,
)
from repro.errors import ReproError
from repro.faults import ifa_fault_dictionary
from repro.macros import available_macros, get_macro
from repro.reporting import render_table, render_tps_graph
from repro.testgen import (
    GenerationSettings,
    MacroTestbench,
    compute_tps_graph,
    generate_tests,
    mc_screen_dictionary_sharded,
)
from repro.tolerance import screen_dictionary_montecarlo
from repro.units import format_value, parse_value

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compact structural test generation for analog "
                    "macros (Kaal & Kerkhoff, DATE 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_macro_arg(p):
        p.add_argument("--macro", default="rc-ladder",
                       choices=available_macros(),
                       help="macro type to operate on")
        p.add_argument("--sections", type=int, default=None,
                       help="section count for parameterized macros "
                            "(active-filter)")

    p_describe = sub.add_parser(
        "describe", help="macro structure and configuration cards")
    add_macro_arg(p_describe)
    p_describe.add_argument("--json", action="store_true",
                            help="machine-readable output (macro, "
                                 "configurations, parameters)")

    p_faults = sub.add_parser("faults", help="list the fault dictionary")
    add_macro_arg(p_faults)
    p_faults.add_argument("--ifa", action="store_true",
                          help="IFA-weighted instead of exhaustive")
    p_faults.add_argument("--top", type=int, default=None,
                          help="keep only the N most likely faults "
                               "(with --ifa)")
    p_faults.add_argument("--json", action="store_true",
                          help="machine-readable output (fault ids, "
                               "types, impacts, likelihoods)")

    p_tps = sub.add_parser("tps", help="tps-graph for one fault")
    add_macro_arg(p_tps)
    p_tps.add_argument("--config", required=True,
                       help="configuration name (see 'describe')")
    p_tps.add_argument("--fault", required=True,
                       help="fault id, e.g. bridge:n2:n3 or pinhole:M1")
    p_tps.add_argument("--impact", default=None,
                       help="override the impact (e.g. 34k)")
    p_tps.add_argument("--grid", type=int, default=7,
                       help="grid points per parameter axis")

    p_generate = sub.add_parser(
        "generate", help="run the Fig. 6 generation algorithm")
    add_macro_arg(p_generate)
    p_generate.add_argument("--jobs", type=int, default=1,
                            help="parallel worker processes")
    p_generate.add_argument("--faults", type=int, default=None,
                            help="limit to the first N faults")
    p_generate.add_argument("--json", type=Path, default=None,
                            help="write the result as JSON")

    p_compact = sub.add_parser(
        "compact", help="generation + collapse + coverage")
    add_macro_arg(p_compact)
    p_compact.add_argument("--jobs", type=int, default=1)
    p_compact.add_argument("--delta", type=float, default=0.1,
                           help="acceptable sensitivity-loss fraction")

    p_mc = sub.add_parser(
        "mc", help="Monte Carlo detection probabilities under "
                   "process spread")
    add_macro_arg(p_mc)
    p_mc.add_argument("--config", required=True,
                      help="configuration name (see 'describe')")
    p_mc.add_argument("--samples", type=int, default=256,
                      help="process samples to draw")
    p_mc.add_argument("--seed", type=int, default=0,
                      help="RNG seed of the sample batch")
    p_mc.add_argument("--threshold", type=float, default=0.9,
                      help="detection-probability coverage bar")
    p_mc.add_argument("--faults", type=int, default=None,
                      help="limit to the first N faults")
    p_mc.add_argument("--jobs", type=int, default=1,
                      help="worker processes (sharded execution)")
    p_mc.add_argument("--scalar", action="store_true",
                      help="use the scalar one-sample-at-a-time "
                           "reference path instead of the batched "
                           "SMW solver")

    p_lint = sub.add_parser(
        "lint", help="static pre-flight checks (circuit, dictionary, "
                     "test program) — no simulation")
    add_macro_arg(p_lint)
    p_lint.add_argument("--all", action="store_true",
                        help="lint every registered macro (ignores "
                             "--macro/--sections)")
    p_lint.add_argument("--ifa", action="store_true",
                        help="lint the IFA-weighted dictionary instead "
                             "of the exhaustive one")
    p_lint.add_argument("--strict", action="store_true",
                        help="warnings block too, not just errors")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")

    p_serve = sub.add_parser(
        "serve", help="HTTP verdict server: warm engine pool, request "
                      "coalescing, content-addressed verdict cache")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="bind port (0 picks a free one)")
    p_serve.add_argument("--engines", type=int, default=8,
                         help="warm (macro, configuration) engine-pool "
                              "capacity")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="in-memory verdict-cache capacity")
    p_serve.add_argument("--spill", type=Path, default=None,
                         help="JSON-lines verdict journal; replayed on "
                              "start so the cache survives restarts")
    p_serve.add_argument("--window-ms", type=float, default=10.0,
                         help="request-coalescing window in "
                              "milliseconds (0 disables)")
    p_serve.add_argument("--max-batch", type=int, default=256,
                         help="unique-fault bound that flushes a "
                              "batch early")

    p_campaign = sub.add_parser(
        "campaign", help="scenario sweeps from TOML/JSON specs "
                         "(families x corners x dictionaries)")
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command",
                                             required=True)

    p_crun = campaign_sub.add_parser(
        "run", help="execute every cell of a sweep spec")
    p_crun.add_argument("spec", type=Path, help="sweep spec "
                        "(.toml or .json)")
    p_crun.add_argument("--manifest", type=Path, default=None,
                        help="JSON-lines manifest path (default "
                             "results/campaign_<name>.jsonl)")
    p_crun.add_argument("--jobs", type=int, default=1,
                        help="worker processes (results are bitwise "
                             "independent of this)")
    p_crun.add_argument("--resume", action="store_true",
                        help="skip cells the manifest already records")

    p_clist = campaign_sub.add_parser(
        "list", help="expand a spec and print its cells (no "
                     "simulation)")
    p_clist.add_argument("spec", type=Path)
    p_clist.add_argument("--json", action="store_true",
                         help="machine-readable cell list")

    p_creport = campaign_sub.add_parser(
        "report", help="aggregate a campaign manifest")
    p_creport.add_argument("manifest", type=Path)
    p_creport.add_argument("--json", action="store_true",
                           help="machine-readable summary")

    return parser


def _make_macro(args):
    """Instantiate the selected macro, forwarding size arguments."""
    kwargs = {}
    if getattr(args, "sections", None) is not None:
        kwargs["n_sections"] = args.sections
    try:
        return get_macro(args.macro, **kwargs)
    except TypeError:
        raise ReproError(
            f"macro {args.macro!r} does not accept --sections") from None


def _cmd_describe(args) -> int:
    macro = _make_macro(args)
    if args.json:
        import json as json_module

        from repro.hashing import netlist_digest
        circuit = macro.circuit
        configurations = []
        for config in macro.test_configurations():
            configurations.append({
                "name": config.name,
                "n_return_values": config.n_return_values,
                "return_kinds": [str(k) for k in config.return_kinds],
                "supports_screening": bool(getattr(
                    config.procedure, "supports_screening", False)),
                "parameters": [{
                    "name": p.name,
                    "unit": p.spec.unit,
                    "description": p.spec.description,
                    "lower": p.lower,
                    "upper": p.upper,
                    "seed": p.seed,
                } for p in config.parameters],
                "seed_vector": [float(v)
                                for v in config.parameters.seeds],
            })
        print(json_module.dumps({
            "macro": args.macro,
            "circuit": {
                "name": circuit.name,
                "n_elements": len(circuit),
                "netlist_digest": netlist_digest(circuit.to_netlist()),
            },
            "standard_nodes": list(macro.standard_nodes),
            "configurations": configurations,
        }, indent=2))
        return 0
    print(macro.circuit.summary())
    print(f"standard nodes: {', '.join(macro.standard_nodes)}")
    print()
    for config in macro.test_configurations():
        print(config.description.describe())
        for parameter in config.parameters:
            print(f"    {parameter}")
        print()
    return 0


def _cmd_faults(args) -> int:
    macro = _make_macro(args)
    if args.ifa:
        faults = ifa_fault_dictionary(macro.circuit,
                                      nodes=macro.standard_nodes,
                                      top_n=args.top)
    else:
        faults = macro.fault_dictionary()
    if args.json:
        import json as json_module
        entries = [{
            "fault_id": f.fault_id,
            "fault_type": f.fault_type,
            "impact": float(f.impact),
            "likelihood": float(f.likelihood),
        } for f in faults]
        print(json_module.dumps({
            "macro": args.macro,
            "ifa": bool(args.ifa),
            "n_faults": len(entries),
            "faults": entries,
        }, indent=2))
        return 0
    rows = [[f.fault_id, f.fault_type,
             format_value(f.impact, "ohm"), f"{f.likelihood:.2f}"]
            for f in faults]
    print(render_table(["fault", "type", "impact", "likelihood"], rows,
                       title=str(faults)))
    return 0


def _cmd_tps(args) -> int:
    macro = _make_macro(args)
    configs = [c for c in macro.test_configurations()
               if c.name == args.config]
    if not configs:
        names = [c.name for c in macro.test_configurations()]
        print(f"error: no configuration {args.config!r}; have {names}",
              file=sys.stderr)
        return 2
    bench = MacroTestbench(macro.circuit, configs, macro.options)
    fault = macro.fault_dictionary().get(args.fault)
    if args.impact is not None:
        fault = fault.with_impact(parse_value(args.impact))
    graph = compute_tps_graph(bench.executor(args.config), fault,
                              points_per_axis=args.grid)
    print(render_tps_graph(graph))
    print(f"detection fraction: {graph.detection_fraction:.0%}")
    return 0


def _run_generation(args):
    macro = _make_macro(args)
    configurations = macro.test_configurations()
    faults = list(macro.fault_dictionary())
    if getattr(args, "faults", None):
        faults = faults[:args.faults]
    generation = generate_tests(macro.circuit, configurations, faults,
                                GenerationSettings(), n_jobs=args.jobs)
    return macro, configurations, generation


def _print_generation(generation) -> None:
    rows = []
    for t in generation.tests:
        params = ("-" if t.test is None else
                  ", ".join(f"{k}={v:.4g}" for k, v in
                            t.test.as_dict().items()))
        rows.append([t.fault.fault_id, t.config_name, params,
                     f"{t.sensitivity_at_critical:.3g}",
                     format_value(t.critical_impact, "ohm")])
    print(render_table(
        ["fault", "best config", "parameters", "S@critical",
         "critical impact"], rows, title="Generated tests"))
    print(f"simulations: {generation.total_simulations}, "
          f"wall time {generation.wall_time_s:.1f}s")


def _cmd_generate(args) -> int:
    _, __, generation = _run_generation(args)
    _print_generation(generation)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(generation.to_json())
        print(f"wrote {args.json}")
    return 0


def _cmd_compact(args) -> int:
    macro, configurations, generation = _run_generation(args)
    _print_generation(generation)
    bench = MacroTestbench(macro.circuit, configurations, macro.options)
    compaction = collapse_test_set(
        generation, bench, CompactionSettings(delta=args.delta))
    print(f"\ncompacted {compaction.n_original_tests} -> "
          f"{compaction.n_compact_tests} tests "
          f"(delta={args.delta:g})")
    for group in compaction.groups:
        print(f"  {group.collapsed_test} covers "
              f"{', '.join(group.fault_ids)}")
    detected = [t for t in generation.tests if t.detected_at_dictionary]
    if detected:
        report = evaluate_coverage(bench, [t.fault for t in detected],
                                   list(compaction.tests))
        print(f"coverage at dictionary impact: "
              f"{report.n_covered}/{report.n_faults}")
    return 0


def _cmd_mc(args) -> int:
    macro = _make_macro(args)
    configs = [c for c in macro.test_configurations()
               if c.name == args.config]
    if not configs:
        names = [c.name for c in macro.test_configurations()]
        print(f"error: no configuration {args.config!r}; have {names}",
              file=sys.stderr)
        return 2
    config = configs[0]
    faults = list(macro.fault_dictionary())
    if args.faults:
        faults = faults[:args.faults]
    vector = list(config.parameters.seeds)
    if args.jobs > 1:
        result = mc_screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_samples=args.samples, seed=args.seed,
            vectorized=not args.scalar, max_workers=args.jobs)
    else:
        result = screen_dictionary_montecarlo(
            macro.circuit, config, faults, vector, macro.options,
            n_samples=args.samples, seed=args.seed,
            vectorized=not args.scalar)
    rows = [[e.fault_id, e.fault_type,
             f"{e.detection_probability:.3f}",
             f"{float(np.mean(e.margins)):+.3g}",
             str(e.n_confirmed)]
            for e in result.estimates]
    print(render_table(
        ["fault", "type", "P(detect)", "mean margin", "confirmed"], rows,
        title=f"Monte Carlo screen: {config.name}, "
              f"{result.n_samples} samples, seed {result.seed}"))
    covered = sum(1 for e in result.estimates
                  if e.detection_probability >= args.threshold)
    print(f"covered at P >= {args.threshold:g}: "
          f"{covered}/{len(result.estimates)}")
    stats = result.stats
    print(f"factorizations: {stats.factorizations}, columns "
          f"screened/confirmed/failed: {stats.columns_screened}/"
          f"{stats.columns_confirmed}/{stats.columns_failed}, "
          f"scalar solves: {stats.scalar_solves}")
    return 0


def _cmd_lint(args) -> int:
    import json as json_module

    from repro.lint import lint_scenario, render_text, report_to_dict

    if args.all:
        names = list(available_macros())
        macros = [get_macro(name) for name in names]
    else:
        names = [args.macro]
        macros = [_make_macro(args)]

    payload: dict[str, dict] = {}
    all_ok = True
    for name, macro in zip(names, macros):
        circuit = macro.circuit
        if args.ifa:
            faults = ifa_fault_dictionary(circuit,
                                          nodes=macro.standard_nodes)
        else:
            faults = macro.fault_dictionary()
        configurations = macro.test_configurations()
        report = lint_scenario(circuit, faults, configurations)
        ok = report.ok(strict=args.strict)
        all_ok &= ok
        if args.format == "json":
            payload[name] = report_to_dict(report, strict=args.strict)
        else:
            print(render_text(
                report, strict=args.strict,
                title=f"{name}: {len(circuit)} elements, "
                      f"{len(tuple(faults))} faults, "
                      f"{len(configurations)} configurations"))
    if args.format == "json":
        print(json_module.dumps(payload, indent=2))
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    import asyncio

    # Imported lazily: the serving layer is a downstream consumer of
    # the whole stack, not a dependency of the CLI's other commands.
    from repro.serve import (
        ATPGServer,
        BatchingFrontDoor,
        EnginePool,
        VerdictCache,
    )

    pool = EnginePool(capacity=args.engines)
    cache = VerdictCache(capacity=args.cache_size, spill_path=args.spill)
    frontdoor = BatchingFrontDoor(pool, cache,
                                  window=args.window_ms / 1000.0,
                                  max_batch=args.max_batch)
    server = ATPGServer(frontdoor, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(f"serving on http://{server.host}:{server.port} "
              f"(window {args.window_ms:g} ms, max batch "
              f"{args.max_batch}, {args.engines} engine(s), cache "
              f"{args.cache_size}"
              + (f", spill {args.spill}" if args.spill else "") + ")",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_campaign(args) -> int:
    import json as json_module

    # Imported lazily: the scenario layer sits on top of the whole
    # stack and is only needed by this command group.
    from repro.scenarios import (
        load_spec,
        read_manifest,
        run_campaign,
        summarize_manifest,
    )

    if args.campaign_command == "list":
        spec = load_spec(args.spec)
        cells = spec.cells()
        if args.json:
            print(json_module.dumps({
                "campaign": spec.name,
                "mode": spec.mode,
                "n_cells": len(cells),
                "cells": [{
                    "scenario_id": c.scenario_id,
                    "family": c.family,
                    "parameters": {k: v for k, v in
                                   c.variant.parameters},
                    "corner": c.corner.name,
                    "dictionary": c.dictionary.label,
                } for c in cells],
            }, indent=2))
        else:
            print(f"campaign {spec.name!r} ({spec.mode}): "
                  f"{len(cells)} cells")
            for cell in cells:
                print(f"  {cell.describe()}")
        return 0

    if args.campaign_command == "report":
        records = read_manifest(args.manifest)
        summary = summarize_manifest(records)
        if args.json:
            print(json_module.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(f"{summary['n_cells']} cells: "
              + ", ".join(f"{n} {status}" for status, n
                          in summary["status"].items() if n))
        print(f"faults screened: {summary['total_faults']}, detected: "
              f"{summary['total_detected']}, mean coverage "
              f"{summary['mean_coverage']:.1%}")
        rows = [[family, str(b["cells"]), str(b["ok"]),
                 str(b["faults"]), str(b["detected"])]
                for family, b in sorted(summary["families"].items())]
        print(render_table(["family", "cells", "ok", "faults",
                            "detected"], rows, title="By family"))
        rows = [[corner, str(b["cells"]), str(b["ok"]),
                 str(b["faults"]), str(b["detected"])]
                for corner, b in sorted(summary["corners"].items())]
        print(render_table(["corner", "cells", "ok", "faults",
                            "detected"], rows, title="By corner"))
        return 0

    spec = load_spec(args.spec)
    manifest = args.manifest
    if manifest is None:
        manifest = Path("results") / f"campaign_{spec.name}.jsonl"
    result = run_campaign(spec, manifest, n_jobs=args.jobs,
                          resume=args.resume)
    counts = result.counts
    print(f"campaign {spec.name!r}: ran {result.n_cells} cells "
          f"({counts['ok']} ok, {counts['rejected']} rejected, "
          f"{counts['failed']} failed"
          + (f", {len(result.skipped)} already recorded"
             if result.skipped else "") + ")")
    print(f"manifest: {result.manifest_path}")
    return 0 if counts["failed"] == 0 else 1


_COMMANDS = {
    "describe": _cmd_describe,
    "faults": _cmd_faults,
    "tps": _cmd_tps,
    "generate": _cmd_generate,
    "compact": _cmd_compact,
    "mc": _cmd_mc,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "campaign": _cmd_campaign,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
