"""Package-wide logging setup.

The library never configures the root logger; it only emits through the
``repro`` logger hierarchy so the embedding application stays in control.
``repro.testgen`` uses INFO for per-fault progress and DEBUG for optimizer
traces — enable with::

    import logging
    logging.getLogger("repro").setLevel(logging.INFO)
    logging.basicConfig()
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a child logger of the ``repro`` hierarchy."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
