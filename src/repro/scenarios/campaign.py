"""Campaign runner: execute a sweep spec cell by cell, resumably.

Executes every :class:`~repro.scenarios.spec.CampaignCell` of a spec
through the same pre-flight-gated pipeline:

1. **build** — instantiate the variant's macro from the registry and
   derive its fault dictionary per the cell's dictionary spec; variants
   the family layer rejects (out-of-range axes, malformed quantities)
   never reach this stage, so a failure here is recorded as ``failed``
   with the exception text, never raised out of the campaign;
2. **vet** — run the full :func:`repro.lint.lint_scenario` pass family
   over (corner circuit, dictionary, configurations); any
   error-severity finding marks the cell ``rejected`` and its
   diagnostics land in the manifest record — degenerate variants
   produce actionable reports, not solver crashes;
3. **execute** — apply the cell's process corner and either *screen*
   the dictionary at every configuration's seed vector through
   :func:`repro.testgen.sharding.screen_dictionary_sharded` (the
   default, cheap mode) or run full Fig. 6 *generation*
   (``mode = "generate"``, for small campaigns).

Determinism contract: cells fan out across worker processes grouped by
:func:`repro.hashing.stable_index` of their scenario id — the grouping
depends on the id alone, every cell runs its own shard loop with
``max_workers=1``, and records are written in spec-expansion order.
The manifest is therefore a pure function of the spec: ``n_jobs``
changes wall-clock time only, and the test suite pins the n_jobs=1 vs
n_jobs=4 manifests bitwise.  Records carry no timestamps or host
details for the same reason.

Resume: the manifest is JSON lines keyed by scenario id.  Re-running a
campaign against an existing manifest skips every id already recorded
and appends only the missing cells, so a partial campaign finishes
where it left off (``repro campaign run --resume``).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro._log import get_logger
from repro.errors import ReproError, TestGenerationError
from repro.hashing import content_digest, float_token, stable_index
from repro.lint import lint_scenario
from repro.scenarios.families import get_family
from repro.scenarios.spec import CampaignCell, CampaignSpec, scenario_id
from repro.testgen.sharding import screen_dictionary_sharded

__all__ = [
    "CampaignResult",
    "CellRecord",
    "DEFAULT_CELL_GROUPS",
    "read_manifest",
    "run_campaign",
    "run_cell",
    "summarize_manifest",
]

_LOG = get_logger("scenarios.campaign")

#: Fixed cell-grouping fan-out.  Like the fault-shard count this is
#: deliberately decoupled from ``n_jobs``: group membership is
#: content-addressed on the scenario id, so the partition (and with it
#: every record) is identical no matter how many workers serve it.
DEFAULT_CELL_GROUPS = 16

#: Per-cell fault-dictionary shard count (kept small: campaign cells
#: already parallelize across the pool, each cell screens serially).
CELL_FAULT_SHARDS = 4

#: Manifest statuses a cell can land in.
STATUSES = ("ok", "rejected", "failed")


@dataclass(frozen=True)
class CellRecord:
    """One manifest line: the outcome of one campaign cell."""

    scenario_id: str
    family: str
    parameters: tuple[tuple[str, object], ...]
    corner: str
    dictionary: str
    mode: str
    status: str
    n_faults: int = 0
    n_detected: int = 0
    coverage: float = 0.0
    configurations: tuple[Mapping, ...] = ()
    verdict_digest: str = ""
    diagnostics: tuple[Mapping, ...] = ()
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "family": self.family,
            "parameters": {k: v for k, v in self.parameters},
            "corner": self.corner,
            "dictionary": self.dictionary,
            "mode": self.mode,
            "status": self.status,
            "n_faults": self.n_faults,
            "n_detected": self.n_detected,
            "coverage": self.coverage,
            "configurations": [dict(c) for c in self.configurations],
            "verdict_digest": self.verdict_digest,
            "diagnostics": [dict(d) for d in self.diagnostics],
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> CellRecord:
        return cls(
            scenario_id=payload["scenario_id"],
            family=payload["family"],
            parameters=tuple(sorted(payload["parameters"].items())),
            corner=payload["corner"],
            dictionary=payload["dictionary"],
            mode=payload["mode"],
            status=payload["status"],
            n_faults=payload.get("n_faults", 0),
            n_detected=payload.get("n_detected", 0),
            coverage=payload.get("coverage", 0.0),
            configurations=tuple(payload.get("configurations", ())),
            verdict_digest=payload.get("verdict_digest", ""),
            diagnostics=tuple(payload.get("diagnostics", ())),
            error=payload.get("error", ""))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    spec_name: str
    records: tuple[CellRecord, ...]
    skipped: tuple[str, ...] = ()
    manifest_path: Path | None = None

    @property
    def counts(self) -> dict[str, int]:
        table = {status: 0 for status in STATUSES}
        for record in self.records:
            table[record.status] += 1
        return table

    @property
    def n_cells(self) -> int:
        return len(self.records)


# ----------------------------------------------------------------------
# single-cell execution
# ----------------------------------------------------------------------
def _verdict_digest(config_results: Sequence[Mapping]) -> str:
    """Content address of every per-fault sensitivity in the cell.

    Two runs of the same cell agree on this digest *iff* every screened
    ``S_f`` value matches bitwise across every configuration — the
    quantity the determinism suite compares across worker counts.
    """
    fields: list[str] = ["verdict"]
    for result in config_results:
        for fault_id, value in result["sensitivities"]:
            fields.append(f"{result['name']};{fault_id}="
                          f"{float_token(value)}")
    return content_digest(fields)


def _screen_cell(cell: CampaignCell, macro, faults, circuit,
                 configurations) -> CellRecord:
    """Screen the dictionary at every configuration's seed vector."""
    detected: set[str] = set()
    config_results: list[dict] = []
    for configuration in configurations:
        vector = tuple(p.seed for p in configuration.parameters)
        screen = screen_dictionary_sharded(
            circuit, configuration, list(faults), vector, macro.options,
            n_shards=min(CELL_FAULT_SHARDS, len(faults)), max_workers=1)
        sensitivities = tuple(
            (fault_id, report.value)
            for fault_id, report in zip(screen.fault_ids, screen.reports))
        detected.update(fault_id for fault_id, report
                        in zip(screen.fault_ids, screen.reports)
                        if report.detected)
        config_results.append({
            "name": configuration.description.name,
            "n_detected": screen.n_detected,
            "sensitivities": sensitivities,
        })
    n_faults = len(faults)
    return CellRecord(
        scenario_id=cell.scenario_id,
        family=cell.family,
        parameters=cell.variant.parameters,
        corner=cell.corner.name,
        dictionary=cell.dictionary.label,
        mode="screen",
        status="ok",
        n_faults=n_faults,
        n_detected=len(detected),
        coverage=len(detected) / n_faults if n_faults else 0.0,
        configurations=tuple(
            {"name": r["name"], "n_detected": r["n_detected"]}
            for r in config_results),
        verdict_digest=_verdict_digest(config_results))


def _generate_cell(cell: CampaignCell, macro, faults, circuit,
                   configurations) -> CellRecord:
    """Full Fig. 6 generation for one cell (small campaigns only)."""
    from repro.testgen.generator import generate_tests

    result = generate_tests(circuit, configurations, list(faults),
                            options=macro.options, n_jobs=1)
    n_faults = len(faults)
    per_config = [
        {"name": name, "n_detected": sum(counts.values())}
        for name, counts in sorted(result.distribution().items())]
    sensitivities = tuple(
        (test.fault.fault_id, test.sensitivity_at_critical)
        for test in result.tests)
    return CellRecord(
        scenario_id=cell.scenario_id,
        family=cell.family,
        parameters=cell.variant.parameters,
        corner=cell.corner.name,
        dictionary=cell.dictionary.label,
        mode="generate",
        status="ok",
        n_faults=n_faults,
        n_detected=result.n_detected,
        coverage=result.n_detected / n_faults if n_faults else 0.0,
        configurations=tuple(per_config),
        verdict_digest=_verdict_digest(
            [{"name": "generate", "sensitivities": sensitivities}]))


def run_cell(cell: CampaignCell, mode: str = "screen") -> CellRecord:
    """Execute one cell: build, lint-vet, then screen or generate.

    Never raises for per-cell problems — build/derivation errors come
    back as ``failed`` records and lint findings as ``rejected``
    records, so one degenerate variant cannot take down a campaign.
    """
    base = dict(scenario_id=cell.scenario_id, family=cell.family,
                parameters=cell.variant.parameters,
                corner=cell.corner.name,
                dictionary=cell.dictionary.label, mode=mode)
    try:
        macro = cell.variant.build_macro()
        faults = cell.dictionary.derive(macro)
        configurations = macro.test_configurations(box_mode="fast")
        corner_circuit = cell.corner.apply(
            macro.circuit, variation=macro.process_variation)
        report = lint_scenario(corner_circuit, faults, configurations)
        if not report.ok(strict=False):
            return CellRecord(**base, status="rejected",
                              n_faults=len(faults),
                              diagnostics=tuple(
                                  d.to_dict() for d in report.diagnostics
                                  if d.severity == "error"))
        if mode == "generate":
            return _generate_cell(cell, macro, faults, corner_circuit,
                                  configurations)
        return _screen_cell(cell, macro, faults, corner_circuit,
                            configurations)
    except ReproError as exc:
        return CellRecord(**base, status="failed",
                          error=f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# campaign fan-out
# ----------------------------------------------------------------------
def _cell_descriptor(cell: CampaignCell) -> tuple:
    """Picklable, registry-independent handle of one cell.

    Workers rebuild cells through the family registry instead of
    unpickling family objects, so a campaign never depends on how a
    family instance happens to serialize.
    """
    return (cell.family, cell.variant.parameters, cell.corner,
            cell.dictionary)


def _run_cell_group(descriptors: Sequence[tuple],
                    mode: str) -> list[CellRecord]:
    """Worker-side entry point: run one content-addressed cell group."""
    records = []
    for family_name, parameters, corner, dictionary in descriptors:
        variant = get_family(family_name).variant(dict(parameters))
        cell = CampaignCell(
            scenario_id=scenario_id(variant, corner, dictionary),
            variant=variant, corner=corner, dictionary=dictionary)
        records.append(run_cell(cell, mode))
    return records


def run_campaign(
    spec: CampaignSpec,
    manifest_path: Path | str | None = None,
    *,
    n_jobs: int = 1,
    resume: bool = False,
    cell_groups: int = DEFAULT_CELL_GROUPS,
) -> CampaignResult:
    """Run every cell of *spec*, appending records to the manifest.

    Args:
        spec: the parsed sweep specification.
        manifest_path: JSON-lines manifest to write (and, with
            *resume*, to consult).  ``None`` keeps records in memory.
        n_jobs: worker processes for the cell fan-out; results are
            bitwise independent of this value.
        resume: skip cells whose scenario ids the manifest already
            records and append only the missing ones.
        cell_groups: content-addressed group count (fixed partition;
            not a tuning knob for parallelism — use *n_jobs*).
    """
    if cell_groups < 1:
        raise TestGenerationError(
            f"cell_groups must be >= 1, got {cell_groups}")
    cells = spec.cells()
    done: dict[str, CellRecord] = {}
    if resume and manifest_path is not None:
        path = Path(manifest_path)
        if path.exists():
            done = {r.scenario_id: r for r in read_manifest(path)}
    pending = [c for c in cells if c.scenario_id not in done]
    skipped = tuple(c.scenario_id for c in cells
                    if c.scenario_id in done)
    _LOG.info("campaign %s: %d cells (%d pending, %d already recorded)",
              spec.name, len(cells), len(pending), len(skipped))

    groups: list[list[CampaignCell]] = [[] for _ in range(cell_groups)]
    for cell in pending:
        groups[stable_index(cell.scenario_id, cell_groups)].append(cell)
    work = [group for group in groups if group]

    n_jobs = max(1, min(n_jobs, len(work))) if work else 1
    if n_jobs == 1:
        group_results = [_run_cell_group(
            [_cell_descriptor(c) for c in group], spec.mode)
            for group in work]
    else:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures = [pool.submit(_run_cell_group,
                                   [_cell_descriptor(c) for c in group],
                                   spec.mode)
                       for group in work]
            group_results = [f.result() for f in futures]

    by_id: dict[str, CellRecord] = {}
    for records in group_results:
        for record in records:
            by_id[record.scenario_id] = record
    ordered = tuple(by_id[c.scenario_id] for c in pending)

    path = None
    if manifest_path is not None:
        path = Path(manifest_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_mode = "a" if (resume and path.exists()) else "w"
        with path.open(write_mode) as handle:
            for record in ordered:
                handle.write(record.to_json() + "\n")
    return CampaignResult(spec_name=spec.name, records=ordered,
                          skipped=skipped, manifest_path=path)


# ----------------------------------------------------------------------
# manifest reading / reporting
# ----------------------------------------------------------------------
def read_manifest(path: Path | str) -> tuple[CellRecord, ...]:
    """Parse a JSON-lines campaign manifest."""
    path = Path(path)
    if not path.exists():
        raise TestGenerationError(f"no such manifest: {path}")
    records: list[CellRecord] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(CellRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as exc:
            raise TestGenerationError(
                f"malformed manifest line {lineno} in {path}: {exc}"
                ) from None
    return tuple(records)


def summarize_manifest(records: Sequence[CellRecord]) -> dict:
    """Aggregate manifest records into a campaign report table."""
    summary: dict = {
        "n_cells": len(records),
        "status": {status: 0 for status in STATUSES},
        "families": {},
        "corners": {},
        "total_faults": 0,
        "total_detected": 0,
    }
    for record in records:
        summary["status"][record.status] = (
            summary["status"].get(record.status, 0) + 1)
        summary["total_faults"] += record.n_faults
        summary["total_detected"] += record.n_detected
        for key, bucket_name in ((record.family, "families"),
                                 (record.corner, "corners")):
            bucket = summary[bucket_name].setdefault(
                key, {"cells": 0, "ok": 0, "faults": 0, "detected": 0})
            bucket["cells"] += 1
            bucket["faults"] += record.n_faults
            bucket["detected"] += record.n_detected
            if record.status == "ok":
                bucket["ok"] += 1
    ok_records = [r for r in records if r.status == "ok"]
    summary["mean_coverage"] = (
        sum(r.coverage for r in ok_records) / len(ok_records)
        if ok_records else 0.0)
    return summary
