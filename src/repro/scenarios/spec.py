"""Campaign sweep specs: config files that span the scenario space.

A sweep spec is a small TOML (or JSON) document declaring the three
campaign axes — topology families with per-axis value grids, process
corners, and dictionary derivations — plus the execution mode.  Loading
a spec validates everything *before* any simulation: unknown families,
out-of-range axis values, unknown corners and malformed dictionary
clauses all fail at parse time with the offending clause named.

Example (TOML)::

    [campaign]
    name = "ladder-sweep"
    mode = "screen"                  # "screen" (default) | "generate"

    [[topologies]]
    family = "active-filter"
    [topologies.axes]
    n_sections = [4, 8, 12]
    fault_top_n = [12]

    [[topologies]]
    family = "rc-ladder"
    [topologies.axes]
    n_sections = [2, 3, 4]

    corners = ["tt", "ss", "ff"]     # shipped library names

    [[custom_corners]]               # optional inline corner points
    name = "res-up"
    resistor = 2.0

    [[dictionaries]]
    label = "ifa12"
    kind = "ifa"
    top_n = 12

The cell list is the cross product *topologies x corners x
dictionaries*, expanded in declaration order (axes sorted by name
within a topology clause), and every cell carries a **scenario id**:
a BLAKE2b content address of its (family+parameters, corner, dictionary)
tokens via :mod:`repro.hashing`.  Ids are injective over distinct
parameter tuples and independent of declaration order, worker count and
Python hash seed — they key the campaign manifest and its resume
semantics (see :mod:`repro.scenarios.campaign`).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TestGenerationError
from repro.hashing import content_digest
from repro.scenarios.families import (
    DictionarySpec,
    TopologyVariant,
    get_family,
)
from repro.tolerance.corners import ProcessCorner, get_corner

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "TopologySweep",
    "expand_cells",
    "load_spec",
    "parse_spec",
    "scenario_id",
]

#: Supported execution modes of a campaign cell.
MODES = ("screen", "generate")


def scenario_id(variant: TopologyVariant, corner: ProcessCorner,
                dictionary: DictionarySpec) -> str:
    """Content address of one (topology, corner, dictionary) scenario.

    A pure function of the three canonical tokens — two cells collide
    *iff* they are the same family at the same parameter tuple under
    the same corner draws and dictionary derivation.
    """
    return content_digest(("scenario", variant.token(), corner.token(),
                           dictionary.token()))


@dataclass(frozen=True)
class TopologySweep:
    """One ``[[topologies]]`` clause: a family plus per-axis grids."""

    family: str
    axes: tuple[tuple[str, tuple], ...] = ()

    def expand(self) -> tuple[TopologyVariant, ...]:
        """All variants of this clause (validated)."""
        return get_family(self.family).expand(
            {name: values for name, values in self.axes})


@dataclass(frozen=True)
class CampaignCell:
    """One executable (topology x corner x dictionary) scenario."""

    scenario_id: str
    variant: TopologyVariant
    corner: ProcessCorner
    dictionary: DictionarySpec

    @property
    def family(self) -> str:
        return self.variant.family.name

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in
                           self.variant.parameters) or "default"
        return (f"{self.scenario_id[:12]}  {self.family:<18s} "
                f"[{params}] corner={self.corner.name} "
                f"dict={self.dictionary.label}")


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated sweep specification."""

    name: str
    mode: str = "screen"
    topologies: tuple[TopologySweep, ...] = ()
    corners: tuple[ProcessCorner, ...] = ()
    dictionaries: tuple[DictionarySpec, ...] = field(
        default_factory=lambda: (DictionarySpec(),))

    def __post_init__(self) -> None:
        if not self.name:
            raise TestGenerationError("campaign spec needs a name")
        if self.mode not in MODES:
            raise TestGenerationError(
                f"campaign mode must be one of {MODES}, got {self.mode!r}")
        if not self.topologies:
            raise TestGenerationError(
                "campaign spec needs at least one [[topologies]] clause")
        if not self.corners:
            raise TestGenerationError(
                "campaign spec needs at least one corner")
        if not self.dictionaries:
            raise TestGenerationError(
                "campaign spec needs at least one dictionary")
        labels = [d.label for d in self.dictionaries]
        if len(set(labels)) != len(labels):
            raise TestGenerationError(
                f"dictionary labels must be unique, got {labels}")
        names = [c.name for c in self.corners]
        if len(set(names)) != len(names):
            raise TestGenerationError(
                f"corner names must be unique, got {names}")

    def cells(self) -> tuple[CampaignCell, ...]:
        """Expand the full cross product, in declaration order."""
        return expand_cells(self)


def expand_cells(spec: CampaignSpec) -> tuple[CampaignCell, ...]:
    """The spec's cell list: topologies x corners x dictionaries.

    Scenario ids must be unique across the expansion (duplicate cells
    in a spec are almost certainly an authoring mistake, and the
    manifest keys on the id).
    """
    cells: list[CampaignCell] = []
    seen: dict[str, CampaignCell] = {}
    for sweep in spec.topologies:
        for variant in sweep.expand():
            for corner in spec.corners:
                for dictionary in spec.dictionaries:
                    sid = scenario_id(variant, corner, dictionary)
                    if sid in seen:
                        raise TestGenerationError(
                            f"duplicate scenario in spec "
                            f"{spec.name!r}: "
                            f"{seen[sid].describe()} repeats")
                    cell = CampaignCell(scenario_id=sid, variant=variant,
                                        corner=corner,
                                        dictionary=dictionary)
                    seen[sid] = cell
                    cells.append(cell)
    return tuple(cells)


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _require_table(payload, key: str, where: str) -> Mapping:
    value = payload.get(key, {})
    if not isinstance(value, Mapping):
        raise TestGenerationError(
            f"{where}: {key!r} must be a table, got {type(value).__name__}")
    return value


def _parse_topologies(payload) -> tuple[TopologySweep, ...]:
    clauses = payload.get("topologies", ())
    if isinstance(clauses, Mapping):
        clauses = (clauses,)
    sweeps: list[TopologySweep] = []
    for i, clause in enumerate(clauses):
        if not isinstance(clause, Mapping) or "family" not in clause:
            raise TestGenerationError(
                f"[[topologies]] clause {i}: needs a 'family' key")
        axes_table = _require_table(clause, "axes",
                                    f"[[topologies]] clause {i}")
        axes = tuple(sorted(
            (name, tuple(values if isinstance(values, Sequence)
                         and not isinstance(values, str) else (values,)))
            for name, values in axes_table.items()))
        sweeps.append(TopologySweep(family=str(clause["family"]),
                                    axes=axes))
    return tuple(sweeps)


def _parse_corners(payload) -> tuple[ProcessCorner, ...]:
    corners: list[ProcessCorner] = []
    names = payload.get("corners", None)
    if names is not None:
        if isinstance(names, str):
            names = (names,)
        corners.extend(get_corner(str(name)) for name in names)
    for i, clause in enumerate(payload.get("custom_corners", ())):
        if not isinstance(clause, Mapping) or "name" not in clause:
            raise TestGenerationError(
                f"[[custom_corners]] clause {i}: needs a 'name' key")
        kwargs = dict(clause)
        name = str(kwargs.pop("name"))
        try:
            corners.append(ProcessCorner(name=name, **{
                key: float(value) for key, value in kwargs.items()}))
        except TypeError as exc:
            raise TestGenerationError(
                f"[[custom_corners]] clause {i} ({name!r}): {exc}"
                ) from None
    if not corners:
        corners.append(get_corner("tt"))
    return tuple(corners)


def _parse_dictionaries(payload) -> tuple[DictionarySpec, ...]:
    clauses = payload.get("dictionaries", ())
    specs: list[DictionarySpec] = []
    for i, clause in enumerate(clauses):
        if not isinstance(clause, Mapping):
            raise TestGenerationError(
                f"[[dictionaries]] clause {i}: must be a table")
        kwargs = dict(clause)
        unknown = set(kwargs) - {"label", "kind", "top_n",
                                 "min_likelihood"}
        if unknown:
            raise TestGenerationError(
                f"[[dictionaries]] clause {i}: unknown key(s) "
                f"{sorted(unknown)}")
        specs.append(DictionarySpec(
            label=str(kwargs.get("label", kwargs.get("kind", "ifa"))),
            kind=str(kwargs.get("kind", "ifa")),
            top_n=(None if kwargs.get("top_n") is None
                   else int(kwargs["top_n"])),
            min_likelihood=float(kwargs.get("min_likelihood", 0.0))))
    if not specs:
        specs.append(DictionarySpec())
    return tuple(specs)


def parse_spec(payload: Mapping, *,
               default_name: str = "campaign") -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from a parsed document."""
    if not isinstance(payload, Mapping):
        raise TestGenerationError(
            f"campaign spec must be a table/object at the top level, "
            f"got {type(payload).__name__}")
    header = _require_table(payload, "campaign", "spec")
    known_top = {"campaign", "topologies", "corners", "custom_corners",
                 "dictionaries"}
    unknown = set(payload) - known_top
    if unknown:
        raise TestGenerationError(
            f"unknown top-level spec key(s): {sorted(unknown)}")
    return CampaignSpec(
        name=str(header.get("name", default_name)),
        mode=str(header.get("mode", "screen")),
        topologies=_parse_topologies(payload),
        corners=_parse_corners(payload),
        dictionaries=_parse_dictionaries(payload))


def load_spec(path: Path | str) -> CampaignSpec:
    """Load a sweep spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if not path.exists():
        raise TestGenerationError(f"no such sweep spec: {path}")
    text = path.read_text()
    if path.suffix.lower() == ".json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TestGenerationError(
                f"malformed JSON sweep spec {path}: {exc}") from None
    elif path.suffix.lower() == ".toml":
        import tomllib
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise TestGenerationError(
                f"malformed TOML sweep spec {path}: {exc}") from None
    else:
        raise TestGenerationError(
            f"sweep spec must be .toml or .json, got {path.suffix!r}")
    return parse_spec(payload, default_name=path.stem)
