"""Parameterized topology families: the campaign's topology axis.

A **topology family** turns one registered macro type into an enumerable
space of circuit variants: each axis maps a spec-file value onto a macro
constructor argument, with type and range validation *before* any
circuit is built, so a sweep over thousands of cells fails fast on a
typo instead of deep inside a worker.  Expanding a family at a parameter
point yields a :class:`TopologyVariant` — a frozen (family, parameters)
record that can

* instantiate its :class:`~repro.macros.base.Macro` on demand (cheap,
  repeatable, safe to do independently on every worker),
* derive its fault dictionary from the chosen
  :class:`DictionarySpec` (IFA-weighted from netlist adjacency and
  device gate sites, or the paper's exhaustive enumeration),
* produce a canonical parameter token stream for content addressing —
  two variants share a scenario id *iff* they are the same family at
  the same parameter tuple.

The shipped families cover the macro zoo: the N-section RC and
active-RC ladders sweep their section grids; the two-stage op-amp
sweeps bias / mirror / compensation axes; the folded-cascode OTA sweeps
supply and mirror width.  ``register_family`` is the extension hook,
mirroring :func:`repro.macros.register_macro`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import TestGenerationError
from repro.faults.dictionary import (
    FaultDictionary,
    exhaustive_fault_dictionary,
)
from repro.faults.ifa import ifa_fault_dictionary
from repro.hashing import float_token
from repro.macros.base import Macro
from repro.macros.registry import get_macro_class
from repro.units import parse_value

__all__ = [
    "AxisSpec",
    "TopologyFamily",
    "TopologyVariant",
    "DictionarySpec",
    "available_families",
    "get_family",
    "register_family",
]


@dataclass(frozen=True)
class AxisSpec:
    """One sweepable constructor argument of a topology family.

    Attributes:
        name: axis name as it appears in sweep specs *and* in the macro
            constructor signature.
        kind: ``"int"`` | ``"float"`` | ``"quantity"`` (a number or a
            unit-suffixed string like ``"10p"``, resolved through
            :func:`repro.units.parse_value` for validation but passed
            to the constructor verbatim).
        lower / upper: inclusive numeric bounds (quantities are bounded
            on their parsed value); ``None`` leaves the side open.
        description: one-liner for ``repro campaign list``.
    """

    name: str
    kind: str = "float"
    lower: float | None = None
    upper: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float", "quantity"):
            raise TestGenerationError(
                f"axis {self.name!r}: kind must be int, float or "
                f"quantity, got {self.kind!r}")

    def validate(self, value):
        """Check one sweep value against the axis; return it coerced.

        ``int`` axes coerce integral floats, ``float`` axes coerce any
        real number, ``quantity`` axes accept numbers or unit strings.
        Raises :class:`~repro.errors.TestGenerationError` with the axis
        name on any mismatch — the campaign layer surfaces these as
        per-cell diagnostics, never tracebacks.
        """
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)) or float(value) != int(value):
                raise TestGenerationError(
                    f"axis {self.name!r} expects an integer, "
                    f"got {value!r}")
            coerced, numeric = int(value), float(value)
        elif self.kind == "float":
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)):
                raise TestGenerationError(
                    f"axis {self.name!r} expects a number, got {value!r}")
            coerced, numeric = float(value), float(value)
        else:
            if isinstance(value, str):
                numeric = parse_value(value)
                coerced = value
            elif isinstance(value, (int, float)) and not isinstance(
                    value, bool):
                coerced, numeric = float(value), float(value)
            else:
                raise TestGenerationError(
                    f"axis {self.name!r} expects a number or a unit "
                    f"string, got {value!r}")
        if self.lower is not None and numeric < self.lower:
            raise TestGenerationError(
                f"axis {self.name!r}: {value!r} below lower bound "
                f"{self.lower:g}")
        if self.upper is not None and numeric > self.upper:
            raise TestGenerationError(
                f"axis {self.name!r}: {value!r} above upper bound "
                f"{self.upper:g}")
        return coerced

    def token(self, value) -> str:
        """Canonical ``name=value`` token for content addressing."""
        if isinstance(value, str):
            return f"{self.name}={value}"
        if isinstance(value, int):
            return f"{self.name}={value}"
        return f"{self.name}={float_token(value)}"


@dataclass(frozen=True)
class DictionarySpec:
    """How a variant's fault dictionary is derived from its netlist.

    Attributes:
        label: short name of this derivation (the campaign's dictionary
            axis value; appears in scenario ids and manifests).
        kind: ``"ifa"`` (adjacency-weighted bridges from the netlist,
            gate-area-weighted pinholes from the device sites) or
            ``"exhaustive"`` (the paper's all-pairs + all-devices list).
        top_n: keep only the N most likely faults (IFA only).
        min_likelihood: drop faults below this normalized likelihood
            (IFA only).
    """

    label: str = "ifa"
    kind: str = "ifa"
    top_n: int | None = None
    min_likelihood: float = 0.0

    def __post_init__(self) -> None:
        if not self.label:
            raise TestGenerationError("dictionary spec needs a label")
        if self.kind not in ("ifa", "exhaustive"):
            raise TestGenerationError(
                f"dictionary kind must be 'ifa' or 'exhaustive', "
                f"got {self.kind!r}")
        if self.kind == "exhaustive" and (self.top_n is not None
                                          or self.min_likelihood > 0.0):
            raise TestGenerationError(
                "top_n/min_likelihood only apply to IFA dictionaries")
        if self.top_n is not None and self.top_n < 1:
            raise TestGenerationError(
                f"dictionary top_n must be >= 1, got {self.top_n}")

    def derive(self, macro: Macro) -> FaultDictionary:
        """Build the dictionary for one macro variant."""
        if self.kind == "exhaustive":
            return exhaustive_fault_dictionary(
                macro.circuit, nodes=macro.standard_nodes)
        return ifa_fault_dictionary(
            macro.circuit, nodes=macro.standard_nodes,
            min_likelihood=self.min_likelihood, top_n=self.top_n)

    def token(self) -> str:
        """Canonical token for content addressing."""
        parts = [self.label, self.kind]
        if self.top_n is not None:
            parts.append(f"top={self.top_n}")
        if self.min_likelihood > 0.0:
            parts.append(f"min={float_token(self.min_likelihood)}")
        return ";".join(parts)


@dataclass(frozen=True)
class TopologyFamily:
    """An enumerable space of variants of one registered macro type.

    Attributes:
        name: family name used in sweep specs (defaults to the macro
            type it wraps).
        macro_type: the :mod:`repro.macros.registry` key.
        axes: sweepable constructor arguments.
        description: one-liner for ``repro campaign list``.
    """

    name: str
    macro_type: str
    axes: tuple[AxisSpec, ...] = ()
    description: str = ""

    def axis(self, name: str) -> AxisSpec:
        """Look up one axis by name."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise TestGenerationError(
            f"family {self.name!r} has no axis {name!r}; "
            f"axes: {[a.name for a in self.axes]}")

    def variant(self, parameters: Mapping | None = None,
                ) -> "TopologyVariant":
        """Validate a parameter point and freeze it as a variant."""
        parameters = dict(parameters or {})
        validated: dict = {}
        for name in sorted(parameters):
            validated[name] = self.axis(name).validate(parameters[name])
        return TopologyVariant(family=self, parameters=tuple(
            sorted(validated.items())))

    def expand(self, axis_values: Mapping[str, Iterable] | None = None,
               ) -> tuple["TopologyVariant", ...]:
        """Cross-product of the given per-axis value lists.

        ``{"n_sections": [4, 8], "supply": [4.5, 5.0]}`` yields four
        variants.  Axes left out keep their macro-constructor defaults;
        an empty mapping yields the single default variant.  Expansion
        order is deterministic: axes sorted by name, values in the
        given order.
        """
        axis_values = dict(axis_values or {})
        if not axis_values:
            return (self.variant(),)
        names = sorted(axis_values)
        for name in names:
            if not tuple(axis_values[name]):
                raise TestGenerationError(
                    f"family {self.name!r}: axis {name!r} swept over an "
                    "empty value list")
        points: list[dict] = [{}]
        for name in names:
            points = [dict(point, **{name: value})
                      for point in points
                      for value in axis_values[name]]
        return tuple(self.variant(point) for point in points)


@dataclass(frozen=True)
class TopologyVariant:
    """One frozen parameter point of a topology family."""

    family: TopologyFamily
    parameters: tuple[tuple[str, object], ...] = field(default=())

    @property
    def params(self) -> dict:
        """The parameter point as a plain mapping."""
        return dict(self.parameters)

    def build_macro(self) -> Macro:
        """Instantiate the variant's macro (fresh every call)."""
        macro_class = get_macro_class(self.family.macro_type)
        return macro_class(**self.params)

    def dictionary(self, spec: DictionarySpec) -> FaultDictionary:
        """Auto-derive the variant's fault dictionary under *spec*."""
        return spec.derive(self.build_macro())

    def token(self) -> str:
        """Canonical family+parameters token for content addressing."""
        parts = [self.family.name]
        parts.extend(self.family.axis(name).token(value)
                     for name, value in self.parameters)
        return ";".join(parts)

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.parameters)
        return f"TopologyVariant({self.family.name}, {params or 'default'})"


# ----------------------------------------------------------------------
# family registry
# ----------------------------------------------------------------------
_FAMILIES: dict[str, TopologyFamily] = {}


def register_family(family: TopologyFamily,
                    overwrite: bool = False) -> TopologyFamily:
    """Register a topology family under its name."""
    if family.name in _FAMILIES and not overwrite:
        raise TestGenerationError(
            f"topology family {family.name!r} already registered "
            "(pass overwrite=True to replace)")
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> TopologyFamily:
    """Look up a registered family by name."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise TestGenerationError(
            f"unknown topology family {name!r}; "
            f"available: {sorted(_FAMILIES)}") from None


def available_families() -> tuple[str, ...]:
    """Registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


# ----------------------------------------------------------------------
# the shipped families (one per zoo macro type)
# ----------------------------------------------------------------------
register_family(TopologyFamily(
    name="rc-ladder", macro_type="rc-ladder",
    description="N-section passive RC ladder (fast linear vehicle)",
    axes=(AxisSpec("n_sections", "int", lower=2, upper=64,
                   description="chained RC sections"),)))

register_family(TopologyFamily(
    name="active-filter", macro_type="active-filter",
    description="N-section active-RC ladder (sparse-backend scale)",
    axes=(AxisSpec("n_sections", "int", lower=2, upper=2000,
                   description="chained gm-inverter sections"),
          AxisSpec("fault_top_n", "int", lower=1,
                   description="IFA dictionary trim of the shipped "
                               "macro dictionary"))))

register_family(TopologyFamily(
    name="two-stage-opamp", macro_type="two-stage-opamp",
    description="Miller op-amp over bias/mirror/compensation axes",
    axes=(AxisSpec("supply", "float", lower=3.0, upper=6.0,
                   description="supply voltage [V]"),
          AxisSpec("bias_r", "quantity", lower=50e3, upper=1e6,
                   description="bias-chain resistor"),
          AxisSpec("mirror_w", "quantity", lower=10e-6, upper=200e-6,
                   description="first-stage mirror width"),
          AxisSpec("c_comp", "quantity", lower=1e-12, upper=100e-12,
                   description="Miller capacitor"),
          AxisSpec("r_zero", "quantity", lower=100.0, upper=50e3,
                   description="Miller zero-nulling resistor"))))

register_family(TopologyFamily(
    name="folded-cascode-ota", macro_type="folded-cascode-ota",
    description="Folded-cascode OTA over supply/mirror axes",
    axes=(AxisSpec("supply", "float", lower=4.0, upper=6.0,
                   description="supply voltage [V]"),
          AxisSpec("mirror_w", "quantity", lower=20e-6, upper=200e-6,
                   description="PMOS mirror/cascode width"))))

register_family(TopologyFamily(
    name="iv-converter", macro_type="iv-converter",
    description="the paper's IV-converter (single variant)"))
