"""Scenario generation at scale: families x corners x dictionaries.

Expands the hand-built macro zoo into an *enumerable scenario space*:
parameterized topology families (:mod:`repro.scenarios.families`),
config-file sweep specs with content-addressed scenario ids
(:mod:`repro.scenarios.spec`) and a resumable, deterministic campaign
runner that fans every cell through the sharded executors
(:mod:`repro.scenarios.campaign`).  Surfaced on the command line as
``repro campaign run|list|report``.
"""

from repro.scenarios.campaign import (
    CampaignResult,
    CellRecord,
    read_manifest,
    run_campaign,
    run_cell,
    summarize_manifest,
)
from repro.scenarios.families import (
    AxisSpec,
    DictionarySpec,
    TopologyFamily,
    TopologyVariant,
    available_families,
    get_family,
    register_family,
)
from repro.scenarios.spec import (
    CampaignCell,
    CampaignSpec,
    TopologySweep,
    expand_cells,
    load_spec,
    parse_spec,
    scenario_id,
)

__all__ = [
    "AxisSpec",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "CellRecord",
    "DictionarySpec",
    "TopologyFamily",
    "TopologySweep",
    "TopologyVariant",
    "available_families",
    "expand_cells",
    "get_family",
    "load_spec",
    "parse_spec",
    "read_manifest",
    "register_family",
    "run_campaign",
    "run_cell",
    "scenario_id",
    "summarize_manifest",
]
