"""Measurement post-processing: sampling, THD, scalar deviation metrics."""

from repro.measure.metrics import (
    accumulated_deviation,
    max_abs_deviation,
    overshoot,
    peak_to_peak,
    rms,
    settling_time,
)
from repro.measure.sampling import resample, steady_state_periods, window
from repro.measure.thd import harmonic_amplitudes, thd_percent

__all__ = [
    "window",
    "resample",
    "steady_state_periods",
    "harmonic_amplitudes",
    "thd_percent",
    "max_abs_deviation",
    "accumulated_deviation",
    "rms",
    "peak_to_peak",
    "settling_time",
    "overshoot",
]
