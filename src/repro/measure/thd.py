"""Total harmonic distortion measurement.

The paper's configuration #3 returns the THD of the IV-converter output
under sine stimulation (Figs 2-4 legend: "a THD measurement for
IV-converter macros").  We compute THD the way an analog tester's DSP
option does: window an integer number of steady-state periods, take the
DFT at the exact harmonic bins, and report

    THD = sqrt(sum_{h=2..H} |X_h|^2) / |X_1|    (as a percentage)

Because the analysis window is an integer number of periods of the
*stimulus* frequency and the samples are uniform, the harmonic bins land
exactly on DFT bins and no window function is needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["harmonic_amplitudes", "thd_percent"]


def harmonic_amplitudes(values: np.ndarray, samples_per_period: int,
                        n_periods: int, n_harmonics: int) -> np.ndarray:
    """Amplitudes of harmonics 1..n_harmonics of a periodic waveform.

    Args:
        values: uniformly sampled waveform covering exactly
            ``n_periods * samples_per_period`` samples (trailing samples
            beyond that are ignored; a leading remainder is an error).
        samples_per_period: integration samples per stimulus period.
        n_periods: whole periods contained in the window.
        n_harmonics: number of harmonics to report.

    Returns:
        Array of length *n_harmonics* with peak amplitudes (same unit as
        the input waveform).
    """
    n = samples_per_period * n_periods
    if len(values) < n:
        raise ValueError(
            f"need {n} samples ({n_periods} periods x {samples_per_period}), "
            f"got {len(values)}")
    x = np.asarray(values[-n:], dtype=float)
    spectrum = np.fft.rfft(x - np.mean(x))
    # Harmonic h of the stimulus sits at bin h*n_periods.
    bins = n_periods * np.arange(1, n_harmonics + 1)
    if bins[-1] >= len(spectrum):
        raise ValueError(
            f"{n_harmonics} harmonics exceed Nyquist for "
            f"{samples_per_period} samples/period")
    return 2.0 * np.abs(spectrum[bins]) / n


def thd_percent(values: np.ndarray, samples_per_period: int,
                n_periods: int, n_harmonics: int = 5) -> float:
    """THD in percent over harmonics 2..n_harmonics.

    A vanishing fundamental (dead output) returns ``inf`` — a dead node is
    maximally distorted as far as fault detection is concerned, and the
    tolerance-box comparison handles the infinity gracefully.
    """
    amplitudes = harmonic_amplitudes(values, samples_per_period, n_periods,
                                     n_harmonics)
    fundamental = amplitudes[0]
    harmonics = amplitudes[1:]
    if fundamental <= 0.0 or not np.isfinite(fundamental):
        return float("inf")
    return float(100.0 * np.sqrt(np.sum(harmonics**2)) / fundamental)
