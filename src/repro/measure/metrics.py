"""Scalar metrics over waveforms and over nominal/faulty waveform pairs.

The paper's test configurations post-process observed waveforms into
scalar *return values* (Table 1): DC deviations, ``Max(|dV(t_i)|)`` over
transient samples, accumulated deviations, THD deltas.  These helpers are
the vocabulary those return-value definitions are built from.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "max_abs_deviation",
    "accumulated_deviation",
    "rms",
    "peak_to_peak",
    "settling_time",
    "overshoot",
]


def max_abs_deviation(nominal: np.ndarray, observed: np.ndarray) -> float:
    """``Max_i |observed_i - nominal_i|`` (paper's Max(|dV|) return value)."""
    nominal = np.asarray(nominal, float)
    observed = np.asarray(observed, float)
    if nominal.shape != observed.shape:
        raise ValueError(
            f"waveform shapes differ: {nominal.shape} vs {observed.shape}")
    return float(np.max(np.abs(observed - nominal)))


def accumulated_deviation(nominal: np.ndarray, observed: np.ndarray,
                          normalize: bool = True) -> float:
    """Accumulated absolute deviation over samples (paper's sigma-V).

    With ``normalize=True`` the sum is divided by the sample count, making
    the value a mean absolute deviation — independent of the sample rate,
    which keeps tolerance boxes comparable when the rate variable changes.
    """
    nominal = np.asarray(nominal, float)
    observed = np.asarray(observed, float)
    if nominal.shape != observed.shape:
        raise ValueError(
            f"waveform shapes differ: {nominal.shape} vs {observed.shape}")
    total = float(np.sum(np.abs(observed - nominal)))
    return total / len(nominal) if normalize else total


def rms(values: np.ndarray) -> float:
    """Root-mean-square of a waveform."""
    values = np.asarray(values, float)
    return float(np.sqrt(np.mean(values**2)))


def peak_to_peak(values: np.ndarray) -> float:
    """Max minus min of a waveform."""
    values = np.asarray(values, float)
    return float(np.max(values) - np.min(values))


def settling_time(t: np.ndarray, values: np.ndarray, final_value: float,
                  tolerance: float) -> float:
    """Time after which the waveform stays within ``+-tolerance`` of final.

    Returns ``t[-1]`` if the waveform never settles (useful as a bounded
    "did not settle" sentinel in return values).
    """
    t = np.asarray(t, float)
    values = np.asarray(values, float)
    outside = np.abs(values - final_value) > tolerance
    if not np.any(outside):
        return float(t[0])
    last_outside = int(np.max(np.nonzero(outside)[0]))
    if last_outside + 1 >= len(t):
        return float(t[-1])
    return float(t[last_outside + 1])


def overshoot(values: np.ndarray, initial_value: float,
              final_value: float) -> float:
    """Fractional overshoot of a step response (0.0 when monotonic)."""
    values = np.asarray(values, float)
    swing = final_value - initial_value
    if swing == 0.0:
        return 0.0
    if swing > 0:
        peak = float(np.max(values))
        return max(0.0, (peak - final_value) / abs(swing))
    trough = float(np.min(values))
    return max(0.0, (final_value - trough) / abs(swing))
