"""Waveform sampling helpers.

Test configurations express observation as "sample node X at rate S for
time T" (paper Fig. 1).  Since the transient engine integrates on exactly
that grid, these helpers mostly select and window samples; resampling is
provided for post-processing at a rate different from the integration grid.
"""

from __future__ import annotations

import numpy as np

__all__ = ["window", "resample", "steady_state_periods"]


def window(t: np.ndarray, values: np.ndarray, t_from: float,
           t_to: float) -> tuple[np.ndarray, np.ndarray]:
    """Return the samples with ``t_from <= t <= t_to`` (inclusive)."""
    t = np.asarray(t, float)
    values = np.asarray(values, float)
    mask = (t >= t_from - 1e-15) & (t <= t_to + 1e-15)
    return t[mask], values[mask]


def resample(t: np.ndarray, values: np.ndarray,
             sample_rate: float) -> tuple[np.ndarray, np.ndarray]:
    """Linear-interpolation resampling onto a uniform grid.

    Args:
        t: original (monotonic) time points.
        values: waveform samples at *t*.
        sample_rate: output rate [Hz].

    Returns:
        ``(t_new, v_new)`` covering the same span at the new rate.
    """
    t = np.asarray(t, float)
    values = np.asarray(values, float)
    dt = 1.0 / sample_rate
    n = int(np.floor((t[-1] - t[0]) / dt)) + 1
    t_new = t[0] + dt * np.arange(n)
    return t_new, np.interp(t_new, t, values)


def steady_state_periods(t: np.ndarray, values: np.ndarray, freq: float,
                         n_periods: int) -> tuple[np.ndarray, np.ndarray]:
    """Extract the last *n_periods* whole periods of a waveform.

    Used for THD measurement: the leading periods carry the start-up
    transient and are discarded.
    """
    t = np.asarray(t, float)
    period = 1.0 / freq
    t_to = t[-1]
    t_from = t_to - n_periods * period
    if t_from < t[0] - 1e-12:
        raise ValueError(
            f"waveform shorter than {n_periods} periods of {freq:g} Hz")
    return window(t, values, t_from, t_to)
