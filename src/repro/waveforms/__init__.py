"""Stimulus waveform vocabulary used by sources and test configurations."""

from repro.waveforms.sources import (
    DCWave,
    PWLWave,
    PulseWave,
    SineWave,
    StepWave,
    Waveform,
    as_waveform,
)

__all__ = [
    "Waveform",
    "DCWave",
    "SineWave",
    "StepWave",
    "PulseWave",
    "PWLWave",
    "as_waveform",
]
