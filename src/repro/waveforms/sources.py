"""Stimulus waveform descriptions.

Test-configuration descriptions (paper §2.1, Fig. 1) speak about stimuli in
terms of shapes with named parameters — a DC level, a sine with a DC offset,
a slew-limited step.  These classes are that vocabulary: small immutable
value objects that can be evaluated at arbitrary time points and that know
their DC (t <= 0) value for operating-point analyses.

All waveforms are pure functions of time; the transient engine samples them
on its integration grid.  ``value_at`` accepts scalars and numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = [
    "Waveform",
    "DCWave",
    "SineWave",
    "StepWave",
    "PulseWave",
    "PWLWave",
    "as_waveform",
]


@dataclass(frozen=True)
class Waveform:
    """Base class for stimulus waveforms."""

    def value_at(self, t):
        """Waveform value at time *t* (scalar or ndarray)."""
        raise NotImplementedError

    @property
    def dc_value(self) -> float:
        """Value used for DC / operating-point analyses (t -> 0-)."""
        return float(self.value_at(0.0))


@dataclass(frozen=True)
class DCWave(Waveform):
    """Constant level."""

    level: float = 0.0

    def value_at(self, t):
        return np.broadcast_to(self.level, np.shape(t)).astype(float) \
            if np.ndim(t) else float(self.level)

    def __str__(self) -> str:
        return f"DC {self.level:g}"


@dataclass(frozen=True)
class SineWave(Waveform):
    """Sine with DC offset: ``offset + amplitude*sin(2*pi*freq*(t-delay))``.

    The paper's THD configuration drives the IV-converter input with a sine
    around a DC operating current (parameters ``Iin_dc`` and ``freq``).
    """

    offset: float = 0.0
    amplitude: float = 1.0
    freq: float = 1e3
    delay: float = 0.0
    phase_deg: float = 0.0

    def value_at(self, t):
        t = np.asarray(t, dtype=float)
        phase = 2.0 * np.pi * self.freq * (t - self.delay) \
            + np.deg2rad(self.phase_deg)
        out = self.offset + self.amplitude * np.sin(phase)
        out = np.where(t < self.delay, self.offset, out)
        return out if out.ndim else float(out)

    @property
    def dc_value(self) -> float:
        return float(self.offset)

    @property
    def period(self) -> float:
        """One signal period [s]."""
        return 1.0 / self.freq

    def __str__(self) -> str:
        return (f"SIN({self.offset:g} {self.amplitude:g} {self.freq:g} "
                f"{self.delay:g} 0 {self.phase_deg:g})")


@dataclass(frozen=True)
class StepWave(Waveform):
    """Slew-limited step from ``base`` to ``base + elev`` at ``t_step``.

    Matches the paper's "Step response" template
    ``step(Base, Elev, slew_rate=sl)``: constant at ``base`` until
    ``t_step``, then a linear ramp with the given slew rate (in units per
    second) to ``base + elev``, then constant.  ``slew_rate`` is the
    magnitude of the ramp slope; ``elev`` may be negative.
    """

    base: float = 0.0
    elev: float = 1.0
    t_step: float = 10e-9
    slew_rate: float = 1e6

    def __post_init__(self) -> None:
        if self.slew_rate <= 0.0:
            raise ValueError("StepWave slew_rate must be > 0")

    @property
    def ramp_time(self) -> float:
        """Duration of the linear ramp [s]."""
        return abs(self.elev) / self.slew_rate

    def value_at(self, t):
        t = np.asarray(t, dtype=float)
        ramp = self.ramp_time
        if ramp == 0.0:
            out = np.where(t >= self.t_step, self.base + self.elev, self.base)
        else:
            frac = np.clip((t - self.t_step) / ramp, 0.0, 1.0)
            out = self.base + self.elev * frac
        return out if out.ndim else float(out)

    @property
    def dc_value(self) -> float:
        return float(self.base)

    def __str__(self) -> str:
        return (f"STEP(base={self.base:g} elev={self.elev:g} "
                f"t={self.t_step:g} slew={self.slew_rate:g})")


@dataclass(frozen=True)
class PulseWave(Waveform):
    """SPICE PULSE(v1 v2 td tr tf pw per) waveform."""

    v1: float = 0.0
    v2: float = 1.0
    td: float = 0.0
    tr: float = 1e-9
    tf: float = 1e-9
    pw: float = 1e-6
    per: float = 2e-6

    def value_at(self, t):
        t = np.asarray(t, dtype=float)
        tl = np.where(t < self.td, -1.0, np.mod(t - self.td, self.per))
        out = np.full_like(tl, self.v1)
        rising = (tl >= 0.0) & (tl < self.tr)
        out = np.where(rising, self.v1 + (self.v2 - self.v1)
                       * tl / max(self.tr, 1e-30), out)
        high = (tl >= self.tr) & (tl < self.tr + self.pw)
        out = np.where(high, self.v2, out)
        falling = (tl >= self.tr + self.pw) & (tl < self.tr + self.pw + self.tf)
        out = np.where(
            falling,
            self.v2 + (self.v1 - self.v2) * (tl - self.tr - self.pw)
            / max(self.tf, 1e-30),
            out)
        return out if out.ndim else float(out)

    @property
    def dc_value(self) -> float:
        return float(self.v1)

    def __str__(self) -> str:
        return (f"PULSE({self.v1:g} {self.v2:g} {self.td:g} {self.tr:g} "
                f"{self.tf:g} {self.pw:g} {self.per:g})")


@dataclass(frozen=True)
class PWLWave(Waveform):
    """Piece-wise linear waveform from ``(t, value)`` breakpoints.

    Holds the first value before the first breakpoint and the last value
    after the last one.
    """

    points: tuple[tuple[float, float], ...] = ((0.0, 0.0),)

    def __post_init__(self) -> None:
        times = [p[0] for p in self.points]
        if len(times) == 0:
            raise ValueError("PWLWave needs at least one breakpoint")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWLWave breakpoints must be strictly increasing")

    def value_at(self, t):
        t_arr = np.asarray(t, dtype=float)
        times = np.array([p[0] for p in self.points])
        values = np.array([p[1] for p in self.points])
        out = np.interp(t_arr, times, values)
        return out if out.ndim else float(out)

    @property
    def dc_value(self) -> float:
        return float(self.points[0][1])

    def __str__(self) -> str:
        flat = " ".join(f"{t:g} {v:g}" for t, v in self.points)
        return f"PWL({flat})"


def as_waveform(value: Union[Waveform, float, int]) -> Waveform:
    """Coerce a plain number into a :class:`DCWave`."""
    if isinstance(value, Waveform):
        return value
    return DCWave(float(value))
