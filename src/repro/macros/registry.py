"""Macro registry: look up macro classes by type name.

Lets examples and command-line drivers select macros by string, and gives
downstream users a single place to register their own macros::

    from repro.macros import register_macro, get_macro

    register_macro("my-opamp", MyOpampMacro)
    macro = get_macro("my-opamp")
"""

from __future__ import annotations

from repro.errors import TestGenerationError
from repro.macros.activefilter import ActiveFilterMacro
from repro.macros.base import Macro
from repro.macros.foldedcascode import FoldedCascodeOTAMacro
from repro.macros.ivconverter import IVConverterMacro
from repro.macros.ota import OTAMacro
from repro.macros.rcladder import RCLadderMacro
from repro.macros.twostage import TwoStageOpampMacro

__all__ = ["register_macro", "get_macro", "get_macro_class",
           "available_macros"]

_REGISTRY: dict[str, type[Macro]] = {
    IVConverterMacro.macro_type: IVConverterMacro,
    RCLadderMacro.macro_type: RCLadderMacro,
    OTAMacro.macro_type: OTAMacro,
    TwoStageOpampMacro.macro_type: TwoStageOpampMacro,
    FoldedCascodeOTAMacro.macro_type: FoldedCascodeOTAMacro,
    ActiveFilterMacro.macro_type: ActiveFilterMacro,
}


def register_macro(macro_type: str, macro_class: type[Macro],
                   overwrite: bool = False) -> None:
    """Register a macro class under a type name."""
    if macro_type in _REGISTRY and not overwrite:
        raise TestGenerationError(
            f"macro type {macro_type!r} already registered "
            "(pass overwrite=True to replace)")
    _REGISTRY[macro_type] = macro_class


def get_macro_class(macro_type: str) -> type[Macro]:
    """The macro class registered under *macro_type* (uninstantiated)."""
    try:
        return _REGISTRY[macro_type]
    except KeyError:
        raise TestGenerationError(
            f"unknown macro type {macro_type!r}; "
            f"available: {sorted(_REGISTRY)}") from None


def get_macro(macro_type: str, **kwargs) -> Macro:
    """Instantiate the macro registered under *macro_type*."""
    return get_macro_class(macro_type)(**kwargs)


def available_macros() -> tuple[str, ...]:
    """Registered macro type names."""
    return tuple(sorted(_REGISTRY))
