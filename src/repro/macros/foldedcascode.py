"""Folded-cascode OTA macro (zoo, block-composed, unity-gain buffer).

Second op-amp of the large-macro zoo: a PMOS-input folded-cascode OTA —
eleven transistors across five stacked branches — assembled from the
:mod:`repro.macros.blocks` vocabulary and closed as a unity-gain buffer
(the feedback resistor drives the inverting gate, which draws no DC
current, so ``V(vinn) == V(vout)``).  Compared to the two-stage macro
this exercises a *deep* bias structure: four resistor-divider bias
rails, cascoded NMOS and PMOS branches, and a cascode-diode mirror —
many more internal nodes whose bridges perturb the branch currents in
ways only observable through the folded output.

Topology (5 V supply):

* PMOS tail ``MT`` (gate ``nbp``) over input pair ``MIA`` (gate =
  ``vinp``, drain = fold node ``nfa``) / ``MIB`` (gate = ``vinn``,
  drain = ``nfb``);
* NMOS current sinks ``MSA/MSB`` (gate ``nbn``) at the fold nodes,
  NMOS cascodes ``MCA/MCB`` (gate ``nbc``) up to the mirror node
  ``na`` and the output ``vout``;
* PMOS sources ``MPD/MPO`` (gate ``na``) with PMOS cascodes
  ``MQA/MQB`` (gate ``nbcp``) — the cascode-diode left branch sets
  ``na`` so the right branch mirrors the top current;
* bias rails ``nbp, nbn, nbc, nbcp`` from resistive dividers;
* unity feedback ``vout -100k- vinn``, load at ``vout``.

Standard nodes: ``vdd, 0, vinp, vinn, ntail, nfa, nfb, na, nbn, vout``
— 10 nodes -> 45 bridging pairs; 11 MOSFETs -> 11 pinholes.  Shipped
dictionary is IFA-weighted and trimmed (zoo default).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Circuit, CircuitBuilder
from repro.errors import TestGenerationError
from repro.faults.dictionary import FaultDictionary
from repro.faults.ifa import ifa_fault_dictionary
from repro.macros import blocks
from repro.macros.base import Macro
from repro.macros.ivconverter import IV_NMOS, IV_PMOS
from repro.testgen.configuration import (
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import DCProcedure, Probe, StepProcedure
from repro.tolerance.box import BoxFunction, ConstantBoxFunction
from repro.tolerance.calibrate import calibrate_box_function

__all__ = ["FoldedCascodeOTAMacro"]

_FAST_BOXES = {
    "dc-transfer": (0.06,),        # V (unity buffer: tight)
    "dc-supply-current": (8e-6,),  # A
    "step-settle": (0.06,),        # V mean abs deviation
}


class FoldedCascodeOTAMacro(Macro):
    """Block-composed folded-cascode OTA (see module docstring)."""

    name = "fcota"
    macro_type = "folded-cascode-ota"

    STANDARD_NODES = ("vdd", "0", "vinp", "vinn", "ntail", "nfa", "nfb",
                      "na", "nbn", "vout")
    INPUT_SOURCE = "VINP"

    def __init__(self, supply: float = 5.0,
                 fault_top_n: int | None = 28,
                 mirror_w: float | str = "60u", **kwargs) -> None:
        super().__init__(**kwargs)
        self.supply = supply
        self.fault_top_n = fault_top_n
        # Campaign topology axis: width of the PMOS mirror/cascode
        # branch (sets the top current the fold must absorb).
        self.mirror_w = mirror_w

    def build_circuit(self) -> Circuit:
        b = CircuitBuilder(self.name)
        b.voltage_source("VDD", "vdd", "0", self.supply)
        b.voltage_source(self.INPUT_SOURCE, "vinp", "0", 1.5)
        # Bias rails (resistive: robust against any single fault).
        blocks.bias_divider(b, "BP", "nbp", r_top="70k", r_bot="180k")
        blocks.bias_divider(b, "BN", "nbn", r_top="180k", r_bot="70k")
        blocks.bias_divider(b, "BC", "nbc", r_top="140k", r_bot="110k")
        blocks.bias_divider(b, "BQ", "nbcp", r_top="110k", r_bot="140k")
        # Input: PMOS tail + pair folding into the NMOS branches.  vinp
        # on the mirror-diode side is the non-inverting input; vinn (the
        # fed-back gate) on the output side is inverting.
        blocks.biased_mosfet(b, "MT", drain="ntail", gate="nbp",
                             source="vdd", params=IV_PMOS, w="40u")
        blocks.differential_pair(b, "MI", gate_a="vinp", gate_b="vinn",
                                 drain_a="nfa", drain_b="nfb",
                                 tail="ntail", bulk="vdd", params=IV_PMOS)
        # Folded NMOS branches: sinks at the fold nodes, cascodes up.
        blocks.biased_mosfet(b, "MSA", drain="nfa", gate="nbn",
                             source="0", params=IV_NMOS, w="40u")
        blocks.biased_mosfet(b, "MSB", drain="nfb", gate="nbn",
                             source="0", params=IV_NMOS, w="40u")
        blocks.biased_mosfet(b, "MCA", drain="na", gate="nbc",
                             source="nfa", bulk="0", params=IV_NMOS,
                             w="40u")
        blocks.biased_mosfet(b, "MCB", drain="vout", gate="nbc",
                             source="nfb", bulk="0", params=IV_NMOS,
                             w="40u")
        # Cascoded PMOS mirror on top; the left (diode) branch closes
        # through the cascode to the mirror node na.
        blocks.current_mirror(b, "MP", diode_node="na", out_node="na",
                              rail="vdd", params=IV_PMOS,
                              w=self.mirror_w)
        return self._finish_top(b)

    def _finish_top(self, b: CircuitBuilder) -> Circuit:
        """Rewire the mirror through its cascodes and close the loop.

        :func:`blocks.current_mirror` stamps a flat two-device mirror;
        the folded cascode interposes cascode devices between the mirror
        sources and the branch outputs, so the mirror devices are
        re-stamped here onto the intermediate nodes ``nta``/``ntb``.
        """
        circuit = b.build()
        rebuilt = CircuitBuilder(self.name)
        for element in circuit:
            if element.name == "MPD":
                rebuilt.mosfet("MPD", "nta", "na", "vdd", "vdd",
                               IV_PMOS, self.mirror_w, "2u")
            elif element.name == "MPO":
                rebuilt.mosfet("MPO", "ntb", "na", "vdd", "vdd",
                               IV_PMOS, self.mirror_w, "2u")
            else:
                rebuilt.add(element)
        blocks.biased_mosfet(rebuilt, "MQA", drain="na", gate="nbcp",
                             source="nta", bulk="vdd", params=IV_PMOS,
                             w=self.mirror_w)
        blocks.biased_mosfet(rebuilt, "MQB", drain="vout", gate="nbcp",
                             source="ntb", bulk="vdd", params=IV_PMOS,
                             w=self.mirror_w)
        blocks.feedback_divider(rebuilt, "RF", vout="vout", vfb="vinn",
                                r_top="100k", r_bot=None)
        blocks.output_load(rebuilt, "RL", "vout", r="1meg", c="10p")
        return rebuilt.build()

    @property
    def standard_nodes(self) -> tuple[str, ...]:
        return self.STANDARD_NODES

    def fault_dictionary(self) -> FaultDictionary:
        """IFA-weighted dictionary, trimmed to the likeliest faults."""
        return ifa_fault_dictionary(self.circuit,
                                    nodes=self.standard_nodes,
                                    top_n=self.fault_top_n)

    def configuration_descriptions(
            self) -> tuple[TestConfigurationDescription, ...]:
        """The folded-cascode type's three templates."""
        return (
            TestConfigurationDescription(
                name="dc-transfer", macro_type=self.macro_type,
                title="Unity-buffer DC transfer",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="dc(vin) at vinp (unity feedback)",
                parameters=("vin",),
                return_values=(ReturnValueSpec(
                    "delta_vout", "voltage", "dV(vout) vs nominal"),)),
            TestConfigurationDescription(
                name="dc-supply-current", macro_type=self.macro_type,
                title="DC supply current",
                control_nodes=("vinp",), observe_nodes=("vdd",),
                stimulus_template="dc(vin) at vinp",
                parameters=("vin",),
                return_values=(ReturnValueSpec(
                    "delta_idd", "current", "dI(vdd) vs nominal"),)),
            TestConfigurationDescription(
                name="step-settle", macro_type=self.macro_type,
                title="Input step, accumulated output deviation",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="step(base, elev, slew_rate=sl) at vinp",
                parameters=("base", "elev"),
                variables={"sa": "20 MHz sampling", "t": "4 us test time",
                           "sl": "10 MV/s slew"},
                return_values=(ReturnValueSpec(
                    "acc_dv", "voltage_sample",
                    "mean_i |dV(vout, t_i)|"),)),
        )

    def _bound_parameters(self, name: str) -> tuple[BoundParameter, ...]:
        vin = ParameterSpec("vin", "V", "positive input level")
        base = ParameterSpec("base", "V", "step base level")
        elev = ParameterSpec("elev", "V", "step elevation")
        table = {
            "dc-transfer": (BoundParameter(vin, 1.2, 1.8, 1.5),),
            "dc-supply-current": (BoundParameter(vin, 1.2, 1.8, 1.5),),
            "step-settle": (BoundParameter(base, 1.3, 1.6, 1.4),
                            BoundParameter(elev, -0.1, 0.1, 0.05)),
        }
        return table[name]

    def _procedure(self, name: str):
        if name == "dc-transfer":
            return DCProcedure(self.INPUT_SOURCE, "vin",
                               (Probe("v", "vout"),))
        if name == "dc-supply-current":
            return DCProcedure(self.INPUT_SOURCE, "vin",
                               (Probe("i", "VDD"),))
        if name == "step-settle":
            return StepProcedure(
                self.INPUT_SOURCE, "vout", base_param="base",
                elev_param="elev", mode="accumulate", sample_rate=20e6,
                test_time=4e-6, t_step=50e-9, slew_rate=10e6)
        raise TestGenerationError(f"unknown configuration {name!r}")

    def _box_function(self, name: str, box_mode: str,
                      cache_dir: Path | str | None) -> BoxFunction:
        if box_mode == "fast":
            return ConstantBoxFunction(_FAST_BOXES[name])
        if box_mode != "calibrated":
            raise TestGenerationError(
                f"box_mode must be 'fast' or 'calibrated', got {box_mode!r}")
        procedure = self._procedure(name)
        parameters = self._bound_parameters(name)
        bounds = np.array([[p.lower, p.upper] for p in parameters])
        names = [p.name for p in parameters]
        nominal_cache: dict[tuple[float, ...], np.ndarray] = {}

        def evaluate(circuit, point):
            point = np.atleast_1d(np.asarray(point, float))
            params = dict(zip(names, point))
            key = tuple(point.tolist())
            nominal_raw = nominal_cache.get(key)
            if nominal_raw is None:
                nominal_raw = procedure.simulate(self.circuit, params,
                                                 self.options)
                nominal_cache[key] = nominal_raw
            raw = procedure.simulate(circuit, params, self.options)
            return procedure.deviations(nominal_raw, raw)

        return calibrate_box_function(
            evaluate, self.circuit, self.process_variation, bounds,
            tag=f"{self.name}/{name}", points_per_axis=3, n_samples=10,
            cache_dir=cache_dir)

    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        configs = []
        for description in self.configuration_descriptions():
            configs.append(TestConfiguration(
                description=description,
                parameters=self._bound_parameters(description.name),
                procedure=self._procedure(description.name),
                box_function=self._box_function(description.name, box_mode,
                                                cache_dir),
                equipment=self.equipment))
        return tuple(configs)
