"""Parameterized N-section active-RC filter ladder (zoo, scalable).

The scaling member of the large-macro zoo: a chain of *N* identical
active-RC low-pass sections (:func:`repro.macros.blocks.gm_inverter_section`
— series R into a grounded C, then an inverting transconductor into an
R||C load).  Each section contributes two circuit nodes, so the MNA
system grows linearly with ``n_sections``: the default 60 sections give
121 nodes / 123 unknowns, and ``n_sections=250`` passes 500 nodes.  This
is the macro family the sparse backend exists for — the system matrix is
structurally banded (each section couples only to its neighbours), so
a sparse LU factors it in ``O(n)`` where dense LAPACK pays ``O(n^3)``.

Every section has DC gain ``-gm * R_load = -1``, so the ladder's DC
transfer alternates sign tap by tap and ends at ``(-1)^N * vin`` —
unity for even *N*.  Because the gain magnitude is exactly one, a
deviation injected anywhere (a bridge loading a tap, an open series
resistor) propagates undiminished to the output, which keeps deep-ladder
faults observable from the single ``vout`` probe.

Node naming: section *i* (1-based) owns ``s{i}a`` (the RC mid node) and
``s{i}b`` (the section output); the last section's output is renamed
``vout``.  Standard (pad-accessible) nodes are ``vin``, ``vout``,
ground and a handful of evenly spaced ``s{i}b`` taps, mirroring a
macro whose internals are mostly unobservable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Circuit, CircuitBuilder
from repro.errors import TestGenerationError
from repro.faults.dictionary import FaultDictionary
from repro.faults.ifa import ifa_fault_dictionary
from repro.macros import blocks
from repro.macros.base import Macro
from repro.testgen.configuration import (
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import DCProcedure, Probe
from repro.tolerance.box import BoxFunction, ConstantBoxFunction
from repro.tolerance.calibrate import calibrate_box_function

__all__ = ["ActiveFilterMacro"]

_FAST_BOXES = {
    "dc-out": (0.05,),  # V at the ladder output
    "dc-mid": (0.05,),  # V at the mid-ladder tap
}


class ActiveFilterMacro(Macro):
    """N-section active-RC ladder (see module docstring).

    Args:
        n_sections: number of chained sections (>= 2); the MNA system
            has ``2 * n_sections + 3`` unknowns.
        fault_top_n: IFA dictionary trim (None keeps every fault).
    """

    name = "actfilt"
    macro_type = "active-filter"

    INPUT_SOURCE = "VIN"

    def __init__(self, n_sections: int = 60,
                 fault_top_n: int | None = 24, **kwargs) -> None:
        if n_sections < 2:
            raise TestGenerationError(
                f"active filter needs >= 2 sections, got {n_sections}")
        self.n_sections = n_sections
        self.fault_top_n = fault_top_n
        super().__init__(**kwargs)

    def _out_node(self, i: int) -> str:
        return "vout" if i == self.n_sections else f"s{i}b"

    def build_circuit(self) -> Circuit:
        b = CircuitBuilder(self.name)
        b.voltage_source(self.INPUT_SOURCE, "vin", "0", 2.0)
        n_in = "vin"
        for i in range(1, self.n_sections + 1):
            n_out = self._out_node(i)
            blocks.gm_inverter_section(b, i, n_in=n_in, n_mid=f"s{i}a",
                                       n_out=n_out)
            n_in = n_out
        return b.build()

    @property
    def standard_nodes(self) -> tuple[str, ...]:
        """Pads: input, output, ground, and four evenly spaced taps."""
        n = self.n_sections
        taps = sorted({max(1, round(n * k / 5)) for k in range(1, 5)} -
                      {n})
        return ("vin", "0", *(f"s{i}b" for i in taps), "vout")

    @property
    def mid_tap(self) -> str:
        """The standard tap nearest the middle of the ladder."""
        return self.standard_nodes[1 + (len(self.standard_nodes) - 3) // 2]

    def fault_dictionary(self) -> FaultDictionary:
        """IFA-weighted dictionary over the pad-accessible nodes."""
        return ifa_fault_dictionary(self.circuit,
                                    nodes=self.standard_nodes,
                                    top_n=self.fault_top_n)

    def configuration_descriptions(
            self) -> tuple[TestConfigurationDescription, ...]:
        """The active-filter type's two DC templates."""
        return (
            TestConfigurationDescription(
                name="dc-out", macro_type=self.macro_type,
                title="DC transfer to the ladder output",
                control_nodes=("vin",), observe_nodes=("vout",),
                stimulus_template="dc(level) at vin",
                parameters=("level",),
                return_values=(ReturnValueSpec(
                    "delta_vout", "voltage", "dV(vout) vs nominal"),)),
            TestConfigurationDescription(
                name="dc-mid", macro_type=self.macro_type,
                title="DC transfer to the mid-ladder tap",
                control_nodes=("vin",), observe_nodes=(self.mid_tap,),
                stimulus_template="dc(level) at vin",
                parameters=("level",),
                return_values=(ReturnValueSpec(
                    "delta_vmid", "voltage",
                    f"dV({self.mid_tap}) vs nominal"),)),
        )

    def _bound_parameters(self, name: str) -> tuple[BoundParameter, ...]:
        level = ParameterSpec("level", "V", "DC input level")
        table = {
            "dc-out": (BoundParameter(level, 0.5, 4.5, 2.0),),
            "dc-mid": (BoundParameter(level, 0.5, 4.5, 2.0),),
        }
        return table[name]

    def _procedure(self, name: str):
        if name == "dc-out":
            return DCProcedure(self.INPUT_SOURCE, "level",
                               (Probe("v", "vout"),))
        if name == "dc-mid":
            return DCProcedure(self.INPUT_SOURCE, "level",
                               (Probe("v", self.mid_tap),))
        raise TestGenerationError(f"unknown configuration {name!r}")

    def _box_function(self, name: str, box_mode: str,
                      cache_dir: Path | str | None) -> BoxFunction:
        if box_mode == "fast":
            return ConstantBoxFunction(_FAST_BOXES[name])
        if box_mode != "calibrated":
            raise TestGenerationError(
                f"box_mode must be 'fast' or 'calibrated', got {box_mode!r}")
        procedure = self._procedure(name)
        parameters = self._bound_parameters(name)
        bounds = np.array([[p.lower, p.upper] for p in parameters])
        names = [p.name for p in parameters]
        nominal_cache: dict[tuple[float, ...], np.ndarray] = {}

        def evaluate(circuit, point):
            point = np.atleast_1d(np.asarray(point, float))
            params = dict(zip(names, point))
            key = tuple(point.tolist())
            nominal_raw = nominal_cache.get(key)
            if nominal_raw is None:
                nominal_raw = procedure.simulate(self.circuit, params,
                                                 self.options)
                nominal_cache[key] = nominal_raw
            raw = procedure.simulate(circuit, params, self.options)
            return procedure.deviations(nominal_raw, raw)

        return calibrate_box_function(
            evaluate, self.circuit, self.process_variation, bounds,
            tag=f"{self.name}{self.n_sections}/{name}", points_per_axis=3,
            n_samples=10, cache_dir=cache_dir)

    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        configs = []
        for description in self.configuration_descriptions():
            configs.append(TestConfiguration(
                description=description,
                parameters=self._bound_parameters(description.name),
                procedure=self._procedure(description.name),
                box_function=self._box_function(description.name, box_mode,
                                                cache_dir),
                equipment=self.equipment))
        return tuple(configs)
