"""The CMOS IV-converter macro — the paper's evaluation vehicle.

The original design [9] (an integrated photodetector front-end from a
MESA research report) is not published; this is a faithful reconstruction
honouring every constraint the paper states or implies:

* **10 circuit nodes** (``vdd, gnd, vref, nbias, ntail, n1, n2, n3, vout,
  iin``) so the exhaustive bridging list has C(10,2) = 45 entries;
* **10 MOSFETs** so the pinhole list has 10 entries;
* IV-converter (transimpedance) function with a 0-40 uA input range —
  the Iin_dc axis of the paper's tps-graphs — and a THD-measurable
  output;
* supply current observable at VDD (ref. [10], supply-current testing).

Topology (5 V single supply):

* reference divider ``RDIV1/RDIV2`` + decoupling sets ``vref = 2.5 V``
  (resistive, so bridges onto ``vref`` disturb it observably);
* bias chain ``RBIAS`` + diode-connected ``M7`` generates ``nbias``;
* NMOS differential pair ``M1`` (gate = ``iin``) / ``M2`` (gate =
  ``vref``) with PMOS mirror load ``M3/M4`` and tail source ``M5``;
* PMOS common-source second stage ``M6`` with NMOS sink ``M8`` and
  Miller compensation ``CC + RZ`` (the internal compensation tap
  ``ncomp`` is a network helper, not a standard node);
* NMOS source follower ``M9`` with sink ``M10`` buffers ``vout``;
* feedback resistor ``RF = 30 kOhm`` from ``vout`` to ``iin`` closes the
  transimpedance loop: ``vout ~= vref - RF * Iin`` (2.5 V -> 1.3 V over
  the 0-40 uA range).

Five test configurations (Table 1 reconstruction; the scanned original
is OCR-damaged, see DESIGN.md §3.2): two single-parameter DC
configurations (#1 output voltage, #2 supply current), the two-parameter
THD configuration (#3, the one behind Figs 2-4), and two two-parameter
step-response configurations (#4 max deviation, #5 accumulated
deviation).  The transient sample rate defaults to 40 MHz rather than the
paper's 100 MHz — a pure time-discretization economy; pass
``sample_rate=100e6`` to restore the paper value.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Circuit, CircuitBuilder, MosfetParams
from repro.errors import TestGenerationError
from repro.macros.base import Macro
from repro.testgen.configuration import (
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import (
    DCProcedure,
    Probe,
    SineTHDProcedure,
    StepProcedure,
)
from repro.tolerance.box import BoxFunction, ConstantBoxFunction
from repro.tolerance.calibrate import calibrate_box_function

__all__ = ["IVConverterMacro", "IV_NMOS", "IV_PMOS"]

#: 1.6-um-era model cards used by the macro.
IV_NMOS = MosfetParams(kind="nmos", vto=0.8, kp=60e-6, lam=0.02,
                       gamma=0.4, phi=0.7)
IV_PMOS = MosfetParams(kind="pmos", vto=-0.85, kp=22e-6, lam=0.03,
                       gamma=0.5, phi=0.7)

#: Conservative constant box half-widths for ``box_mode="fast"``,
#: hand-set from Monte-Carlo dry runs (see tests/macros/test_ivconverter).
_FAST_BOXES = {
    "dc-output": (0.030,),          # V
    "dc-supply-current": (12e-6,),  # A
    "thd": (0.40,),                 # THD percentage points
    "step-max": (0.040,),           # V
    "step-accumulate": (0.030,),    # V (mean abs deviation)
}


class IVConverterMacro(Macro):
    """The reconstructed IV-converter macro (see module docstring).

    Args:
        sample_rate: transient sampling/integration rate of the step
            configurations [Hz] (paper value: 100 MHz).
        thd_samples_per_period: integration samples per stimulus period
            of the THD configuration.
        supply: supply voltage [V].
    """

    name = "ivconv"
    macro_type = "iv-converter"

    #: The paper's 10 circuit nodes (= 45 bridging pairs).
    STANDARD_NODES = ("vdd", "0", "vref", "nbias", "ntail",
                      "n1", "n2", "n3", "vout", "iin")

    #: Stimulus source name (standardized for the macro type).
    INPUT_SOURCE = "IIN"

    def __init__(self, sample_rate: float = 40e6,
                 thd_samples_per_period: int = 64,
                 supply: float = 5.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.sample_rate = sample_rate
        self.thd_samples_per_period = thd_samples_per_period
        self.supply = supply

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def build_circuit(self) -> Circuit:
        b = CircuitBuilder(self.name)
        b.voltage_source("VDD", "vdd", "0", self.supply)
        # Reference divider (resistive so vref is fault-observable).
        b.resistor("RDIV1", "vdd", "vref", "50k")
        b.resistor("RDIV2", "vref", "0", "50k")
        b.capacitor("CREF", "vref", "0", "10p")
        # Bias chain.
        b.resistor("RBIAS", "vdd", "nbias", "200k")
        b.mosfet("M7", "nbias", "nbias", "0", "0", IV_NMOS, "20u", "2u")
        # First stage: NMOS diff pair + PMOS mirror + tail.
        b.mosfet("M1", "n1", "iin", "ntail", "0", IV_NMOS, "40u", "2u")
        b.mosfet("M2", "n2", "vref", "ntail", "0", IV_NMOS, "40u", "2u")
        b.mosfet("M5", "ntail", "nbias", "0", "0", IV_NMOS, "20u", "2u")
        b.mosfet("M3", "n1", "n1", "vdd", "vdd", IV_PMOS, "40u", "2u")
        b.mosfet("M4", "n2", "n1", "vdd", "vdd", IV_PMOS, "40u", "2u")
        # Second stage + Miller compensation.  CC is sized so that slew
        # and bandwidth effects land inside the 1-100 kHz band of the THD
        # configuration: distortion then genuinely depends on the 'freq'
        # test parameter, as in the paper's tps-graphs (Figs 2-4).
        b.mosfet("M6", "n3", "n2", "vdd", "vdd", IV_PMOS, "60u", "2u")
        b.mosfet("M8", "n3", "nbias", "0", "0", IV_NMOS, "40u", "2u")
        b.capacitor("CC", "n2", "ncomp", "47p")
        b.resistor("RZ", "ncomp", "n3", "3k")
        # Output buffer.
        b.mosfet("M9", "vdd", "n3", "vout", "0", IV_NMOS, "100u", "2u")
        b.mosfet("M10", "vout", "nbias", "0", "0", IV_NMOS, "80u", "2u")
        # Transimpedance feedback, load, input.
        b.resistor("RF", "vout", "iin", "30k")
        b.capacitor("CL", "vout", "0", "10p")
        b.current_source(self.INPUT_SOURCE, "0", "iin", 0.0)
        return b.build()

    @property
    def standard_nodes(self) -> tuple[str, ...]:
        return self.STANDARD_NODES

    # ------------------------------------------------------------------
    # test configurations (Table 1 reconstruction)
    # ------------------------------------------------------------------
    def configuration_descriptions(
            self) -> tuple[TestConfigurationDescription, ...]:
        """The five macro-type-level templates (paper Table 1 / Fig. 1)."""
        ua = "A"
        return (
            TestConfigurationDescription(
                name="dc-output", macro_type=self.macro_type,
                title="DC output voltage",
                control_nodes=("iin",), observe_nodes=("vout",),
                stimulus_template="dc(base) at iin",
                parameters=("base",),
                variables={},
                return_values=(ReturnValueSpec(
                    "delta_vout", "voltage", "dV(Vout) vs nominal"),)),
            TestConfigurationDescription(
                name="dc-supply-current", macro_type=self.macro_type,
                title="DC supply current (IDD)",
                control_nodes=("iin",), observe_nodes=("vdd",),
                stimulus_template="dc(base) at iin",
                parameters=("base",),
                variables={},
                return_values=(ReturnValueSpec(
                    "delta_idd", "current", "dI(Vdd) vs nominal"),)),
            TestConfigurationDescription(
                name="thd", macro_type=self.macro_type,
                title="Harmonic distortion",
                control_nodes=("iin",), observe_nodes=("vout",),
                stimulus_template=(
                    "sine(iin_dc, 0.45*iin_dc, freq) at iin"),
                parameters=("iin_dc", "freq"),
                variables={"sa": "sample rate as required for THD",
                           "t": "test time as required for THD"},
                return_values=(ReturnValueSpec(
                    "delta_thd", "thd", "dTHD(Vout) vs nominal [%-points]"),)),
            TestConfigurationDescription(
                name="step-max", macro_type=self.macro_type,
                title="Step response 2 (max deviation)",
                control_nodes=("iin",), observe_nodes=("vout",),
                stimulus_template="step(base, elev, slew_rate=sl) at iin",
                parameters=("base", "elev"),
                variables={"sa": f"{self.sample_rate:g} Hz sampling",
                           "t": "7.5 us test time",
                           "sl": "800 A/s slew rate (full scale in 50 ns)"},
                return_values=(ReturnValueSpec(
                    "max_dv", "voltage_sample",
                    "Max_i |dV(Vout, t_i)|"),)),
            TestConfigurationDescription(
                name="step-accumulate", macro_type=self.macro_type,
                title="Step response 1 (accumulated deviation)",
                control_nodes=("iin",), observe_nodes=("vout",),
                stimulus_template="step(base, elev, slew_rate=sl) at iin",
                parameters=("base", "elev"),
                variables={"sa": f"{self.sample_rate:g} Hz sampling",
                           "t": "7.5 us test time",
                           "sl": "800 A/s slew rate (full scale in 50 ns)"},
                return_values=(ReturnValueSpec(
                    "acc_dv", "voltage_sample",
                    "mean_i |dV(Vout, t_i)| (sigma-V normalized)"),)),
        )

    def _bound_parameters(self, name: str) -> tuple[BoundParameter, ...]:
        base = ParameterSpec("base", "A", "DC input current level")
        elev = ParameterSpec("elev", "A", "step elevation")
        iin_dc = ParameterSpec("iin_dc", "A", "sine DC level")
        freq = ParameterSpec("freq", "Hz", "sine frequency")
        table = {
            "dc-output": (BoundParameter(base, 0.0, 50e-6, 20e-6),),
            "dc-supply-current": (BoundParameter(base, 0.0, 50e-6, 10e-6),),
            "thd": (BoundParameter(iin_dc, 1e-6, 40e-6, 10e-6),
                    BoundParameter(freq, 1e3, 100e3, 10e3)),
            "step-max": (BoundParameter(base, 0.0, 40e-6, 5e-6),
                         BoundParameter(elev, -40e-6, 40e-6, 20e-6)),
            "step-accumulate": (BoundParameter(base, 0.0, 40e-6, 5e-6),
                                BoundParameter(elev, -40e-6, 40e-6, 20e-6)),
        }
        return table[name]

    def _procedure(self, name: str):
        if name == "dc-output":
            return DCProcedure(self.INPUT_SOURCE, "base",
                               (Probe("v", "vout"),))
        if name == "dc-supply-current":
            return DCProcedure(self.INPUT_SOURCE, "base",
                               (Probe("i", "VDD"),))
        if name == "thd":
            return SineTHDProcedure(
                self.INPUT_SOURCE, "vout", dc_param="iin_dc",
                freq_param="freq", amplitude_ratio=0.45,
                samples_per_period=self.thd_samples_per_period,
                settle_periods=2, analysis_periods=2, n_harmonics=5)
        if name in ("step-max", "step-accumulate"):
            return StepProcedure(
                self.INPUT_SOURCE, "vout", base_param="base",
                elev_param="elev",
                mode="max" if name == "step-max" else "accumulate",
                sample_rate=self.sample_rate, test_time=7.5e-6,
                t_step=10e-9, slew_rate=800.0)
        raise TestGenerationError(f"unknown configuration {name!r}")

    def _box_function(self, name: str, box_mode: str,
                      cache_dir: Path | str | None) -> BoxFunction:
        if box_mode == "fast":
            return ConstantBoxFunction(_FAST_BOXES[name])
        if box_mode != "calibrated":
            raise TestGenerationError(
                f"box_mode must be 'fast' or 'calibrated', got {box_mode!r}")
        procedure = self._procedure(name)
        parameters = self._bound_parameters(name)
        bounds = np.array([[p.lower, p.upper] for p in parameters])
        names = [p.name for p in parameters]

        nominal_cache: dict[tuple[float, ...], np.ndarray] = {}

        def evaluate(circuit, point):
            point = np.atleast_1d(np.asarray(point, float))
            params = dict(zip(names, point))
            key = tuple(point.tolist())
            nominal_raw = nominal_cache.get(key)
            if nominal_raw is None:
                nominal_raw = procedure.simulate(self.circuit, params,
                                                 self.options)
                nominal_cache[key] = nominal_raw
            raw = procedure.simulate(circuit, params, self.options)
            return procedure.deviations(nominal_raw, raw)

        return calibrate_box_function(
            evaluate, self.circuit, self.process_variation, bounds,
            tag=f"{self.name}/{name}", points_per_axis=3, n_samples=12,
            cache_dir=cache_dir)

    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        configs = []
        for description in self.configuration_descriptions():
            configs.append(TestConfiguration(
                description=description,
                parameters=self._bound_parameters(description.name),
                procedure=self._procedure(description.name),
                box_function=self._box_function(description.name, box_mode,
                                                cache_dir),
                equipment=self.equipment))
        return tuple(configs)
