"""Analog macros with built-in test knowledge.

* :class:`IVConverterMacro` — the paper's evaluation vehicle
  (reconstruction; see DESIGN.md §3.1).
* :class:`RCLadderMacro` — a tiny linear macro for fast pipeline tests.
"""

from repro.macros.base import Macro
from repro.macros.ivconverter import IVConverterMacro, IV_NMOS, IV_PMOS
from repro.macros.ota import OTAMacro
from repro.macros.rcladder import RCLadderMacro
from repro.macros.registry import (
    available_macros,
    get_macro,
    register_macro,
)

__all__ = [
    "Macro",
    "IVConverterMacro",
    "RCLadderMacro",
    "OTAMacro",
    "IV_NMOS",
    "IV_PMOS",
    "register_macro",
    "get_macro",
    "available_macros",
]
