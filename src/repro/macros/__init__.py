"""Analog macros with built-in test knowledge.

* :class:`IVConverterMacro` — the paper's evaluation vehicle
  (reconstruction; see DESIGN.md §3.1).
* :class:`RCLadderMacro` — a tiny linear macro for fast pipeline tests.
* :class:`TwoStageOpampMacro` / :class:`FoldedCascodeOTAMacro` /
  :class:`ActiveFilterMacro` — the large-macro zoo, composed from the
  functional-block vocabulary of :mod:`repro.macros.blocks`; the
  parameterized filter ladder scales to hundreds of nodes and exercises
  the sparse linear-algebra backend.
"""

from repro.macros.activefilter import ActiveFilterMacro
from repro.macros.base import Macro
from repro.macros.foldedcascode import FoldedCascodeOTAMacro
from repro.macros.ivconverter import IVConverterMacro, IV_NMOS, IV_PMOS
from repro.macros.ota import OTAMacro
from repro.macros.rcladder import RCLadderMacro
from repro.macros.registry import (
    available_macros,
    get_macro,
    get_macro_class,
    register_macro,
)
from repro.macros.twostage import TwoStageOpampMacro

__all__ = [
    "Macro",
    "IVConverterMacro",
    "RCLadderMacro",
    "OTAMacro",
    "TwoStageOpampMacro",
    "FoldedCascodeOTAMacro",
    "ActiveFilterMacro",
    "IV_NMOS",
    "IV_PMOS",
    "register_macro",
    "get_macro",
    "get_macro_class",
    "available_macros",
]
