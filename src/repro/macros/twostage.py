"""Two-stage Miller-compensated op-amp macro (zoo, block-composed).

First of the large-macro zoo: a classic two-stage CMOS op-amp assembled
entirely from the functional-block vocabulary of
:mod:`repro.macros.blocks` — bias chain, NMOS differential pair with
PMOS mirror load, PMOS common-source second stage, Miller ``C_C + R_Z``
compensation — and closed around a resistive feedback divider as a
gain-of-two non-inverting amplifier.  Testing the closed-loop macro is
what a mixed-signal IC does with an embedded op-amp: the loop fixes a
well-defined mid-rail DC operating point (open-loop, the ~70 dB DC gain
would rail the output for microvolt input offsets) while structural
faults still break the loop equation observably.

Topology (5 V supply):

* bias chain ``MBM`` + ``MBR`` sets ``nbias`` (~20 uA reference);
* diff pair ``MDA`` (gate = ``vinn``, drain = diode node ``n1``) /
  ``MDB`` (gate = ``vinp``, drain = ``n2``), PMOS mirror ``MMD/MMO``,
  tail sink ``MT``;
* second stage ``MSP`` (PMOS, gate = ``n2``) over sink ``MSN`` at
  ``vout``; Miller network ``n2 -C_C- ncomp -R_Z- vout``;
* feedback ``vout -100k- vinn -100k- 0`` (gain 2), load at ``vout``.

Standard nodes: ``vdd, 0, vinp, vinn, nbias, ntail, n1, n2, vout`` —
9 nodes -> 36 bridging pairs; 8 MOSFETs -> 8 pinholes.  The shipped
fault dictionary is IFA-weighted and trimmed to the most likely faults
(:func:`~repro.faults.ifa.ifa_fault_dictionary`), the zoo default.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Circuit, CircuitBuilder
from repro.errors import TestGenerationError
from repro.faults.dictionary import FaultDictionary
from repro.faults.ifa import ifa_fault_dictionary
from repro.macros import blocks
from repro.macros.base import Macro
from repro.macros.ivconverter import IV_NMOS, IV_PMOS
from repro.testgen.configuration import (
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import DCProcedure, Probe, StepProcedure
from repro.tolerance.box import BoxFunction, ConstantBoxFunction
from repro.tolerance.calibrate import calibrate_box_function

__all__ = ["TwoStageOpampMacro"]

_FAST_BOXES = {
    "dc-transfer": (0.08,),        # V (closed-loop gain 2: tight)
    "dc-supply-current": (6e-6,),  # A
    "step-settle": (0.08,),        # V mean abs deviation
}


class TwoStageOpampMacro(Macro):
    """Block-composed two-stage Miller op-amp (see module docstring)."""

    name = "miller2"
    macro_type = "two-stage-opamp"

    STANDARD_NODES = ("vdd", "0", "vinp", "vinn", "nbias", "ntail",
                      "n1", "n2", "vout")
    INPUT_SOURCE = "VINP"

    def __init__(self, supply: float = 5.0,
                 fault_top_n: int | None = 24,
                 bias_r: float | str = "200k",
                 mirror_w: float | str = "40u",
                 c_comp: float | str = "10p",
                 r_zero: float | str = "3k", **kwargs) -> None:
        super().__init__(**kwargs)
        self.supply = supply
        self.fault_top_n = fault_top_n
        # Campaign topology axes: bias chain, mirror sizing, Miller
        # compensation — the knobs that move the DC operating point and
        # the settling behaviour without changing the node universe.
        self.bias_r = bias_r
        self.mirror_w = mirror_w
        self.c_comp = c_comp
        self.r_zero = r_zero

    def build_circuit(self) -> Circuit:
        b = CircuitBuilder(self.name)
        b.voltage_source("VDD", "vdd", "0", self.supply)
        b.voltage_source(self.INPUT_SOURCE, "vinp", "0", 1.5)
        blocks.bias_chain(b, "MB", "nbias", params=IV_NMOS,
                          r=self.bias_r, w="20u", l="2u")
        # First stage: vinn on the diode (mirror-input) side makes it the
        # inverting input; vinp -> n2 -> PMOS second stage is the
        # non-inverting path (two net inversions).
        blocks.differential_pair(b, "MD", gate_a="vinn", gate_b="vinp",
                                 drain_a="n1", drain_b="n2",
                                 tail="ntail", bulk="0", params=IV_NMOS)
        blocks.current_mirror(b, "MM", diode_node="n1", out_node="n2",
                              rail="vdd", params=IV_PMOS,
                              w=self.mirror_w)
        blocks.biased_mosfet(b, "MT", drain="ntail", gate="nbias",
                             source="0", params=IV_NMOS, w="20u")
        blocks.common_source_stage(b, "MS", vin="n2", vout="vout",
                                   nbias="nbias", p_params=IV_PMOS,
                                   n_params=IV_NMOS)
        blocks.miller_compensation(b, "CC", n_hi="n2", n_out="vout",
                                   n_mid="ncomp", c=self.c_comp,
                                   rz=self.r_zero)
        blocks.feedback_divider(b, "RF", vout="vout", vfb="vinn",
                                r_top="100k", r_bot="100k")
        blocks.output_load(b, "RL", "vout", r="500k", c="10p")
        return b.build()

    @property
    def standard_nodes(self) -> tuple[str, ...]:
        return self.STANDARD_NODES

    def fault_dictionary(self) -> FaultDictionary:
        """IFA-weighted dictionary, trimmed to the likeliest faults."""
        return ifa_fault_dictionary(self.circuit,
                                    nodes=self.standard_nodes,
                                    top_n=self.fault_top_n)

    def configuration_descriptions(
            self) -> tuple[TestConfigurationDescription, ...]:
        """The two-stage op-amp type's three templates."""
        return (
            TestConfigurationDescription(
                name="dc-transfer", macro_type=self.macro_type,
                title="Closed-loop DC transfer (gain 2)",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="dc(vin) at vinp (feedback closed)",
                parameters=("vin",),
                return_values=(ReturnValueSpec(
                    "delta_vout", "voltage", "dV(vout) vs nominal"),)),
            TestConfigurationDescription(
                name="dc-supply-current", macro_type=self.macro_type,
                title="DC supply current",
                control_nodes=("vinp",), observe_nodes=("vdd",),
                stimulus_template="dc(vin) at vinp",
                parameters=("vin",),
                return_values=(ReturnValueSpec(
                    "delta_idd", "current", "dI(vdd) vs nominal"),)),
            TestConfigurationDescription(
                name="step-settle", macro_type=self.macro_type,
                title="Input step, accumulated output deviation",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="step(base, elev, slew_rate=sl) at vinp",
                parameters=("base", "elev"),
                variables={"sa": "20 MHz sampling", "t": "4 us test time",
                           "sl": "10 MV/s slew"},
                return_values=(ReturnValueSpec(
                    "acc_dv", "voltage_sample",
                    "mean_i |dV(vout, t_i)|"),)),
        )

    def _bound_parameters(self, name: str) -> tuple[BoundParameter, ...]:
        vin = ParameterSpec("vin", "V", "positive input level")
        base = ParameterSpec("base", "V", "step base level")
        elev = ParameterSpec("elev", "V", "step elevation")
        table = {
            "dc-transfer": (BoundParameter(vin, 1.0, 2.0, 1.5),),
            "dc-supply-current": (BoundParameter(vin, 1.0, 2.0, 1.5),),
            "step-settle": (BoundParameter(base, 1.2, 1.7, 1.4),
                            BoundParameter(elev, -0.1, 0.1, 0.05)),
        }
        return table[name]

    def _procedure(self, name: str):
        if name == "dc-transfer":
            return DCProcedure(self.INPUT_SOURCE, "vin",
                               (Probe("v", "vout"),))
        if name == "dc-supply-current":
            return DCProcedure(self.INPUT_SOURCE, "vin",
                               (Probe("i", "VDD"),))
        if name == "step-settle":
            return StepProcedure(
                self.INPUT_SOURCE, "vout", base_param="base",
                elev_param="elev", mode="accumulate", sample_rate=20e6,
                test_time=4e-6, t_step=50e-9, slew_rate=10e6)
        raise TestGenerationError(f"unknown configuration {name!r}")

    def _box_function(self, name: str, box_mode: str,
                      cache_dir: Path | str | None) -> BoxFunction:
        if box_mode == "fast":
            return ConstantBoxFunction(_FAST_BOXES[name])
        if box_mode != "calibrated":
            raise TestGenerationError(
                f"box_mode must be 'fast' or 'calibrated', got {box_mode!r}")
        procedure = self._procedure(name)
        parameters = self._bound_parameters(name)
        bounds = np.array([[p.lower, p.upper] for p in parameters])
        names = [p.name for p in parameters]
        nominal_cache: dict[tuple[float, ...], np.ndarray] = {}

        def evaluate(circuit, point):
            point = np.atleast_1d(np.asarray(point, float))
            params = dict(zip(names, point))
            key = tuple(point.tolist())
            nominal_raw = nominal_cache.get(key)
            if nominal_raw is None:
                nominal_raw = procedure.simulate(self.circuit, params,
                                                 self.options)
                nominal_cache[key] = nominal_raw
            raw = procedure.simulate(circuit, params, self.options)
            return procedure.deviations(nominal_raw, raw)

        return calibrate_box_function(
            evaluate, self.circuit, self.process_variation, bounds,
            tag=f"{self.name}/{name}", points_per_axis=3, n_samples=10,
            cache_dir=cache_dir)

    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        configs = []
        for description in self.configuration_descriptions():
            configs.append(TestConfiguration(
                description=description,
                parameters=self._bound_parameters(description.name),
                procedure=self._procedure(description.name),
                box_function=self._box_function(description.name, box_mode,
                                                cache_dir),
                equipment=self.equipment))
        return tuple(configs)
