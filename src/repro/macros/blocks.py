"""Reusable functional-block builders for composing macro netlists.

FUBOCO-style composition (PAPERS.md): an op-amp is not drawn transistor
by transistor but assembled from a small vocabulary of *functional
blocks* — bias chains, differential pairs, current mirrors, cascode
devices, compensation networks — each of which knows how to stamp itself
into a :class:`~repro.circuit.builder.CircuitBuilder`.  The zoo macros
(:mod:`repro.macros.twostage`, :mod:`repro.macros.foldedcascode`,
:mod:`repro.macros.activefilter`) are thin topology descriptions over
this vocabulary, which is exactly what makes generating *families* of
macros (the parameterized filter ladder) a loop instead of a netlist.

Every builder takes the :class:`CircuitBuilder` first, then a *prefix*
that namespaces the element names it creates, then explicit node names.
Blocks only add elements — node naming stays with the caller, so blocks
can be wired to each other freely.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.mosfet import MosfetParams

__all__ = [
    "bias_chain",
    "bias_divider",
    "biased_mosfet",
    "common_source_stage",
    "current_mirror",
    "differential_pair",
    "feedback_divider",
    "gm_inverter_section",
    "miller_compensation",
    "output_load",
]


def bias_divider(b: CircuitBuilder, prefix: str, node: str, *,
                 vdd: str = "vdd", gnd: str = "0",
                 r_top: float | str, r_bot: float | str) -> None:
    """Resistive bias voltage: ``vdd -R_top- node -R_bot- gnd``."""
    b.resistor(f"{prefix}RT", vdd, node, r_top)
    b.resistor(f"{prefix}RB", node, gnd, r_bot)


def bias_chain(b: CircuitBuilder, prefix: str, node: str, *,
               params: MosfetParams, vdd: str = "vdd", gnd: str = "0",
               r: float | str = "200k", w: float | str = "20u",
               l: float | str = "2u") -> None:
    """Resistor + diode-connected MOSFET current reference.

    Sets *node* one ``V_GS`` above *gnd*; every sink gated from *node*
    mirrors the reference current scaled by its W/L.
    """
    b.resistor(f"{prefix}R", vdd, node, r)
    b.mosfet(f"{prefix}M", node, node, gnd, gnd, params, w, l)


def biased_mosfet(b: CircuitBuilder, name: str, *, drain: str, gate: str,
                  source: str, bulk: str | None = None,
                  params: MosfetParams, w: float | str = "20u",
                  l: float | str = "2u") -> None:
    """One gate-biased device: a current sink/source or a cascode.

    The same primitive covers a tail sink (source at a rail), a cascode
    (source at an internal branch node) and a mirrored current source —
    what changes is only the wiring, which the caller owns.
    """
    b.mosfet(name, drain, gate, source,
             source if bulk is None else bulk, params, w, l)


def differential_pair(b: CircuitBuilder, prefix: str, *,
                      gate_a: str, gate_b: str, drain_a: str,
                      drain_b: str, tail: str, bulk: str,
                      params: MosfetParams, w: float | str = "40u",
                      l: float | str = "2u") -> None:
    """Matched input pair ``{prefix}A`` / ``{prefix}B`` on one tail."""
    b.mosfet(f"{prefix}A", drain_a, gate_a, tail, bulk, params, w, l)
    b.mosfet(f"{prefix}B", drain_b, gate_b, tail, bulk, params, w, l)


def current_mirror(b: CircuitBuilder, prefix: str, *, diode_node: str,
                   out_node: str, rail: str, params: MosfetParams,
                   w: float | str = "40u", l: float | str = "2u") -> None:
    """Diode-connected reference ``{prefix}D`` mirrored to ``{prefix}O``."""
    b.mosfet(f"{prefix}D", diode_node, diode_node, rail, rail, params, w, l)
    b.mosfet(f"{prefix}O", out_node, diode_node, rail, rail, params, w, l)


def common_source_stage(b: CircuitBuilder, prefix: str, *, vin: str,
                        vout: str, vdd: str = "vdd", gnd: str = "0",
                        nbias: str, p_params: MosfetParams,
                        n_params: MosfetParams,
                        wp: float | str = "60u", wn: float | str = "40u",
                        l: float | str = "2u") -> None:
    """PMOS common-source gain device with an NMOS current-sink load."""
    b.mosfet(f"{prefix}P", vout, vin, vdd, vdd, p_params, wp, l)
    b.mosfet(f"{prefix}N", vout, nbias, gnd, gnd, n_params, wn, l)


def miller_compensation(b: CircuitBuilder, prefix: str, *, n_hi: str,
                        n_out: str, n_mid: str, c: float | str = "10p",
                        rz: float | str = "3k") -> None:
    """Pole-splitting ``C_C`` + zero-nulling ``R_Z`` across a gain stage.

    *n_mid* is the internal node between the capacitor and the resistor;
    the caller names it so it can appear in the standard-node list.
    """
    b.capacitor(f"{prefix}C", n_hi, n_mid, c)
    b.resistor(f"{prefix}R", n_mid, n_out, rz)


def output_load(b: CircuitBuilder, prefix: str, node: str, *,
                gnd: str = "0", r: float | str = "500k",
                c: float | str = "10p") -> None:
    """Resistive/capacitive test load at an output node."""
    b.resistor(f"{prefix}R", node, gnd, r)
    b.capacitor(f"{prefix}C", node, gnd, c)


def feedback_divider(b: CircuitBuilder, prefix: str, *, vout: str,
                     vfb: str, gnd: str = "0",
                     r_top: float | str = "100k",
                     r_bot: float | str | None = "100k") -> None:
    """Feedback network ``vout -R_top- vfb [-R_bot- gnd]``.

    With *r_bot* the closed-loop gain is ``1 + r_top/r_bot``; without it
    (``None``) the amplifier runs as a unity-gain buffer — *vfb* drives
    a MOS gate, so no DC current flows and ``V(vfb) == V(vout)``.
    """
    b.resistor(f"{prefix}RT", vout, vfb, r_top)
    if r_bot is not None:
        b.resistor(f"{prefix}RB", vfb, gnd, r_bot)


def gm_inverter_section(b: CircuitBuilder, index: int, *, n_in: str,
                        n_mid: str, n_out: str, gnd: str = "0",
                        r_series: float | str = "1k",
                        c_in: float | str = "1n",
                        gm: float | str = "1m",
                        r_load: float | str = "1k",
                        c_load: float | str = "1n") -> None:
    """One active-RC low-pass section: RC pole + inverting gm stage.

    ``n_in -R- n_mid (C to ground) -gm- n_out (R_load || C_load)``; the
    VCCS sinks ``gm * V(n_mid)`` out of *n_out*, so the DC gain per
    section is ``-gm * R_load`` (unity-magnitude with the defaults).
    Chaining N sections yields the parameterized filter-ladder family —
    two nodes per section, structurally sparse, any length.
    """
    b.resistor(f"RS{index}", n_in, n_mid, r_series)
    b.capacitor(f"CS{index}", n_mid, gnd, c_in)
    b.vccs(f"G{index}", n_out, gnd, n_mid, gnd, gm)
    b.resistor(f"RO{index}", n_out, gnd, r_load)
    b.capacitor(f"CO{index}", n_out, gnd, c_load)
