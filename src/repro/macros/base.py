"""Macro abstraction: a reusable analog block plus its test knowledge.

A *macro* in the paper's sense is a reusable analog building block of a
mixed-signal IC (an IV-converter, an opamp, a filter) that ships with
standardized node names and a set of test-configuration descriptions
shared by its macro type.  This class bundles everything the ATPG flow
needs about one macro:

* the netlist (:meth:`Macro.build_circuit`),
* the standard node list (defines the bridging-fault universe),
* the exhaustive fault dictionary,
* the test-configuration implementations (bounds, seeds, procedures,
  box functions),
* the process-variation and tester-accuracy models.

Box functions come in two modes:

* ``"fast"`` — conservative constant half-widths shipped with the macro;
  instant, used by unit tests and interactive exploration;
* ``"calibrated"`` — Monte-Carlo calibration against the macro's process
  variation (cached on disk), used by the experiment benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

from repro.analysis import DEFAULT_OPTIONS, SimOptions
from repro.circuit.netlist import Circuit
from repro.faults.dictionary import (
    FaultDictionary,
    exhaustive_fault_dictionary,
)
from repro.testgen.configuration import TestConfiguration
from repro.testgen.execution import MacroTestbench
from repro.tolerance.equipment import DEFAULT_EQUIPMENT, EquipmentSpec
from repro.tolerance.process import DEFAULT_PROCESS, ProcessVariation

__all__ = ["Macro"]


class Macro(ABC):
    """Base class for analog macros under test."""

    #: Macro instance name (used in reports and cache tags).
    name: str = "macro"

    #: Macro type; test-configuration descriptions are shared per type.
    macro_type: str = "generic"

    def __init__(self,
                 process_variation: ProcessVariation = DEFAULT_PROCESS,
                 equipment: EquipmentSpec = DEFAULT_EQUIPMENT,
                 options: SimOptions = DEFAULT_OPTIONS) -> None:
        self.process_variation = process_variation
        self.equipment = equipment
        self.options = options
        self._circuit: Circuit | None = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @abstractmethod
    def build_circuit(self) -> Circuit:
        """Construct the fault-free netlist (uncached)."""

    @property
    def circuit(self) -> Circuit:
        """The fault-free netlist (cached)."""
        if self._circuit is None:
            self._circuit = self.build_circuit()
        return self._circuit

    @property
    @abstractmethod
    def standard_nodes(self) -> tuple[str, ...]:
        """Standardized node names; the bridging-fault universe."""

    # ------------------------------------------------------------------
    # fault universe
    # ------------------------------------------------------------------
    def fault_dictionary(self) -> FaultDictionary:
        """Exhaustive dictionary: all node-pair bridges + all pinholes."""
        return exhaustive_fault_dictionary(self.circuit,
                                           nodes=self.standard_nodes)

    # ------------------------------------------------------------------
    # test knowledge
    # ------------------------------------------------------------------
    @abstractmethod
    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        """The macro's candidate test-configuration implementations.

        Args:
            box_mode: ``"fast"`` (shipped constant boxes) or
                ``"calibrated"`` (Monte-Carlo, cached under *cache_dir*).
            cache_dir: calibration cache directory.
        """

    def testbench(self, box_mode: str = "fast",
                  cache_dir: Path | str | None = None) -> MacroTestbench:
        """Convenience: circuit + configurations wired into a testbench."""
        return MacroTestbench(
            self.circuit, self.test_configurations(box_mode, cache_dir),
            self.options)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
