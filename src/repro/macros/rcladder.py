"""An N-section RC ladder macro — the fast test vehicle.

Not from the paper: this tiny linear macro exists so the test suite and
the examples can exercise the *complete* ATPG pipeline (fault dictionary,
box functions, generation, compaction) with millisecond simulations.  It
deliberately mirrors the IV-converter macro's shape — standard nodes, a
DC configuration and a step configuration — at 1/100th of the cost.

Topology: ``VIN -> R1 -> n1 -> R2 -> ... -> vout``, one shunt capacitor
per section tap (per-section time constant ~ 1 us), and a load resistor
to ground so every DC level is observable.  ``n_sections`` is the
campaign layer's topology axis; the default two sections reproduce the
original fixed macro element for element.  Standard nodes stay
``vin, n1, vout, 0`` at every ladder length (internal taps past ``n1``
model unobservable routing) — 6 bridging faults, no pinholes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Circuit, CircuitBuilder
from repro.errors import TestGenerationError
from repro.macros.base import Macro
from repro.testgen.configuration import (
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import DCProcedure, Probe, StepProcedure
from repro.tolerance.box import BoxFunction, ConstantBoxFunction
from repro.tolerance.calibrate import calibrate_box_function

__all__ = ["RCLadderMacro"]

_FAST_BOXES = {
    "dc-out": (0.12,),       # V
    "step-mean": (0.06,),    # V
}


class RCLadderMacro(Macro):
    """Fast linear macro for pipeline tests (see module docstring)."""

    name = "rcladder"
    macro_type = "rc-ladder"

    STANDARD_NODES = ("vin", "n1", "vout", "0")
    INPUT_SOURCE = "VIN"

    def __init__(self, n_sections: int = 2, **kwargs) -> None:
        if n_sections < 2:
            raise TestGenerationError(
                f"RC ladder needs >= 2 sections, got {n_sections}")
        self.n_sections = n_sections
        super().__init__(**kwargs)

    def build_circuit(self) -> Circuit:
        b = CircuitBuilder(self.name)
        b.voltage_source(self.INPUT_SOURCE, "vin", "0", 0.0)
        n_in = "vin"
        for i in range(1, self.n_sections + 1):
            n_out = "vout" if i == self.n_sections else f"n{i}"
            b.resistor(f"R{i}", n_in, n_out, "1k")
            b.capacitor(f"C{i}", n_out, "0", "1n")
            n_in = n_out
        b.resistor("RL", "vout", "0", "10k")
        return b.build()

    @property
    def standard_nodes(self) -> tuple[str, ...]:
        return self.STANDARD_NODES

    def configuration_descriptions(
            self) -> tuple[TestConfigurationDescription, ...]:
        """Two templates: a DC level test and a step-response test."""
        return (
            TestConfigurationDescription(
                name="dc-out", macro_type=self.macro_type,
                title="DC transfer",
                control_nodes=("vin",), observe_nodes=("vout",),
                stimulus_template="dc(level) at vin",
                parameters=("level",),
                return_values=(ReturnValueSpec(
                    "delta_vout", "voltage", "dV(vout) vs nominal"),)),
            TestConfigurationDescription(
                name="step-mean", macro_type=self.macro_type,
                title="Step response",
                control_nodes=("vin",), observe_nodes=("vout",),
                stimulus_template="step(base, elev) at vin",
                parameters=("base", "elev"),
                variables={"sa": "10 MHz sampling", "t": "5 us test time"},
                return_values=(ReturnValueSpec(
                    "acc_dv", "voltage_sample",
                    "mean_i |dV(vout, t_i)|"),)),
        )

    def _bound_parameters(self, name: str) -> tuple[BoundParameter, ...]:
        level = ParameterSpec("level", "V", "DC input level")
        base = ParameterSpec("base", "V", "step base level")
        elev = ParameterSpec("elev", "V", "step elevation")
        table = {
            "dc-out": (BoundParameter(level, 0.0, 5.0, 2.0),),
            "step-mean": (BoundParameter(base, 0.0, 2.0, 0.5),
                          BoundParameter(elev, -2.0, 3.0, 2.0)),
        }
        return table[name]

    def _procedure(self, name: str):
        if name == "dc-out":
            return DCProcedure(self.INPUT_SOURCE, "level",
                               (Probe("v", "vout"),))
        if name == "step-mean":
            return StepProcedure(
                self.INPUT_SOURCE, "vout", base_param="base",
                elev_param="elev", mode="accumulate", sample_rate=10e6,
                test_time=5e-6, t_step=100e-9, slew_rate=1e8)
        raise TestGenerationError(f"unknown configuration {name!r}")

    def _box_function(self, name: str, box_mode: str,
                      cache_dir: Path | str | None) -> BoxFunction:
        if box_mode == "fast":
            return ConstantBoxFunction(_FAST_BOXES[name])
        if box_mode != "calibrated":
            raise TestGenerationError(
                f"box_mode must be 'fast' or 'calibrated', got {box_mode!r}")
        procedure = self._procedure(name)
        parameters = self._bound_parameters(name)
        bounds = np.array([[p.lower, p.upper] for p in parameters])
        names = [p.name for p in parameters]
        nominal_cache: dict[tuple[float, ...], np.ndarray] = {}

        def evaluate(circuit, point):
            point = np.atleast_1d(np.asarray(point, float))
            params = dict(zip(names, point))
            key = tuple(point.tolist())
            nominal_raw = nominal_cache.get(key)
            if nominal_raw is None:
                nominal_raw = procedure.simulate(self.circuit, params,
                                                 self.options)
                nominal_cache[key] = nominal_raw
            raw = procedure.simulate(circuit, params, self.options)
            return procedure.deviations(nominal_raw, raw)

        return calibrate_box_function(
            evaluate, self.circuit, self.process_variation, bounds,
            tag=f"{self.name}/{name}", points_per_axis=3, n_samples=10,
            cache_dir=cache_dir)

    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        configs = []
        for description in self.configuration_descriptions():
            configs.append(TestConfiguration(
                description=description,
                parameters=self._bound_parameters(description.name),
                procedure=self._procedure(description.name),
                box_function=self._box_function(description.name, box_mode,
                                                cache_dir),
                equipment=self.equipment))
        return tuple(configs)
