"""A five-transistor OTA macro — second macro type of the library.

The paper's framework is organized around *macro types*: "Sets of test
configuration descriptions are shared by macro types" (§2.1).  The
IV-converter demonstrates one type; this operational transconductance
amplifier demonstrates that the same building blocks (procedures, box
functions, generation, compaction) serve a different type with different
standard nodes and stimuli — here a *voltage*-input macro tested
single-endedly.

Topology (5 V supply, classic 5T-OTA + bias diode):

* NMOS differential pair ``M1`` (gate = ``vinp``) / ``M2`` (gate =
  ``vinn``, tied to a 2.5 V common-mode source);
* PMOS mirror ``M3/M4`` load, output at ``vout`` = drain of M2/M4;
* tail source ``M5`` biased by ``RBIAS`` + diode ``M6``;
* resistive/capacitive load ``RL/CL`` at ``vout``.

Standard nodes: ``vdd, 0, vinp, vinn, nbias, ntail, n1, vout`` — 8 nodes
-> 28 bridging pairs; 6 MOSFETs -> 6 pinholes (34 faults total).

Three test configurations ("ota" macro type):

* ``dc-transfer`` — sweep the positive input around the trip point,
  observe the output voltage;
* ``dc-supply-current`` — same stimulus, observe IDD;
* ``step-settle`` — small input step, accumulated output deviation.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.circuit import Circuit, CircuitBuilder
from repro.errors import TestGenerationError
from repro.macros.base import Macro
from repro.macros.ivconverter import IV_NMOS, IV_PMOS
from repro.testgen.configuration import (
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import (
    ACGainProcedure,
    DCProcedure,
    Probe,
    StepProcedure,
)
from repro.tolerance.box import BoxFunction, ConstantBoxFunction
from repro.tolerance.calibrate import calibrate_box_function

__all__ = ["OTAMacro"]

_FAST_BOXES = {
    "dc-transfer": (0.25,),        # V (open-loop output moves a lot)
    "dc-supply-current": (4e-6,),  # A
    "step-settle": (0.15,),        # V mean abs deviation
    "ac-gain": (3.0,),             # dB (open-loop gain spreads widely)
}


class OTAMacro(Macro):
    """Five-transistor OTA (see module docstring)."""

    name = "ota5t"
    macro_type = "ota"

    STANDARD_NODES = ("vdd", "0", "vinp", "vinn", "nbias", "ntail",
                      "n1", "vout")
    INPUT_SOURCE = "VINP"

    def __init__(self, supply: float = 5.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.supply = supply

    def build_circuit(self) -> Circuit:
        b = CircuitBuilder(self.name)
        b.voltage_source("VDD", "vdd", "0", self.supply)
        b.voltage_source(self.INPUT_SOURCE, "vinp", "0", 2.5)
        b.voltage_source("VINN", "vinn", "0", 2.5)
        # Bias chain.
        b.resistor("RBIAS", "vdd", "nbias", "200k")
        b.mosfet("M6", "nbias", "nbias", "0", "0", IV_NMOS, "20u", "2u")
        # Differential pair + mirror + tail.
        b.mosfet("M1", "n1", "vinp", "ntail", "0", IV_NMOS, "40u", "2u")
        b.mosfet("M2", "vout", "vinn", "ntail", "0", IV_NMOS, "40u", "2u")
        b.mosfet("M3", "n1", "n1", "vdd", "vdd", IV_PMOS, "40u", "2u")
        b.mosfet("M4", "vout", "n1", "vdd", "vdd", IV_PMOS, "40u", "2u")
        b.mosfet("M5", "ntail", "nbias", "0", "0", IV_NMOS, "20u", "2u")
        # Load.
        b.resistor("RL", "vout", "0", "500k")
        b.capacitor("CL", "vout", "0", "10p")
        return b.build()

    @property
    def standard_nodes(self) -> tuple[str, ...]:
        return self.STANDARD_NODES

    def configuration_descriptions(
            self) -> tuple[TestConfigurationDescription, ...]:
        """The OTA macro type's three templates."""
        return (
            TestConfigurationDescription(
                name="dc-transfer", macro_type=self.macro_type,
                title="DC transfer (single-ended drive)",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="dc(vin) at vinp (vinn held at VCM)",
                parameters=("vin",),
                return_values=(ReturnValueSpec(
                    "delta_vout", "voltage", "dV(vout) vs nominal"),)),
            TestConfigurationDescription(
                name="dc-supply-current", macro_type=self.macro_type,
                title="DC supply current",
                control_nodes=("vinp",), observe_nodes=("vdd",),
                stimulus_template="dc(vin) at vinp",
                parameters=("vin",),
                return_values=(ReturnValueSpec(
                    "delta_idd", "current", "dI(vdd) vs nominal"),)),
            TestConfigurationDescription(
                name="step-settle", macro_type=self.macro_type,
                title="Input step, accumulated output deviation",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="step(base, elev, slew_rate=sl) at vinp",
                parameters=("base", "elev"),
                variables={"sa": "20 MHz sampling", "t": "4 us test time",
                           "sl": "10 MV/s slew"},
                return_values=(ReturnValueSpec(
                    "acc_dv", "voltage_sample",
                    "mean_i |dV(vout, t_i)|"),)),
            TestConfigurationDescription(
                name="ac-gain", macro_type=self.macro_type,
                title="Small-signal gain at frequency",
                control_nodes=("vinp",), observe_nodes=("vout",),
                stimulus_template="ac(1) at vinp, measure |gain| at freq",
                parameters=("freq",),
                return_values=(ReturnValueSpec(
                    "delta_gain_db", "gain_db",
                    "gain deviation at freq [dB]"),)),
        )

    def _bound_parameters(self, name: str) -> tuple[BoundParameter, ...]:
        vin = ParameterSpec("vin", "V", "positive input level")
        base = ParameterSpec("base", "V", "step base level")
        elev = ParameterSpec("elev", "V", "step elevation")
        freq = ParameterSpec("freq", "Hz", "AC measurement frequency")
        table = {
            "dc-transfer": (BoundParameter(vin, 2.40, 2.60, 2.5),),
            "dc-supply-current": (BoundParameter(vin, 2.40, 2.60, 2.5),),
            "step-settle": (BoundParameter(base, 2.45, 2.55, 2.49),
                            BoundParameter(elev, -0.05, 0.05, 0.02)),
            "ac-gain": (BoundParameter(freq, 1e3, 1e6, 10e3),),
        }
        return table[name]

    def _procedure(self, name: str):
        if name == "dc-transfer":
            return DCProcedure(self.INPUT_SOURCE, "vin",
                               (Probe("v", "vout"),))
        if name == "dc-supply-current":
            return DCProcedure(self.INPUT_SOURCE, "vin",
                               (Probe("i", "VDD"),))
        if name == "step-settle":
            return StepProcedure(
                self.INPUT_SOURCE, "vout", base_param="base",
                elev_param="elev", mode="accumulate", sample_rate=20e6,
                test_time=4e-6, t_step=50e-9, slew_rate=10e6)
        if name == "ac-gain":
            return ACGainProcedure(self.INPUT_SOURCE, "vout",
                                   freq_param="freq")
        raise TestGenerationError(f"unknown configuration {name!r}")

    def _box_function(self, name: str, box_mode: str,
                      cache_dir: Path | str | None) -> BoxFunction:
        if box_mode == "fast":
            return ConstantBoxFunction(_FAST_BOXES[name])
        if box_mode != "calibrated":
            raise TestGenerationError(
                f"box_mode must be 'fast' or 'calibrated', got {box_mode!r}")
        procedure = self._procedure(name)
        parameters = self._bound_parameters(name)
        bounds = np.array([[p.lower, p.upper] for p in parameters])
        names = [p.name for p in parameters]
        nominal_cache: dict[tuple[float, ...], np.ndarray] = {}

        def evaluate(circuit, point):
            point = np.atleast_1d(np.asarray(point, float))
            params = dict(zip(names, point))
            key = tuple(point.tolist())
            nominal_raw = nominal_cache.get(key)
            if nominal_raw is None:
                nominal_raw = procedure.simulate(self.circuit, params,
                                                 self.options)
                nominal_cache[key] = nominal_raw
            raw = procedure.simulate(circuit, params, self.options)
            return procedure.deviations(nominal_raw, raw)

        return calibrate_box_function(
            evaluate, self.circuit, self.process_variation, bounds,
            tag=f"{self.name}/{name}", points_per_axis=3, n_samples=10,
            cache_dir=cache_dir)

    def test_configurations(
        self, box_mode: str = "fast",
        cache_dir: Path | str | None = None,
    ) -> tuple[TestConfiguration, ...]:
        configs = []
        for description in self.configuration_descriptions():
            configs.append(TestConfiguration(
                description=description,
                parameters=self._bound_parameters(description.name),
                procedure=self._procedure(description.name),
                box_function=self._box_function(description.name, box_mode,
                                                cache_dir),
                equipment=self.equipment))
        return tuple(configs)
