"""Monospace table rendering for benches and examples."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None,
                 align: Sequence[str] | None = None) -> str:
    """Render an ASCII table.

    Args:
        headers: column titles.
        rows: row cells; any object, rendered with ``str``.
        title: optional title line above the table.
        align: per-column ``"l"`` / ``"r"`` (default: left for the first
            column, right for the rest — the usual shape of numeric
            result tables).
    """
    columns = len(headers)
    if align is None:
        align = ["l"] + ["r"] * (columns - 1)
    if len(align) != columns:
        raise ValueError(f"align has {len(align)} entries for "
                         f"{columns} columns")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row} has {len(row)} cells, expected {columns}")

    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.ljust(width) if a == "l" else cell.rjust(width))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.extend([separator, fmt(headers), separator])
    lines.extend(fmt(row) for row in text_rows)
    lines.append(separator)
    return "\n".join(lines)
