"""Reporting: ASCII tables, tps heatmaps, experiment records."""

from repro.reporting.heatmap import default_buckets, render_tps_graph
from repro.reporting.records import (
    ExperimentRecord,
    load_records,
    write_records,
)
from repro.reporting.tables import render_table

__all__ = [
    "render_table",
    "render_tps_graph",
    "default_buckets",
    "ExperimentRecord",
    "write_records",
    "load_records",
]
