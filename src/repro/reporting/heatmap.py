"""ASCII rendering of tps-graphs, mimicking the paper's level buckets.

Figures 2-4 of the paper draw tps-graphs as shaded level plots with a
legend like ``0..-200, -200..-400, ...`` (hard impact) or
``1..0.5, 0.5..0, 0..-0.5, ...`` (soft impact).  :func:`render_tps_graph`
reproduces that as a character raster: darker characters = more negative
(more sensitive), with the bucket legend printed alongside.
"""

from __future__ import annotations

import numpy as np

from repro.testgen.tps import TpsGraph
from repro.units import format_value

__all__ = ["render_tps_graph", "default_buckets"]

#: Light -> dark ramp; index 0 is "insensitive", last is "most sensitive".
_RAMP = " .:-=+*#%@"


def default_buckets(values: np.ndarray, n_buckets: int = 8) -> np.ndarray:
    """Bucket edges spanning the value range (paper-legend style).

    Uses round-ish quantile edges so both the flat soft-region graphs
    (values in roughly [-2, 1]) and the violent hard-region graphs
    (values to -1200) render with full contrast.
    """
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.linspace(-1.0, 1.0, n_buckets + 1)
    lo, hi = float(np.min(finite)), float(np.max(finite))
    if lo == hi:
        lo, hi = lo - 0.5, hi + 0.5
    return np.linspace(hi, lo, n_buckets + 1)  # descending, like the legend


def render_tps_graph(graph: TpsGraph, n_buckets: int = 8,
                     buckets: np.ndarray | None = None) -> str:
    """Render a 1-D or 2-D tps-graph as an ASCII level plot with legend."""
    if buckets is None:
        buckets = default_buckets(graph.values, n_buckets)
    buckets = np.asarray(buckets, float)  # descending edges
    n_levels = len(buckets) - 1

    def bucket_char(value: float) -> str:
        if not np.isfinite(value):
            return _RAMP[-1]
        index = int(np.searchsorted(-buckets, -value, side="right")) - 1
        index = min(max(index, 0), n_levels - 1)
        ramp_pos = int(round(index * (len(_RAMP) - 1) / max(n_levels - 1, 1)))
        return _RAMP[ramp_pos]

    header = (f"tps-graph: {graph.config_name} / {graph.fault_id} "
              f"@ impact {format_value(graph.impact, 'ohm')}   "
              f"min S = {graph.min_value:.4g} at "
              f"{[format_value(v) for v in graph.argmin_params]}")

    lines = [header]
    if graph.values.ndim == 1:
        axis = graph.axes[0]
        row = "".join(bucket_char(v) for v in graph.values)
        lines.append(f"  {graph.param_names[0]}: "
                     f"{format_value(axis[0])} .. {format_value(axis[-1])}")
        lines.append("  [" + row + "]")
    else:
        # Rows = second parameter (descending, like the figures' y-axis),
        # columns = first parameter.
        x_axis, y_axis = graph.axes[0], graph.axes[1]
        lines.append(f"  y: {graph.param_names[1]} "
                     f"({format_value(y_axis[-1])} top .. "
                     f"{format_value(y_axis[0])} bottom)   "
                     f"x: {graph.param_names[0]} "
                     f"({format_value(x_axis[0])} .. "
                     f"{format_value(x_axis[-1])})")
        for j in range(len(y_axis) - 1, -1, -1):
            row = "".join(bucket_char(graph.values[i, j])
                          for i in range(len(x_axis)))
            lines.append(f"  {format_value(y_axis[j]):>10s} |{row}|")

    lines.append("  legend (S ranges, most sensitive last):")
    for level in range(n_levels):
        char = bucket_char((buckets[level] + buckets[level + 1]) / 2.0)
        lines.append(f"    '{char}'  {buckets[level]:10.4g} .. "
                     f"{buckets[level + 1]:10.4g}")
    return "\n".join(lines)
