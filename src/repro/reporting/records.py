"""Experiment records: paper-versus-measured bookkeeping.

The benchmark harness produces one :class:`ExperimentRecord` per paper
table/figure; EXPERIMENTS.md is generated from these.  A record keeps the
paper's claim verbatim next to the measured counterpart plus a judgement
note, so reviewers can audit each comparison independently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentRecord", "write_records", "load_records"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One paper-versus-measured comparison.

    Attributes:
        experiment_id: table/figure identifier ("Table 2", "Fig. 3").
        description: what is being compared.
        paper: the paper's value/claim (verbatim where legible).
        measured: our measured counterpart.
        agreement: short judgement ("matches", "qualitative", ...).
        note: caveats (OCR damage, substitution effects, ...).
    """

    experiment_id: str
    description: str
    paper: str
    measured: str
    agreement: str = "qualitative"
    note: str = ""

    def to_markdown(self) -> str:
        """Render as a markdown section for EXPERIMENTS.md."""
        lines = [
            f"### {self.experiment_id} — {self.description}",
            "",
            f"* **Paper:** {self.paper}",
            f"* **Measured:** {self.measured}",
            f"* **Agreement:** {self.agreement}",
        ]
        if self.note:
            lines.append(f"* **Note:** {self.note}")
        lines.append("")
        return "\n".join(lines)


def write_records(records: list[ExperimentRecord],
                  path: Path | str) -> None:
    """Append records to a JSON-lines artifact file (bench output)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        for record in records:
            handle.write(json.dumps({
                "experiment_id": record.experiment_id,
                "description": record.description,
                "paper": record.paper,
                "measured": record.measured,
                "agreement": record.agreement,
                "note": record.note,
            }) + "\n")


def load_records(path: Path | str) -> list[ExperimentRecord]:
    """Load records written by :func:`write_records`."""
    path = Path(path)
    records: list[ExperimentRecord] = []
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        records.append(ExperimentRecord(**data))
    return records
