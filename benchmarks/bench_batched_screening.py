"""Screening bench — batched SMW rank-k updates vs the per-fault overlay
path (not a paper artifact; tracks the perf trajectory of the batched
screening layer on top of PR 2's compile-once engine).

Candidate-fault screening asks one question per fault — *does this test
point detect it?* — across a whole fault family at a fixed stimulus.
The per-fault overlay path answers it with one warm-started Newton solve
per fault; the batched path factorizes the nominal Jacobian once per
(base, stimulus) pair and serves the entire family via Sherman-Morrison-
Woodbury rank-k updates, chord certification and a batched Newton
confirm (``repro.analysis.batched``), falling back to the per-fault path
only for faults the batched stages cannot converge.

This bench sweeps the IV-converter bridging family (45 faults sharing
the nominal compiled base — the family the SMW economics target) and the
full 55-fault dictionary through both paths in steady state, asserts

* >= 5x cheaper per-fault evaluation on the bridging family, and
* **zero** detection-verdict mismatches between the batched screen and
  the per-fault Newton path,

and appends the numbers to ``results/BENCH_engine.json``.
"""

from __future__ import annotations

import json
import time

from repro.faults import exhaustive_fault_dictionary
from repro.reporting import render_table
from repro.testgen.execution import TestExecutor

from conftest import RESULTS_DIR

BENCH_RECORD_PATH = RESULTS_DIR / "BENCH_engine.json"

#: Acceptance floor on the bridging-family screening speedup.
MIN_SPEEDUP = 5.0

#: Stimulus points per sweep (the optimizer's adjacent-step pattern).
PARAM_POINTS = ([20e-6], [22e-6])

#: Timed sweep repetitions (per-eval times are averaged over all).
REPEATS = 5


def _per_fault_sweeps(executor, faults):
    """Timed steady-state sweeps on the per-fault overlay path."""
    verdicts = {}
    started = time.perf_counter()
    for _ in range(REPEATS):
        for point in PARAM_POINTS:
            for fault in faults:
                report = executor.sensitivity(fault, point)
                verdicts[(tuple(point), fault.fault_id)] = report.detected
    seconds = time.perf_counter() - started
    return seconds, REPEATS * len(PARAM_POINTS) * len(faults), verdicts


def _batched_sweeps(executor, faults):
    """Timed steady-state sweeps on the batched screening path."""
    verdicts = {}
    started = time.perf_counter()
    for _ in range(REPEATS):
        for point in PARAM_POINTS:
            for fault, report in zip(
                    faults, executor.screen_faults(faults, point)):
                verdicts[(tuple(point), fault.fault_id)] = report.detected
    seconds = time.perf_counter() - started
    return seconds, REPEATS * len(PARAM_POINTS) * len(faults), verdicts


def _compare_paths(macro, configuration, faults):
    """Run both paths in steady state; return the comparison record."""
    per_fault = TestExecutor(macro.circuit, configuration, macro.options)
    batched = TestExecutor(macro.circuit, configuration, macro.options)

    # Warm-up: compiles bases, fills warm-start slots and (batched path)
    # builds the one factorization per (base, stimulus) pair.
    for point in PARAM_POINTS:
        for fault in faults:
            per_fault.sensitivity(fault, point)
        batched.screen_faults(faults, point)
    factorizations_after_warmup = batched.engine.stats.factorizations

    legacy_s, legacy_evals, legacy_verdicts = _per_fault_sweeps(
        per_fault, faults)
    batched_s, batched_evals, batched_verdicts = _batched_sweeps(
        batched, faults)
    steady_factorizations = (batched.engine.stats.factorizations
                             - factorizations_after_warmup)

    mismatches = [key for key, detected in batched_verdicts.items()
                  if legacy_verdicts[key] != detected]
    stats = batched.engine.stats
    return {
        "n_faults": len(faults),
        "n_param_points": len(PARAM_POINTS),
        "per_fault_evals": legacy_evals,
        "batched_evals": batched_evals,
        "per_fault_s_per_eval": legacy_s / max(legacy_evals, 1),
        "batched_s_per_eval": batched_s / max(batched_evals, 1),
        "per_fault_sims_per_sec": legacy_evals / max(legacy_s, 1e-12),
        "batched_sims_per_sec": batched_evals / max(batched_s, 1e-12),
        "speedup": (legacy_s / max(legacy_evals, 1))
                   / max(batched_s / max(batched_evals, 1), 1e-12),
        "factorizations": stats.factorizations,
        "steady_state_factorizations": steady_factorizations,
        "screened": stats.screened_simulations,
        "newton_confirms": stats.screen_newton_confirms,
        "fallbacks": stats.screen_fallbacks,
        "margin_confirms": batched.stats.screen_margin_confirms,
        "verdict_mismatches": len(mismatches),
        "n_detected": sum(1 for v in batched_verdicts.values() if v),
    }


def _emit_record(record: dict) -> None:
    """Append this run's record to results/BENCH_engine.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if BENCH_RECORD_PATH.exists():
        try:
            history = json.loads(BENCH_RECORD_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_RECORD_PATH.write_text(json.dumps(history, indent=1))


def bench_batched_screening(iv_macro):
    """Batched SMW screening vs per-fault overlay Newton, steady state."""
    circuit = iv_macro.circuit
    faults = list(exhaustive_fault_dictionary(
        circuit, nodes=iv_macro.standard_nodes))
    configuration = [c for c in iv_macro.test_configurations(box_mode="fast")
                     if c.name == "dc-output"][0]

    bridges = [f for f in faults if f.fault_type == "bridge"]
    bridging = _compare_paths(iv_macro, configuration, bridges)
    dictionary = _compare_paths(iv_macro, configuration, faults)

    record = {
        "bench": "batched_screening",
        "unix_time": time.time(),
        "circuit": circuit.name,
        "configuration": configuration.name,
        "bridging_family": bridging,
        "full_dictionary": dictionary,
    }
    _emit_record(record)

    rows = [
        [name,
         r["n_faults"],
         f"{r['per_fault_s_per_eval'] * 1e3:.3f}",
         f"{r['batched_s_per_eval'] * 1e3:.3f}",
         f"{r['speedup']:.1f}x",
         r["steady_state_factorizations"],
         r["fallbacks"],
         r["verdict_mismatches"]]
        for name, r in (("bridging family", bridging),
                        ("full dictionary", dictionary))]
    print()
    print(render_table(
        ["family", "faults", "per-fault ms/eval", "batched ms/eval",
         "speedup", "steady factorizations", "fallbacks", "mismatches"],
        rows,
        title="Batched SMW screening vs per-fault overlay Newton"))
    print(f"record appended to {BENCH_RECORD_PATH}")

    # Acceptance criteria of the batched screening layer.
    assert bridging["verdict_mismatches"] == 0
    assert dictionary["verdict_mismatches"] == 0
    assert bridging["steady_state_factorizations"] == 0
    assert bridging["speedup"] >= MIN_SPEEDUP, \
        (f"bridging-family speedup {bridging['speedup']:.2f}x below "
         f"{MIN_SPEEDUP}x floor")
    assert dictionary["speedup"] >= 1.0  # many 1-fault bases, never slower
