"""Table 3 — the tests won by configuration #5 (step-accumulate).

The paper's Table 3 lists the parameter values (par1=base, par2=elev) of
the two tests that configuration #5 won; they are few enough that the
compaction step keeps them verbatim instead of clustering a cloud.

This bench prints the parameters of every #5-assigned best test from the
full generation run and checks the paper's qualitative claim: the step
configurations pick up only a small share of the faults.
"""

from repro.reporting import ExperimentRecord, render_table

from conftest import fast_mode


def bench_table3_config5_tests(benchmark, full_generation, experiment_log):
    generation = full_generation

    def collect():
        return generation.tests_for_config("step-accumulate")

    tests = benchmark(collect)

    print()
    rows = [[t.fault.fault_id,
             f"{t.test.as_dict()['base']*1e6:.3g}",
             f"{t.test.as_dict()['elev']*1e6:.3g}",
             f"{t.sensitivity_at_critical:.3g}"]
            for t in tests]
    if not rows:
        rows = [["(no faults won by #5 in this run)", "-", "-", "-"]]
    print(render_table(
        ["fault", "par1 = base [uA]", "par2 = elev [uA]",
         "S at critical"], rows,
        title="Table 3: tests defined by configuration #5 "
              "(step-accumulate)"))

    if not fast_mode():
        share = len(tests) / max(generation.n_detected, 1)
        print(f"\nconfiguration #5 share of best tests: {share:.0%}")
        assert share <= 0.3, (
            "the step-accumulate configuration must win only a small "
            "share of the faults, as in the paper (2 of 55)")

    experiment_log([ExperimentRecord(
        experiment_id="Table 3",
        description="parameters of configuration-#5 tests",
        paper="two tests (par1=base, par2=elev in uA; exact values "
              "illegible in the scan)",
        measured=f"{len(tests)} test(s): " + "; ".join(
            f"{t.fault.fault_id} (base={t.test.as_dict()['base']*1e6:.3g}"
            f"uA, elev={t.test.as_dict()['elev']*1e6:.3g}uA)"
            for t in tests),
        agreement="qualitative",
        note="the reproducible claim is the small share of step-"
             "accumulate wins, not the exact fault identities")])
