"""Fig. 8 — optimized parameter values of configurations #1, #2 and #3.

The paper plots the optimal test-parameter values of every generated
test for the first three configurations; visible clustering along the
parameter axes motivates the compaction step.  This bench prints the
scatter (per-configuration coordinates of each fault's winning test) and
quantifies the clustering with the same single-linkage grouping the
compactor uses.
"""

import numpy as np

from repro.compaction import single_linkage_groups
from repro.reporting import ExperimentRecord, render_table

from conftest import fast_mode

CONFIGS = ("dc-output", "dc-supply-current", "thd")


def _ascii_scatter(points, width=52, height=14, x_label="", y_label=""):
    """Minimal 2-D ASCII scatter over the unit box."""
    raster = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(int(x * (width - 1)), width - 1)
        row = min(int((1.0 - y) * (height - 1)), height - 1)
        raster[row][col] = "o" if raster[row][col] == " " else "O"
    lines = [f"  ^ {y_label}"]
    lines += ["  |" + "".join(row) for row in raster]
    lines.append("  +" + "-" * width + f"> {x_label}")
    return "\n".join(lines)


def bench_fig8_parameter_scatter(benchmark, full_generation, iv_testbench,
                                 experiment_log):
    generation = full_generation

    def collect():
        scatter = {}
        for name in CONFIGS:
            config = iv_testbench.configuration(name)
            tests = generation.tests_for_config(name)
            normalized = np.array([
                config.parameters.normalize(t.test.values)
                for t in tests]) if tests else np.zeros((0, 0))
            scatter[name] = (tests, normalized)
        return scatter

    scatter = benchmark(collect)

    print()
    cluster_counts = {}
    for name in CONFIGS:
        tests, normalized = scatter[name]
        config = iv_testbench.configuration(name)
        print(f"--- configuration {name}: {len(tests)} optimal tests ---")
        if len(tests) == 0:
            cluster_counts[name] = 0
            continue
        rows = [[t.fault.fault_id,
                 ", ".join(f"{k}={v:.4g}" for k, v in
                           t.test.as_dict().items())]
                for t in tests]
        print(render_table(["fault", "optimal parameters"], rows,
                           align=["l", "l"]))
        if normalized.shape[1] == 2:
            names = config.parameters.names
            print(_ascii_scatter(normalized, x_label=names[0],
                                 y_label=names[1]))
        groups = single_linkage_groups(normalized, threshold=0.15)
        cluster_counts[name] = len(groups)
        print(f"single-linkage groups at radius 0.15: {len(groups)} "
              f"(sizes {[len(g) for g in groups]})\n")

    if not fast_mode():
        # Clustering is the load-bearing observation behind compaction.
        populated = [n for n in CONFIGS if len(scatter[n][0]) >= 4]
        assert populated, "expected at least one well-populated config"
        for name in populated:
            assert cluster_counts[name] < len(scatter[name][0]), (
                f"{name}: optimal tests must cluster (fewer groups than "
                "tests)")

    measured = ", ".join(
        f"{name}: {len(scatter[name][0])} tests -> "
        f"{cluster_counts[name]} groups" for name in CONFIGS)
    experiment_log([ExperimentRecord(
        experiment_id="Fig. 8",
        description="optimal parameter values of configurations #1-#3",
        paper="optimized parameter values cluster strongly along the "
              "parameter axes (results near Iin_dc=40uA and 100uA axis "
              "positions visible)",
        measured=measured,
        agreement="qualitative")])
