"""Serving bench — warm-cache throughput vs cold single-request serving.

The serving layer (:mod:`repro.serve`) promises that pooling, batching,
coalescing and verdict caching change wall-clock time only.  This bench
measures how much wall-clock they actually buy on the IV-converter's
55-fault dictionary, across three serving regimes:

* **cold** — a brand-new stack (pool + cache + front door) per request:
  every request pays macro construction, overlay compilation, nominal
  factorization and the full family solve;
* **warm engine** — the pool stays warm but the verdict cache is
  emptied per request: repeat traffic pays the family solve against a
  reused factorization, no compile;
* **warm cache** — repeat requests on an untouched stack: verdicts come
  straight out of the content-addressed cache.

Acceptance criteria (the ISSUE's serving floor):

* warm-cache throughput >= 10x the cold single-request throughput;
* **zero** verdict mismatches between the three regimes (bitwise);
* concurrent clients coalesce (nonzero coalesce ratio).

The record is appended to ``results/BENCH_engine.json``.  Running the
file directly with ``--smoke`` (as CI's headless docs job does)
exercises a miniature version on the RC ladder's 6-fault dictionary
that still pins every acceptance criterion.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.reporting import render_table
from repro.serve import (
    BatchingFrontDoor,
    EnginePool,
    ServingClient,
    VerdictCache,
)

# Resolved locally (not via conftest) so the file also runs headless as
# a plain script in environments without pytest — CI's smoke step.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_RECORD_PATH = RESULTS_DIR / "BENCH_engine.json"

#: Acceptance floor: warm-cache vs cold single-request throughput.
MIN_SPEEDUP = 10.0

#: Cold requests (each on a brand-new serving stack).
COLD_REQUESTS = 3

#: Warm requests per regime (averaged).
WARM_REQUESTS = 20

#: Concurrent clients of the coalescing measurement.
COALESCE_CLIENTS = 8


def _fresh_stack(window: float = 0.0) -> BatchingFrontDoor:
    return BatchingFrontDoor(EnginePool(capacity=4),
                             VerdictCache(capacity=8192), window=window)


def _screen_once(door: BatchingFrontDoor, macro: str,
                 configuration: str):
    return asyncio.run(
        ServingClient(door).screen(macro, configuration))


def _verdict_bits(response):
    """The full bit pattern of a response, keyed by fault id."""
    return {v.record.fault_id: (v.record.value, v.record.components,
                                v.record.deviations, v.record.boxes)
            for v in response.verdicts}


def _cold_phase(macro, configuration, requests):
    """Fresh stack per request: the cold single-request regime."""
    bits, n_verdicts = None, 0
    started = time.perf_counter()
    for _ in range(requests):
        door = _fresh_stack()
        try:
            response = _screen_once(door, macro, configuration)
        finally:
            door.close()
        bits = _verdict_bits(response)
        n_verdicts += len(response.verdicts)
    seconds = time.perf_counter() - started
    return seconds, n_verdicts, bits, response


def _warm_engine_phase(macro, configuration, requests):
    """Warm pool, fresh verdict cache per request."""
    pool = EnginePool(capacity=4)
    # One untimed request builds the entry and its factorization.
    warmup = BatchingFrontDoor(pool, VerdictCache(), window=0.0)
    _screen_once(warmup, macro, configuration)
    warmup.close()
    bits, n_verdicts = None, 0
    started = time.perf_counter()
    for _ in range(requests):
        door = BatchingFrontDoor(pool, VerdictCache(), window=0.0)
        try:
            response = _screen_once(door, macro, configuration)
        finally:
            door.close()
        bits = _verdict_bits(response)
        n_verdicts += len(response.verdicts)
    seconds = time.perf_counter() - started
    return seconds, n_verdicts, bits


def _warm_cache_phase(macro, configuration, requests):
    """Untouched stack: repeat requests served from the verdict cache."""
    door = _fresh_stack()
    try:
        _screen_once(door, macro, configuration)  # fill the cache
        bits, n_verdicts = None, 0
        started = time.perf_counter()
        for _ in range(requests):
            response = _screen_once(door, macro, configuration)
            bits = _verdict_bits(response)
            n_verdicts += len(response.verdicts)
        seconds = time.perf_counter() - started
        assert all(v.cached for v in response.verdicts)
    finally:
        door.close()
    return seconds, n_verdicts, bits


def _coalesce_phase(macro, configuration, n_clients):
    """Concurrent clients against one stack: the coalescing regime."""
    door = _fresh_stack(window=0.05)
    try:
        client = ServingClient(door)

        async def run_all():
            return await asyncio.gather(*[
                client.screen(macro, configuration)
                for _ in range(n_clients)])

        asyncio.run(run_all())
        stats = door.stats
        return {
            "clients": n_clients,
            "batches": stats.batches,
            "coalesce_ratio": stats.coalesce_ratio,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        }
    finally:
        door.close()


def _emit_record(record: dict) -> None:
    """Append this run's record to results/BENCH_engine.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if BENCH_RECORD_PATH.exists():
        try:
            history = json.loads(BENCH_RECORD_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_RECORD_PATH.write_text(json.dumps(history, indent=1))


def _run_bench(macro, configuration, *, cold_requests=COLD_REQUESTS,
               warm_requests=WARM_REQUESTS,
               coalesce_clients=COALESCE_CLIENTS,
               min_speedup=MIN_SPEEDUP, smoke=False):
    cold_s, cold_verdicts, cold_bits, response = _cold_phase(
        macro, configuration, cold_requests)
    engine_s, engine_verdicts, engine_bits = _warm_engine_phase(
        macro, configuration, warm_requests)
    cache_s, cache_verdicts, cache_bits = _warm_cache_phase(
        macro, configuration, warm_requests)
    coalesce = _coalesce_phase(macro, configuration, coalesce_clients)

    mismatches = sum(1 for fid, b in cold_bits.items()
                     if engine_bits[fid] != b or cache_bits[fid] != b)
    regimes = {
        "cold": (cold_s, cold_requests, cold_verdicts),
        "warm_engine": (engine_s, warm_requests, engine_verdicts),
        "warm_cache": (cache_s, warm_requests, cache_verdicts),
    }
    record = {
        "bench": "serving",
        "unix_time": time.time(),
        "macro": macro,
        "configuration": configuration,
        "n_faults": len(response.verdicts),
        "smoke": smoke,
        "verdict_mismatches": mismatches,
        "n_detected": response.n_detected,
        "coalesce": coalesce,
    }
    for name, (seconds, requests, verdicts) in regimes.items():
        record[name] = {
            "requests": requests,
            "s_per_request": seconds / max(requests, 1),
            "verdicts_per_sec": verdicts / max(seconds, 1e-12),
        }
    record["warm_cache_speedup"] = (
        record["warm_cache"]["verdicts_per_sec"]
        / max(record["cold"]["verdicts_per_sec"], 1e-12))
    record["warm_engine_speedup"] = (
        record["warm_engine"]["verdicts_per_sec"]
        / max(record["cold"]["verdicts_per_sec"], 1e-12))
    _emit_record(record)

    rows = [[name,
             record[name]["requests"],
             f"{record[name]['s_per_request'] * 1e3:.2f}",
             f"{record[name]['verdicts_per_sec']:.0f}"]
            for name in ("cold", "warm_engine", "warm_cache")]
    title = (f"ATPG serving regimes — {macro}/{configuration} "
             f"({record['n_faults']} faults)")
    if smoke:
        title += " (smoke subset)"
    print()
    print(render_table(
        ["regime", "requests", "ms/request", "verdicts/sec"], rows,
        title=title))
    print(f"warm-cache speedup over cold: "
          f"{record['warm_cache_speedup']:.1f}x, coalesce ratio "
          f"{coalesce['coalesce_ratio']:.2f} over "
          f"{coalesce['clients']} clients")
    print(f"record appended to {BENCH_RECORD_PATH}")

    # Acceptance criteria of the serving layer.
    assert mismatches == 0, f"{mismatches} verdict mismatch(es)"
    assert coalesce["coalesce_ratio"] > 0.0, "clients never coalesced"
    assert record["warm_cache_speedup"] >= min_speedup, \
        (f"warm-cache speedup {record['warm_cache_speedup']:.2f}x below "
         f"{min_speedup}x floor")
    return record


def bench_serving():
    """Warm-cache serving vs cold single-request stacks (55 faults)."""
    _run_bench("iv-converter", "dc-output")


def main(argv=None) -> int:
    """Script entry point (CI runs ``--smoke`` headless)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="miniature run: RC ladder, fewer repeats, "
                             "same acceptance floors")
    args = parser.parse_args(argv)
    if args.smoke:
        _run_bench("rc-ladder", "dc-out", cold_requests=2,
                   warm_requests=8, coalesce_clients=4, smoke=True)
    else:
        _run_bench("iv-converter", "dc-output")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
