"""Figs 2-4 — tps-graphs of the THD configuration at three fault impacts.

The paper plots test-parameter-sensitivity graphs for a resistive short
between "two arbitrarily chosen nodes" at bridge resistances 10 kOhm
(Fig. 2, hard-fault region), 34 kOhm (Fig. 3) and 75 kOhm (Fig. 4, both
soft region).  The claims to reproduce:

* detection regions exist and shrink as the impact weakens (values shift
  up / flatten);
* the landscape *shape* stabilizes in the soft region: the optimum of
  Fig. 3 and Fig. 4 sits at the same parameters, while the hard-region
  graph (Fig. 2) may differ;
* the tps minimum is a usable optimization target.

We use the bridge n2-n3 (second-stage input to output — a short across
the Miller compensation, squarely in the distortion path).
"""

import numpy as np

from repro.faults import BridgingFault
from repro.reporting import ExperimentRecord, render_tps_graph
from repro.testgen import compute_tps_graph, optimum_drift, shape_correlation

IMPACTS = (10e3, 34e3, 75e3)
GRID = 9


def bench_figs234_tps_graphs(benchmark, iv_testbench, experiment_log):
    executor = iv_testbench.executor("thd")
    fault = BridgingFault(node_a="n2", node_b="n3", impact=10e3)

    def compute_all():
        return [compute_tps_graph(executor, fault.with_impact(impact),
                                  points_per_axis=GRID)
                for impact in IMPACTS]

    graphs = benchmark.pedantic(compute_all, rounds=1, iterations=1,
                                warmup_rounds=0)

    figure_ids = ("Fig. 2 (hard region)", "Fig. 3 (soft region)",
                  "Fig. 4 (soft region)")
    print()
    for figure, graph in zip(figure_ids, graphs):
        print(f"--- {figure} ---")
        print(render_tps_graph(graph))
        print(f"  detection fraction: {graph.detection_fraction:.0%}\n")

    drift_23 = optimum_drift(graphs[1], graphs[2])
    corr_23 = shape_correlation(graphs[1], graphs[2])
    min_shift = [g.min_value for g in graphs]
    print(f"optimum drift Fig3->Fig4 (soft region): {drift_23:.3f}")
    print(f"shape correlation Fig3<->Fig4:          {corr_23:.3f}")
    print(f"graph minima (10k, 34k, 75k): "
          f"{min_shift[0]:.4g}, {min_shift[1]:.4g}, {min_shift[2]:.4g}")

    # Reproduction assertions (qualitative claims of section 3.1-3.2).
    assert all(g.detection_fraction > 0.0 for g in graphs), \
        "every impact level must have a detectable region"
    assert drift_23 <= 0.25, \
        "soft-region optimum must be stable between 34k and 75k"
    assert min_shift[2] > min_shift[0], \
        "weakening the impact must flatten the landscape upward"

    experiment_log([
        ExperimentRecord(
            experiment_id="Figs 2-4",
            description="THD tps-graphs at 10k/34k/75k bridge impact",
            paper="detection regions on the (Iin_dc, freq) plane; shape "
                  "stabilizes in the soft region; optimum at "
                  "freq=20 kHz, Iin_dc=40 uA for 75 kOhm",
            measured=(f"detection fractions "
                      f"{[round(g.detection_fraction, 2) for g in graphs]}"
                      f"; soft-region optimum drift {drift_23:.3f}; "
                      f"75k optimum at "
                      f"{np.round(graphs[2].argmin_params, 7).tolist()}"),
            agreement="qualitative",
            note="our reconstructed macro places the soft-region optimum "
                 "at high Iin_dc like the paper; the optimal frequency "
                 "depends on the compensation sizing of the "
                 "(unpublished) original design"),
    ])
