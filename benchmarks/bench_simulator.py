"""Simulator micro-benchmarks (engine performance, not a paper artifact).

The paper ran HSPICE on an HP700; every experiment above stands on this
engine instead.  These benches track the cost of the primitive
operations behind a generation run so performance regressions surface:

* nonlinear DC operating point of the 10-MOSFET macro (cold and warm);
* one THD measurement (256-step transient);
* one step-response measurement (300-step transient);
* vectorized level-1 MOSFET model evaluation.

These use full pytest-benchmark statistics (multiple rounds) since each
iteration is cheap.
"""

import numpy as np

from repro.analysis import CompiledCircuit, operating_point, transient
from repro.circuit.mosfet import mos_level1
from repro.waveforms import SineWave, StepWave


def bench_operating_point_cold(benchmark, iv_macro):
    circuit = iv_macro.circuit

    def solve():
        return operating_point(circuit)

    op = benchmark(solve)
    assert 0.1 < op.v("vout") < 4.9


def bench_operating_point_warm(benchmark, iv_macro):
    compiled = CompiledCircuit(iv_macro.circuit)
    warm = operating_point(compiled)

    def solve():
        return operating_point(compiled, x0=warm.x)

    op = benchmark(solve)
    assert op.iterations <= 3


def bench_thd_transient(benchmark, iv_macro):
    freq, spp = 20e3, 64
    wave = SineWave(offset=20e-6, amplitude=9e-6, freq=freq)
    circuit = iv_macro.circuit.replace_element(
        type(iv_macro.circuit.element("IIN"))("IIN", "0", "iin", wave))

    def run():
        return transient(circuit, t_stop=4 / freq, dt=1 / (spp * freq))

    result = benchmark(run)
    assert len(result) == 4 * spp + 1


def bench_step_transient(benchmark, iv_macro):
    wave = StepWave(base=5e-6, elev=30e-6, t_step=10e-9, slew_rate=800.0)
    circuit = iv_macro.circuit.replace_element(
        type(iv_macro.circuit.element("IIN"))("IIN", "0", "iin", wave))

    def run():
        return transient(circuit, t_stop=7.5e-6, dt=1 / 40e6)

    result = benchmark(run)
    assert len(result) == 301


def bench_mos_level1_bank(benchmark):
    rng = np.random.default_rng(7)
    n = 64
    vgs = rng.uniform(0.0, 3.0, n)
    vds = rng.uniform(-2.0, 4.0, n)
    vbs = rng.uniform(-2.0, 0.0, n)
    sign = np.where(rng.uniform(size=n) > 0.5, 1.0, -1.0)
    beta = rng.uniform(1e-5, 1e-3, n)
    vto = 0.8 * sign
    lam = np.full(n, 0.02)
    gamma = np.full(n, 0.4)
    phi = np.full(n, 0.7)

    def evaluate():
        return mos_level1(vgs, vds, vbs, sign, beta, vto, lam, gamma, phi)

    ids, gm, gds, gmb = benchmark(evaluate)
    assert np.all(np.isfinite(ids))
