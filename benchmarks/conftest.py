"""Shared machinery of the experiment benches.

Heavy artifacts are computed once per session and cached on disk under
``results/``:

* **calibrated tolerance boxes** per configuration
  (``results/box_cache/``) — the paper's precomputed box functions;
* **the full 55-fault generation run** (``results/generation_full.json``)
  — feeds the Table 2 / Table 3 / Fig. 8 / §4.2 benches.

Environment knobs:

* ``REPRO_JOBS``  — worker processes for the full run (default: all
  cores, capped at 24).
* ``REPRO_FRESH=1`` — ignore the cached generation result and recompute.
* ``REPRO_FAST=1`` — restrict the full run to a 12-fault subset
  (documented as a smoke run; the printed tables say so).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.macros import IVConverterMacro
from repro.testgen import (
    GenerationResult,
    GenerationSettings,
    MacroTestbench,
    generate_tests,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BOX_CACHE_DIR = RESULTS_DIR / "box_cache"
RECORDS_PATH = RESULTS_DIR / "experiments.jsonl"


def _n_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return max(1, min(os.cpu_count() or 1, 24))


def fast_mode() -> bool:
    """True when REPRO_FAST=1 restricts the run to a fault subset."""
    return os.environ.get("REPRO_FAST") == "1"


@pytest.fixture(scope="session")
def iv_macro():
    """The IV-converter macro used by every experiment bench."""
    return IVConverterMacro()


@pytest.fixture(scope="session")
def iv_configurations(iv_macro):
    """Calibrated test-configuration implementations (cached on disk)."""
    return iv_macro.test_configurations(box_mode="calibrated",
                                        cache_dir=BOX_CACHE_DIR)


@pytest.fixture(scope="session")
def iv_testbench(iv_macro, iv_configurations):
    """Testbench over the calibrated configurations."""
    return MacroTestbench(iv_macro.circuit, iv_configurations,
                          iv_macro.options)


@pytest.fixture(scope="session")
def iv_faults(iv_macro):
    """The paper's 55-fault exhaustive dictionary."""
    return iv_macro.fault_dictionary()


@pytest.fixture(scope="session")
def full_generation(iv_macro, iv_configurations, iv_faults):
    """The complete generation run (cached as JSON under results/)."""
    suffix = "fast" if fast_mode() else "full"
    cache = RESULTS_DIR / f"generation_{suffix}.json"
    settings = GenerationSettings()
    if cache.exists() and os.environ.get("REPRO_FRESH") != "1":
        return GenerationResult.from_json(
            cache.read_text(), iv_faults, iv_configurations, settings)

    fault_list = list(iv_faults)
    if fast_mode():
        # A representative 12-fault subset: mix of supply, signal-path
        # and pinhole defects.
        wanted = [f for f in fault_list if f.fault_type == "pinhole"][:4]
        wanted += [f for f in fault_list if f.fault_type == "bridge"][:8]
        fault_list = wanted
    result = generate_tests(iv_macro.circuit, iv_configurations,
                            fault_list, settings, n_jobs=_n_jobs())
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    cache.write_text(result.to_json())
    return result


@pytest.fixture(scope="session")
def experiment_log():
    """Collector appending ExperimentRecords to results/experiments.jsonl."""
    from repro.reporting import write_records

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    if RECORDS_PATH.exists():
        RECORDS_PATH.unlink()

    def log(records):
        write_records(list(records), RECORDS_PATH)

    return log
