"""Sparse-vs-dense screening cost across the active-filter ladder family.

The sparse linear-algebra backend (:mod:`repro.analysis.backend`) exists
for one reason: on large macros, every dense factorization and batched
Newton solve pays ``O(n^3)`` where the circuit matrix is structurally
sparse.  This bench sweeps the parameterized
:class:`~repro.macros.activefilter.ActiveFilterMacro` ladder over a
range of section counts and screens each size's IFA fault dictionary at
a grid of stimulus points under both backends (forced via
:func:`~repro.analysis.backend.backend_override`), mirroring what the
Fig. 6 generation loop does: factorize once per (base, stimulus) pair,
then serve thousands of per-fault evaluations from the warm engine.

Two per-fault costs are recorded per (size, backend) cell:

* **cold** — first contact: per-stimulus factorizations plus the
  first-screen Newton confirmations of strongly-shifted faults;
* **steady** — repeat screens on the warmed engine, the amortized
  chord-certified path the generation loop pays at every tps-graph
  grid point.  This is the headline *per-fault eval cost*: the
  acceptance asserts its dense/sparse speedup at the largest size
  (>= 5x) and the ~linear log-log slope of the sparse curve.

Dense and sparse verdicts must match exactly at every size and
stimulus point (zero mismatches).  The record is appended to
``results/BENCH_engine.json``.  ``--smoke`` (CI's headless docs job)
runs a miniature sweep that still pins the zero-mismatch contract but
applies no speedup floor.  Without SciPy the sweep degrades to
dense-only and checks nothing but its own plumbing.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.analysis.backend import backend_override, sparse_available
from repro.macros import ActiveFilterMacro
from repro.reporting import render_table
from repro.testgen.execution import TestExecutor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_RECORD_PATH = RESULTS_DIR / "BENCH_engine.json"

#: Ladder sizes of the full sweep (sections -> 2N+3 unknowns).
FULL_SECTIONS = (60, 125, 250, 500, 1000)

#: Miniature sweep for --smoke (still >= 3 sizes for the slope fit).
SMOKE_SECTIONS = (10, 20, 40)

#: Stimulus grid: each point costs one factorization per overlay base.
FULL_POINTS = 6
SMOKE_POINTS = 3

#: IFA dictionary trim per size (screening cost scales with faults).
FAULT_TOP_N = 16

#: Steady-state timing repeats (minimum is reported).
STEADY_REPEATS = 2

#: Acceptance floor: steady-state sparse speedup at the largest size.
MIN_SPEEDUP = 5.0

#: Acceptance ceiling on the sparse steady log-log cost slope
#: (~linear; the dense batched solves approach 2-3).
MAX_SPARSE_SLOPE = 1.5


def _emit_record(record: dict) -> None:
    """Append this run's record to results/BENCH_engine.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if BENCH_RECORD_PATH.exists():
        try:
            history = json.loads(BENCH_RECORD_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_RECORD_PATH.write_text(json.dumps(history, indent=1))


def _screen_size(macro, faults, mode, n_points):
    """Cold + steady screening cost of one (size, backend) cell.

    Screens the full fault list at *n_points* stimulus levels: the cold
    pass on a fresh engine (factorizations + first-contact confirms),
    then :data:`STEADY_REPEATS` warm passes whose fastest total is the
    steady cost.  Returns per-fault-eval seconds for both, the steady
    ``(detected, value)`` verdicts across all points, and engine stats.
    """
    configuration = [c for c in macro.test_configurations(box_mode="fast")
                     if c.name == "dc-out"][0]
    bound = configuration.parameters["level"]
    span = bound.upper - bound.lower
    vectors = [[bound.lower + span * i / (n_points - 1)]
               for i in range(n_points)]
    with backend_override(mode):
        executor = TestExecutor(macro.circuit, configuration, macro.options)
        started = time.perf_counter()
        for vector in vectors:
            executor.screen_faults(faults, vector)
        cold_s = time.perf_counter() - started
        steady_s = math.inf
        for _ in range(STEADY_REPEATS):
            started = time.perf_counter()
            per_point = [executor.screen_faults(faults, vector)
                         for vector in vectors]
            steady_s = min(steady_s, time.perf_counter() - started)
    verdicts = [(bool(r.detected), float(r.value))
                for reports in per_point for r in reports]
    n_evals = len(faults) * n_points
    return cold_s / n_evals, steady_s / n_evals, verdicts, \
        executor.engine.stats


def _fit_slope(sizes, costs):
    """Least-squares slope of log(cost) against log(size)."""
    n = len(sizes)
    lx = [math.log(s) for s in sizes]
    ly = [math.log(max(c, 1e-12)) for c in costs]
    mx, my = sum(lx) / n, sum(ly) / n
    sxx = sum((x - mx) ** 2 for x in lx)
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    return sxy / sxx


def _run_bench(sections, n_points, *, smoke=False, min_speedup=None,
               max_slope=None):
    """Sweep the ladder sizes, emit + assert the scaling record."""
    have_sparse = sparse_available()
    modes = ("dense", "sparse") if have_sparse else ("dense",)
    rows, cells, mismatch_total = [], [], 0
    for n_sections in sections:
        macro = ActiveFilterMacro(n_sections=n_sections,
                                  fault_top_n=FAULT_TOP_N)
        faults = list(macro.fault_dictionary())
        unknowns = 2 * n_sections + 3
        cell = {"n_sections": n_sections, "unknowns": unknowns,
                "n_faults": len(faults), "n_points": n_points}
        verdicts = {}
        for mode in modes:
            cold, steady, verdicts[mode], stats = _screen_size(
                macro, faults, mode, n_points)
            cell[mode] = {
                "cold_per_fault_s": cold,
                "steady_per_fault_s": steady,
                "factorizations": stats.factorizations,
                "sparse_factorizations": stats.sparse_factorizations,
            }
        if have_sparse:
            mismatches = sum(
                d[0] != s[0] for d, s in zip(verdicts["dense"],
                                             verdicts["sparse"]))
            mismatch_total += mismatches
            cell["verdict_mismatches"] = mismatches
            cell["max_value_delta"] = max(
                abs(d[1] - s[1]) for d, s in zip(verdicts["dense"],
                                                 verdicts["sparse"]))
            cell["cold_speedup"] = (cell["dense"]["cold_per_fault_s"] /
                                    max(cell["sparse"]["cold_per_fault_s"],
                                        1e-12))
            cell["steady_speedup"] = (
                cell["dense"]["steady_per_fault_s"] /
                max(cell["sparse"]["steady_per_fault_s"], 1e-12))
        cells.append(cell)
        rows.append([
            n_sections, unknowns, len(faults),
            f"{cell['dense']['steady_per_fault_s'] * 1e3:.3f}",
            (f"{cell['sparse']['steady_per_fault_s'] * 1e3:.3f}"
             if have_sparse else "-"),
            (f"{cell['steady_speedup']:.1f}x" if have_sparse else "-"),
            (f"{cell['cold_speedup']:.1f}x" if have_sparse else "-"),
            cell.get("verdict_mismatches", "-"),
        ])

    sizes = [c["unknowns"] for c in cells]
    dense_slope = _fit_slope(sizes, [c["dense"]["steady_per_fault_s"]
                                     for c in cells])
    sparse_slope = (_fit_slope(sizes, [c["sparse"]["steady_per_fault_s"]
                                       for c in cells])
                    if have_sparse else None)

    record = {
        "bench": "sparse_scaling",
        "unix_time": time.time(),
        "smoke": smoke,
        "sparse_available": have_sparse,
        "fault_top_n": FAULT_TOP_N,
        "steady_repeats": STEADY_REPEATS,
        "sizes": cells,
        "dense_steady_loglog_slope": dense_slope,
        "sparse_steady_loglog_slope": sparse_slope,
        "largest_steady_speedup":
            cells[-1].get("steady_speedup") if have_sparse else None,
        "largest_cold_speedup":
            cells[-1].get("cold_speedup") if have_sparse else None,
        "verdict_mismatches": mismatch_total if have_sparse else None,
    }
    _emit_record(record)

    title = "Sparse-vs-dense screening scaling (active-filter ladder)"
    if smoke:
        title += " (smoke subset)"
    if not have_sparse:
        title += " [scipy absent: dense only]"
    print()
    print(render_table(
        ["sections", "unknowns", "faults", "dense ms/eval",
         "sparse ms/eval", "steady speedup", "cold speedup",
         "mismatches"], rows, title=title))
    slope_txt = (f"{sparse_slope:.2f}" if sparse_slope is not None
                 else "n/a")
    print(f"steady log-log cost slope: dense {dense_slope:.2f}, "
          f"sparse {slope_txt}")
    print(f"record appended to {BENCH_RECORD_PATH}")

    if have_sparse:
        assert mismatch_total == 0, \
            f"{mismatch_total} dense/sparse verdict mismatches"
        largest = cells[-1]
        assert largest["sparse"]["sparse_factorizations"] > 0, \
            "sparse mode never reached the sparse factorization path"
        if min_speedup is not None:
            assert largest["steady_speedup"] >= min_speedup, \
                (f"steady sparse speedup {largest['steady_speedup']:.2f}x "
                 f"at {largest['unknowns']} unknowns below "
                 f"{min_speedup}x floor")
        if max_slope is not None:
            assert sparse_slope <= max_slope, \
                (f"sparse steady cost slope {sparse_slope:.2f} above "
                 f"{max_slope} (not ~linear)")
    return record


def bench_sparse_scaling():
    """Per-fault screening cost vs circuit size, dense vs sparse."""
    _run_bench(FULL_SECTIONS, FULL_POINTS, min_speedup=MIN_SPEEDUP,
               max_slope=MAX_SPARSE_SLOPE)


def main(argv=None) -> int:
    """Script entry point (CI runs ``--smoke`` headless)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="miniature sweep: small ladders, parity "
                             "checked, no speedup floor")
    args = parser.parse_args(argv)
    if args.smoke:
        _run_bench(SMOKE_SECTIONS, SMOKE_POINTS, smoke=True)
    else:
        _run_bench(FULL_SECTIONS, FULL_POINTS, min_speedup=MIN_SPEEDUP,
                   max_slope=MAX_SPARSE_SLOPE)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
