"""Section 4.2 — collapsing the fault-specific tests into a compact set.

The paper's second step collapses the (up to) 55 fault-specific optimal
tests onto a much smaller set by grouping them in parameter space and
accepting each group only if every member fault's sensitivity slides at
most a delta-fraction toward insensitivity.  The section-4.2 text is
truncated in the scan; the reproducible claims are:

* the optimized tests group, so the compact set is far smaller than the
  original ("the test set size is proportional to the number of tested
  faults which is undesirable" -> fixed);
* the delta parameter trades set size against sensitivity loss;
* coverage at dictionary impact is preserved for the faults that were
  detectable there.

This bench runs the collapse for delta in {0.05, 0.1, 0.2} and verifies
coverage of the delta=0.1 set.
"""

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    evaluate_coverage,
)
from repro.reporting import ExperimentRecord, render_table

from conftest import fast_mode

DELTAS = (0.05, 0.1, 0.2)


def bench_sec42_compaction(benchmark, full_generation, iv_testbench,
                           experiment_log):
    generation = full_generation

    def run_delta_sweep():
        return {delta: collapse_test_set(
            generation, iv_testbench, CompactionSettings(delta=delta))
            for delta in DELTAS}

    results = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)

    print()
    rows = [[f"{delta:.2f}", r.n_original_tests, r.n_compact_tests,
             f"{r.compaction_ratio:.1f}x", f"{r.worst_loss():.3g}"]
            for delta, r in results.items()]
    print(render_table(
        ["delta", "original tests", "compact tests", "ratio",
         "worst sensitivity loss"], rows,
        title="Section 4.2: test-set collapse vs delta"))

    chosen = results[0.1]
    print("\ncompact set at delta = 0.1:")
    group_rows = [[g.config_name,
                   ", ".join(f"{k}={v:.4g}" for k, v in
                             g.collapsed_test.as_dict().items()),
                   g.size] for g in chosen.groups]
    print(render_table(
        ["configuration", "collapsed parameters", "faults"], group_rows,
        align=["l", "l", "r"]))

    # Coverage of the compact set at dictionary impact.
    detected = [t for t in generation.tests if t.detected_at_dictionary]
    report = evaluate_coverage(iv_testbench,
                               [t.fault for t in detected],
                               list(chosen.tests))
    print(f"\ncoverage at dictionary impact: {report.n_covered}/"
          f"{report.n_faults} "
          f"({report.fraction:.0%}) with {chosen.n_compact_tests} tests")
    for miss in report.uncovered():
        print(f"  uncovered: {miss.fault_id} "
              f"(best S = {miss.best_sensitivity:.3g})")

    # Monotonicity of the delta trade-off and real compaction.
    sizes = [results[d].n_compact_tests for d in DELTAS]
    assert sizes[0] >= sizes[1] >= sizes[2], \
        "larger delta must never enlarge the compact set"
    if not fast_mode():
        assert chosen.compaction_ratio >= 2.0, \
            "the compact set must be substantially smaller"
        assert report.fraction >= 0.95, \
            "compaction must preserve dictionary-impact coverage"

    experiment_log([ExperimentRecord(
        experiment_id="Section 4.2",
        description="test-set collapse (delta-screened grouping)",
        paper="tests group in parameter space; a collapsed high-quality "
              "test set results (counts truncated in the scan)",
        measured=f"{chosen.n_original_tests} -> "
                 f"{chosen.n_compact_tests} tests at delta=0.1 "
                 f"({chosen.compaction_ratio:.1f}x), coverage "
                 f"{report.fraction:.0%}; delta sweep sizes "
                 f"{dict(zip(DELTAS, sizes))}",
        agreement="qualitative")])
