"""Fig. 6 ablation — the efficient algorithm vs naive re-optimization.

Section 3.3 presents "a much more efficient version of the algorithm
presented in [6]": thanks to the soft-fault-region stability (§3.2), test
parameters are optimized *once* per configuration at a weakened impact,
and the impact-adaptation loop only re-evaluates the candidates.  The
naive predecessor re-optimizes every configuration at every impact
level.

This bench runs both variants on a fault sample (DC configurations keep
each simulation to an operating-point solve) and compares simulator-call
counts and outcomes: same winners, several-fold fewer simulations.
"""

from repro.faults import BridgingFault
from repro.reporting import ExperimentRecord, render_table
from repro.testgen import (
    GenerationSettings,
    MacroTestbench,
    generate_test_for_fault,
)

SAMPLE = (("n1", "n2"), ("n2", "n3"), ("vout", "0"), ("nbias", "ntail"),
          ("vdd", "n3"))


def bench_ablation_efficient_vs_naive(benchmark, iv_macro,
                                      iv_configurations, experiment_log):
    dc_configs = [c for c in iv_configurations
                  if c.name.startswith("dc-")]
    faults = [BridgingFault(node_a=a, node_b=b, impact=10e3)
              for a, b in SAMPLE]

    def run(naive: bool):
        settings = GenerationSettings(reoptimize_each_impact=naive)
        bench_obj = MacroTestbench(iv_macro.circuit, dc_configs,
                                   iv_macro.options)
        generated = [generate_test_for_fault(bench_obj, fault, settings)
                     for fault in faults]
        return generated, bench_obj.stats.total_simulations

    def run_both():
        return run(naive=False), run(naive=True)

    (efficient, sims_eff), (naive, sims_naive) = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    agree = 0
    for e, n in zip(efficient, naive):
        same = e.config_name == n.config_name
        agree += int(same)
        rows.append([e.fault.fault_id, e.config_name, n.config_name,
                     e.n_simulations, n.n_simulations,
                     "yes" if same else "NO"])
    print()
    print(render_table(
        ["fault", "efficient winner", "naive winner", "sims (eff)",
         "sims (naive)", "same winner"], rows,
        title="Fig. 6 ablation: optimize-once vs re-optimize-per-impact"))
    speedup = sims_naive / sims_eff
    print(f"\ntotal simulations: efficient {sims_eff}, naive {sims_naive} "
          f"-> {speedup:.1f}x fewer simulator calls")

    assert sims_naive > sims_eff, \
        "re-optimizing at every impact must cost more simulations"
    assert agree == len(faults), \
        "both variants must select the same winning configuration"

    experiment_log([ExperimentRecord(
        experiment_id="Fig. 6 (ablation)",
        description="efficient generation vs naive re-optimization [6]",
        paper="'a much more efficient version of the algorithm presented "
              "in [6] can be constructed' via the soft-region "
              "observation; no speedup figure given",
        measured=f"{speedup:.1f}x fewer simulator calls on a 5-fault DC "
                 f"sample with identical winners",
        agreement="matches")])
