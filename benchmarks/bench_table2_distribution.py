"""Table 2 — distribution of best tests over the five configurations.

The paper runs the Fig. 6 generation for all 55 dictionary faults
(45 bridging at 10 kOhm initial impact, 10 pinholes at 2 kOhm) and
reports how many faults each test configuration wins.  The scan of
Table 2 is OCR-damaged; the legible fragments are:

* configuration #1 wins 22 of the 45 bridging faults (about half);
* the pinhole column contains small counts spread over several
  configurations (legible digits 1, 3, ...);
* configuration #5 wins 2 faults.

Reproduction claims: the DC output-voltage configuration dominates the
bridging faults; the remaining faults spread across the supply-current,
THD and step configurations with small counts; every fault receives a
verdict (best test, impact-increase-needed, or undetectable).
"""

from repro.reporting import ExperimentRecord, render_table

from conftest import fast_mode


def bench_table2_best_test_distribution(benchmark, full_generation,
                                        iv_configurations, experiment_log):
    generation = full_generation

    def build_table():
        distribution = generation.distribution()
        order = [c.name for c in iv_configurations] + ["<undetectable>"]
        rows = []
        for index, name in enumerate(order, start=1):
            counts = distribution.get(name, {})
            label = (f"#{index} {name}" if name != "<undetectable>"
                     else name)
            rows.append([label, counts.get("bridge", 0),
                         counts.get("pinhole", 0)])
        return distribution, rows

    distribution, rows = benchmark(build_table)

    scope = "12-fault smoke subset" if fast_mode() else "all 55 faults"
    print()
    print(render_table(
        ["ID / test configuration", "bridge", "pinhole"], rows,
        title=f"Table 2: best-test distribution ({scope})"))
    total = sum(v for row in distribution.values() for v in row.values())
    n_undetectable = sum(
        distribution.get("<undetectable>", {}).values())
    n_impact_increase = sum(1 for t in generation.tests
                            if t.required_impact_increase)
    print(f"\nfaults processed: {total}  "
          f"(undetectable: {n_undetectable}, "
          f"needed impact increase: {n_impact_increase})")
    print(f"simulations: {generation.total_simulations}, "
          f"generation wall time: {generation.wall_time_s:.0f}s "
          f"(cached runs report the original time)")

    assert total == len(generation.tests)
    if not fast_mode():
        assert total == 55
        bridge_counts = {name: row.get("bridge", 0)
                         for name, row in distribution.items()}
        winner = max(bridge_counts, key=bridge_counts.get)
        # Paper: configuration #1 (DC output) dominates with 22/45.
        assert winner == "dc-output", (
            f"expected the DC output configuration to dominate the "
            f"bridging faults as in the paper, got {winner}")

    paper_cells = ("#1 wins 22/45 bridges; pinholes spread with small "
                   "counts (1, 3 legible); #5 wins 2; other cells "
                   "illegible in the scan")
    measured = "; ".join(
        f"{row[0]}: bridge={row[1]}, pinhole={row[2]}" for row in rows)
    experiment_log([ExperimentRecord(
        experiment_id="Table 2",
        description="best-test distribution over configurations",
        paper=paper_cells, measured=measured,
        agreement="qualitative",
        note="absolute counts depend on the reconstructed macro and "
             "tolerance boxes; the dominance pattern (DC output wins "
             "about half the bridges, remainder spread thinly) is the "
             "reproducible claim")])
