"""Fig. 7 — the pinhole fault model and its position behaviour.

The paper adopts the Eckersall et al. gate-oxide-short model (split
channel + shunt resistor) and cites their conclusion that "defects
positioned near the drain region have relative low detectability"; it
fixes defects at 25% of the channel length from the drain.  This bench
verifies the structural model and regenerates the position-vs-
detectability observation on the IV-converter's second stage.
"""

from repro.circuit import Mosfet
from repro.faults import PinholeFault
from repro.reporting import ExperimentRecord, render_table


def bench_fig7_pinhole_model(benchmark, iv_macro, iv_testbench,
                             experiment_log):
    executor = iv_testbench.executor("dc-output")
    positions = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9)
    shunt = 50e3  # moderate impact: position effects not yet saturated

    def sweep():
        values = {}
        for position in positions:
            fault = PinholeFault(device="M6", impact=shunt,
                                 position=position)
            values[position] = executor.sensitivity(fault, [20e-6]).value
        return values

    sensitivities = benchmark.pedantic(sweep, rounds=1, iterations=1,
                                       warmup_rounds=0)

    # Structural checks of the injected model (paper Fig. 7).
    fault = PinholeFault(device="M6", impact=2e3, position=0.25)
    faulty = fault.apply(iv_macro.circuit)
    drain_side = faulty.element("M6_PHD")
    source_side = faulty.element("M6_PHS")
    original = iv_macro.circuit.element("M6")
    assert isinstance(drain_side, Mosfet)
    assert drain_side.l == 0.25 * original.l
    assert source_side.l == 0.75 * original.l
    assert faulty.element(fault.element_name).resistance == 2e3

    rows = [[f"{p:.0%} from drain", f"{sensitivities[p]:.3g}",
             "detected" if sensitivities[p] < 0 else "hidden"]
            for p in positions]
    print()
    print(render_table(
        ["defect position", f"S_f (dc-output, Rs={shunt/1e3:.0f}k)",
         "verdict"], rows,
        title="Fig. 7: pinhole model - detectability vs channel "
              "position (M6)"))

    near_drain = sensitivities[0.05]
    mid_channel = sensitivities[0.5]
    assert near_drain > mid_channel, \
        "drain-proximal defects must be less detectable (higher S)"

    experiment_log([ExperimentRecord(
        experiment_id="Fig. 7",
        description="pinhole model (split channel + gate shunt)",
        paper="Eckersall model; near-drain defects have relative low "
              "detectability; paper fixes position at 25% from drain",
        measured=f"S at 5% from drain = {near_drain:.3g} vs "
                 f"S at mid-channel = {mid_channel:.3g} "
                 "(near-drain less detectable)",
        agreement="matches")])
