"""Campaign bench — scenario throughput over the full sweep spec.

Measures the campaign engine end to end: expand
``benchmarks/campaigns/full.toml`` (the whole macro zoo as topology
families x all seven shipped corners x two dictionary derivations,
168 cells), run every cell through the lint-vetted sharded screening
pipeline, and report cells/second plus per-cell cost.  A second pass
with ``--resume`` against the fresh manifest measures the resume
fast-path (every cell skipped).

Acceptance criteria (the ISSUE's campaign floor):

* >= 100 cells executed end to end by one invocation;
* zero ``failed`` cells (rejections are legitimate, failures are not);
* the manifest is bitwise identical when re-run (spot-checked here
  with a second serial run over a subset; the full worker-count sweep
  lives in ``tests/scenarios/test_campaign.py``).

The record is appended to ``results/BENCH_engine.json``.  ``--smoke``
(CI's campaign job) runs the 6-cell ``smoke.toml`` instead, pinning
the same invariants in seconds.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.reporting import render_table
from repro.scenarios import load_spec, run_campaign, summarize_manifest

# Resolved locally (not via conftest) so the file also runs headless as
# a plain script in environments without pytest — CI's smoke step.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_RECORD_PATH = RESULTS_DIR / "BENCH_engine.json"
CAMPAIGNS = Path(__file__).resolve().parent / "campaigns"

#: Acceptance floor of the full run.
MIN_CELLS = 100


def _emit_record(record: dict) -> None:
    """Append this run's record to results/BENCH_engine.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if BENCH_RECORD_PATH.exists():
        try:
            history = json.loads(BENCH_RECORD_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_RECORD_PATH.write_text(json.dumps(history, indent=1))


def _run_bench(spec_path: Path, *, jobs: int, smoke: bool) -> dict:
    spec = load_spec(spec_path)
    cells = spec.cells()
    manifest = Path(tempfile.mkdtemp(prefix="bench_campaign_")) \
        / f"{spec.name}.jsonl"
    print(f"campaign {spec.name!r}: {len(cells)} cells, "
          f"{jobs} worker(s)")

    started = time.perf_counter()
    result = run_campaign(spec, manifest, n_jobs=jobs)
    seconds = time.perf_counter() - started

    resume_started = time.perf_counter()
    resumed = run_campaign(spec, manifest, n_jobs=jobs, resume=True)
    resume_seconds = time.perf_counter() - resume_started

    summary = summarize_manifest(result.records)
    counts = result.counts
    record = {
        "bench": "campaign",
        "smoke": smoke,
        "spec": spec_path.name,
        "n_cells": result.n_cells,
        "n_jobs": jobs,
        "status": counts,
        "total_faults": summary["total_faults"],
        "total_detected": summary["total_detected"],
        "mean_coverage": summary["mean_coverage"],
        "seconds": seconds,
        "cells_per_sec": result.n_cells / max(seconds, 1e-12),
        "ms_per_cell": 1e3 * seconds / max(result.n_cells, 1),
        "resume_skipped": len(resumed.skipped),
        "resume_seconds": resume_seconds,
    }

    rows = [[family, str(b["cells"]), str(b["ok"]), str(b["faults"]),
             str(b["detected"])]
            for family, b in sorted(summary["families"].items())]
    print(render_table(["family", "cells", "ok", "faults", "detected"],
                       rows, title=f"{result.n_cells} cells in "
                                   f"{seconds:.1f}s "
                                   f"({record['cells_per_sec']:.1f} "
                                   f"cells/s)"))
    print(f"resume pass: {record['resume_skipped']} cells skipped in "
          f"{resume_seconds:.2f}s")

    # acceptance
    assert counts["failed"] == 0, f"failed cells: {counts['failed']}"
    if not smoke:
        assert result.n_cells >= MIN_CELLS, \
            f"only {result.n_cells} cells (< {MIN_CELLS})"
    assert record["resume_skipped"] == result.n_cells
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the 6-cell smoke spec instead of the "
                             "168-cell full spec")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes (results are bitwise "
                             "independent of this)")
    args = parser.parse_args()
    spec_path = CAMPAIGNS / ("smoke.toml" if args.smoke else "full.toml")
    record = _run_bench(spec_path, jobs=args.jobs, smoke=args.smoke)
    _emit_record(record)
    print(f"record appended to {BENCH_RECORD_PATH}")


if __name__ == "__main__":
    main()
