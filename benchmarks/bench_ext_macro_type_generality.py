"""Extension bench — macro-type generality (paper §2.1 claim).

Not a table/figure of the paper, but a direct check of its central
framework claim: "Sets of test configuration descriptions are shared by
macro types ... The concept is designed to support the reusability of
the work of a test engineer."  The IV-converter exercised the
methodology on a current-input macro; this bench runs the *identical*
generation + compaction machinery on a different macro type (the
5T-OTA, voltage-input, four configurations including an AC gain
measurement) without touching a single line of flow code.
"""

from repro.compaction import CompactionSettings, collapse_test_set
from repro.macros import OTAMacro
from repro.reporting import ExperimentRecord, render_table
from repro.testgen import GenerationSettings, MacroTestbench, generate_tests


def bench_ext_ota_macro_type(benchmark, experiment_log):
    macro = OTAMacro()
    configurations = macro.test_configurations()
    # DC + AC configurations keep this bench to operating-point solves
    # and single-frequency AC solves (the step config is exercised by
    # the unit tests).
    fast_configs = [c for c in configurations
                    if c.name in ("dc-transfer", "dc-supply-current",
                                  "ac-gain")]
    faults = macro.fault_dictionary()

    def run():
        generation = generate_tests(macro.circuit, fast_configs,
                                    faults, GenerationSettings())
        bench_obj = MacroTestbench(macro.circuit, fast_configs,
                                   macro.options)
        compaction = collapse_test_set(generation, bench_obj,
                                       CompactionSettings(delta=0.1))
        return generation, compaction

    generation, compaction = benchmark.pedantic(run, rounds=1,
                                                iterations=1,
                                                warmup_rounds=0)

    distribution = generation.distribution()
    rows = [[name, row.get("bridge", 0), row.get("pinhole", 0)]
            for name, row in distribution.items()]
    print()
    print(render_table(
        ["configuration", "bridge", "pinhole"], rows,
        title=f"OTA macro type: best-test distribution "
              f"({len(faults)} faults)"))
    print(f"compaction: {compaction.n_original_tests} -> "
          f"{compaction.n_compact_tests} tests "
          f"({compaction.compaction_ratio:.1f}x)")

    assert generation.n_detected >= 0.7 * len(faults), \
        "most OTA faults must be detectable by the three configurations"
    assert compaction.n_compact_tests < compaction.n_original_tests, \
        "OTA tests must cluster and collapse like the IV-converter's"

    experiment_log([ExperimentRecord(
        experiment_id="Extension: macro-type generality",
        description="same flow on a second macro type (5T-OTA)",
        paper="configuration descriptions are shared by macro types; "
              "the concept supports test-engineer reusability (claim, "
              "no experiment)",
        measured=f"{generation.n_detected}/{len(faults)} OTA faults "
                 f"receive best tests; compact set "
                 f"{compaction.n_compact_tests} tests "
                 f"({compaction.compaction_ratio:.1f}x)",
        agreement="matches (claim exercised)")])
