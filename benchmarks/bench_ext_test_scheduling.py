"""Extension bench — abort-at-first-fail scheduling of the compact set.

Beyond the paper: once the §4 collapse produced a compact set, a
production tester wants it *ordered* so failing devices abort early.
This bench schedules the IV-converter's compact set greedily (IFA-
likelihood-weighted) and reports the coverage growth curve — how much of
the weighted fault population the first test already catches.
"""

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    detection_matrix,
    greedy_order,
)
from repro.faults import ifa_fault_dictionary
from repro.reporting import ExperimentRecord, render_table


def bench_ext_test_scheduling(benchmark, full_generation, iv_testbench,
                              iv_macro, experiment_log):
    generation = full_generation
    compaction = collapse_test_set(generation, iv_testbench,
                                   CompactionSettings(delta=0.1))
    detected = [t for t in generation.tests if t.detected_at_dictionary]
    weighted = ifa_fault_dictionary(iv_macro.circuit,
                                    nodes=iv_macro.standard_nodes)
    weights = {f.fault_id: f.likelihood for f in weighted}

    def run():
        matrix = detection_matrix(iv_testbench,
                                  [t.fault for t in detected],
                                  list(compaction.tests))
        return matrix, greedy_order(matrix, weights=weights)

    matrix, plan = benchmark.pedantic(run, rounds=1, iterations=1,
                                      warmup_rounds=0)

    rows = [[position, str(test)[:60], f"{inc:.1%}", f"{cum:.1%}"]
            for position, (test, inc, cum) in enumerate(
                zip(plan.tests, plan.incremental_coverage,
                    plan.cumulative_coverage), start=1)]
    print()
    print(render_table(
        ["#", "scheduled test", "adds", "cumulative"], rows,
        title="Greedy schedule of the compact IV-converter test set "
              "(IFA-weighted)", align=["r", "l", "r", "r"]))
    needed = plan.tests_for_coverage(plan.final_coverage)
    print(f"\nfirst test already covers "
          f"{plan.cumulative_coverage[0]:.0%} of the weighted fault "
          f"population; {needed} of {len(plan.tests)} tests reach the "
          f"final {plan.final_coverage:.0%}")

    assert plan.final_coverage > 0.95
    assert plan.cumulative_coverage[0] >= 1.0 / len(plan.tests), \
        "the first greedy pick must be at least average"

    experiment_log([ExperimentRecord(
        experiment_id="Extension: test scheduling",
        description="greedy abort-at-first-fail ordering",
        paper="(not in the paper; natural production next step)",
        measured=f"first scheduled test covers "
                 f"{plan.cumulative_coverage[0]:.0%} of weighted "
                 f"faults; {needed}/{len(plan.tests)} tests reach "
                 f"{plan.final_coverage:.0%}",
        agreement="extension")])
