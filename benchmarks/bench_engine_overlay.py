"""Engine bench — overlay stamping vs legacy copy+recompile (not a paper
artifact; tracks the perf trajectory of the compile-once refactor).

Per-fault evaluation is the unit every ATPG decision is charged against
(55 faults x 5 configurations x dozens of optimizer steps).  This bench
sweeps the paper's exhaustive IV-converter fault dictionary through both
serving paths:

* **legacy** — ``fault.apply`` netlist copy, full ``CompiledCircuit``
  compilation, cold-started Newton (the pre-engine behaviour);
* **overlay** — conductance stamp on the engine's compiled base with
  warm-started Newton, measured in *steady state* (bases compiled during
  a warm-up sweep).

It asserts the acceptance criteria of the refactor — >= 3x cheaper
per-fault evaluation and **zero** compilations in the steady-state inner
loop — and appends the numbers to ``results/BENCH_engine.json`` so the
performance trajectory is recorded per run.
"""

from __future__ import annotations

import json
import time

from repro.analysis import CompiledCircuit, SimulationEngine
from repro.errors import AnalysisError
from repro.faults import exhaustive_fault_dictionary
from repro.reporting import render_table
from repro.testgen.procedures import DCProcedure, Probe, StepProcedure

from conftest import RESULTS_DIR

BENCH_RECORD_PATH = RESULTS_DIR / "BENCH_engine.json"

#: Acceptance floor on per-fault-evaluation speedup (overlay vs legacy).
MIN_SPEEDUP = 3.0


def _sweep(simulate, faults, params):
    """Time one pass over *faults*; returns (seconds, evaluations)."""
    evaluations = 0
    started = time.perf_counter()
    for fault in faults:
        try:
            simulate(fault, params)
            evaluations += 1
        except AnalysisError:
            pass  # both paths skip the same unsimulatable defects
    return time.perf_counter() - started, evaluations


def _compare_paths(circuit, options, procedure, faults, param_points):
    """Run legacy and steady-state overlay sweeps; return the record."""
    engine = SimulationEngine(circuit, options)

    def overlay(fault, params):
        return engine.simulate_fault(procedure, params, fault)

    def legacy(fault, params):
        return engine.simulate_legacy(procedure, params, fault)

    # Warm-up sweep compiles every overlay base and fills warm starts.
    _sweep(overlay, faults, param_points[0])
    warmup_compiles = engine.stats.compilations

    compiles_before = CompiledCircuit.compile_count
    overlay_s = 0.0
    overlay_evals = 0
    for params in param_points:
        seconds, evals = _sweep(overlay, faults, params)
        overlay_s += seconds
        overlay_evals += evals
    steady_state_compiles = CompiledCircuit.compile_count - compiles_before

    compiles_before = CompiledCircuit.compile_count
    legacy_s = 0.0
    legacy_evals = 0
    for params in param_points:
        seconds, evals = _sweep(legacy, faults, params)
        legacy_s += seconds
        legacy_evals += evals
    legacy_compiles = CompiledCircuit.compile_count - compiles_before

    return {
        "n_faults": len(faults),
        "n_param_points": len(param_points),
        "legacy_evals": legacy_evals,
        "overlay_evals": overlay_evals,
        "legacy_s_per_eval": legacy_s / max(legacy_evals, 1),
        "overlay_s_per_eval": overlay_s / max(overlay_evals, 1),
        "legacy_sims_per_sec": legacy_evals / max(legacy_s, 1e-12),
        "overlay_sims_per_sec": overlay_evals / max(overlay_s, 1e-12),
        "speedup": (legacy_s / max(legacy_evals, 1))
                   / max(overlay_s / max(overlay_evals, 1), 1e-12),
        "warmup_compiles": warmup_compiles,
        "steady_state_compiles": steady_state_compiles,
        "legacy_compiles": legacy_compiles,
        "warm_start_hits": engine.stats.warm_start_hits,
    }


def _emit_record(record: dict) -> None:
    """Append this run's record to results/BENCH_engine.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if BENCH_RECORD_PATH.exists():
        try:
            history = json.loads(BENCH_RECORD_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_RECORD_PATH.write_text(json.dumps(history, indent=1))


def bench_engine_overlay_vs_legacy(iv_macro):
    """Overlay vs legacy per-fault evaluation over the 55-fault dictionary."""
    circuit = iv_macro.circuit
    options = iv_macro.options
    faults = list(exhaustive_fault_dictionary(
        circuit, nodes=iv_macro.standard_nodes))

    # DC configuration: every fault, two stimulus points (the optimizer's
    # adjacent-step pattern warm starts are designed for).
    dc_procedure = DCProcedure("IIN", "base",
                               (Probe("v", "vout"), Probe("i", "VDD")))
    dc = _compare_paths(circuit, options, dc_procedure, faults,
                        [{"base": 20e-6}, {"base": 22e-6}])

    # Step configuration: transient cost on a representative subset (the
    # short window keeps the legacy pass affordable in CI).
    step_procedure = StepProcedure(
        "IIN", "vout", base_param="base", elev_param="elev", mode="max",
        sample_rate=20e6, test_time=0.5e-6, t_step=10e-9, slew_rate=800.0)
    step_faults = [f for f in faults if f.fault_type == "pinhole"] \
        + [f for f in faults if f.fault_type == "bridge"][::5]
    step = _compare_paths(circuit, options, step_procedure, step_faults,
                          [{"base": 5e-6, "elev": 20e-6},
                           {"base": 6e-6, "elev": 20e-6}])

    record = {
        "bench": "engine_overlay",
        "unix_time": time.time(),
        "circuit": circuit.name,
        "dc": dc,
        "step": step,
    }
    _emit_record(record)

    rows = [
        [name,
         f"{r['legacy_s_per_eval'] * 1e3:.2f}",
         f"{r['overlay_s_per_eval'] * 1e3:.2f}",
         f"{r['speedup']:.1f}x",
         f"{r['overlay_sims_per_sec']:.1f}",
         r["legacy_compiles"],
         r["steady_state_compiles"]]
        for name, r in (("dc", dc), ("step", step))]
    print()
    print(render_table(
        ["procedure", "legacy ms/eval", "overlay ms/eval", "speedup",
         "overlay sims/s", "legacy compiles", "steady compiles"], rows,
        title="Compile-once engine: overlay stamping vs copy+recompile"))
    print(f"record appended to {BENCH_RECORD_PATH}")

    # Acceptance criteria of the refactor.
    assert dc["steady_state_compiles"] == 0
    assert step["steady_state_compiles"] == 0
    assert dc["speedup"] >= MIN_SPEEDUP, \
        f"DC speedup {dc['speedup']:.2f}x below {MIN_SPEEDUP}x floor"
    assert dc["legacy_compiles"] >= dc["legacy_evals"]  # one per eval
    assert step["speedup"] >= 1.0  # transient-dominated, still never slower
