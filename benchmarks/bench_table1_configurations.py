"""Table 1 + Fig. 1 — the five test-configuration definitions.

The paper's Table 1 lists the stimulus, parameters and return value of
each IV-converter test configuration; Fig. 1 shows the rendered
description card of the "Step response 1" template.  This bench
regenerates both from the machine-readable configuration objects.

Paper-vs-measured: the scanned Table 1 is OCR-damaged; the reconstruction
constraints (two single-parameter configurations, three two-parameter
ones, THD with (Iin_dc, freq), step configurations sampled for 7.5 us)
are asserted here.
"""

from repro.reporting import ExperimentRecord, render_table


def bench_table1_configuration_definitions(benchmark, iv_macro,
                                           experiment_log):
    descriptions = iv_macro.configuration_descriptions()

    def render():
        rows = []
        for index, description in enumerate(descriptions, start=1):
            returns = ", ".join(rv.name for rv in description.return_values)
            rows.append([
                f"#{index}", description.name,
                description.stimulus_template,
                ", ".join(description.parameters),
                returns,
            ])
        return render_table(
            ["ID", "configuration", "stimuli", "parameters",
             "return value"], rows,
            title="Table 1: test configuration definitions "
                  "(IV-converter)",
            align=["l", "l", "l", "l", "l"])

    table = benchmark(render)
    print()
    print(table)
    print()
    print("Fig. 1: test configuration description card "
          "(step-accumulate = the paper's 'Step response 1'):")
    print(descriptions[4].describe())

    # Paper constraints on the (damaged) table.
    arity = {d.name: len(d.parameters) for d in descriptions}
    assert len(descriptions) == 5
    assert sorted(arity.values()) == [1, 1, 2, 2, 2]
    assert descriptions[2].parameters == ("iin_dc", "freq")

    experiment_log([ExperimentRecord(
        experiment_id="Table 1 / Fig. 1",
        description="five test-configuration definitions",
        paper="5 configurations; #1-#2 single-parameter, #3 THD with "
              "(Iin_dc, freq), #4-#5 step response sampled 7.5 us "
              "(100 MHz); OCR-damaged cells reconstructed",
        measured="5 configurations with matching arity and stimulus "
                 "shapes; step sampling 40 MHz by default (pure "
                 "discretization economy, 100 MHz available)",
        agreement="matches (reconstruction)",
        note="see DESIGN.md section 3.2 for the reconstruction rules")])
