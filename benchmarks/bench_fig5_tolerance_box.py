"""Fig. 5 — two return values in measurement space with a tolerance box.

The paper's Fig. 5 visualizes a p=2 measurement space: the tolerance box
around the nominal return values, one response R(T)_1 inside the box
(could be fault-free or faulty -> undetectable) and one response R(T)_2
outside (only a faulty circuit can produce it -> guaranteed detection).

We regenerate that picture with a two-return-value DC configuration
(delta-Vout, delta-Idd) on the IV-converter: a weak bridge lands inside
the box, a hard bridge escapes it.
"""

import numpy as np

from repro.faults import BridgingFault
from repro.reporting import ExperimentRecord, render_table
from repro.testgen import (
    BoundParameter,
    DCProcedure,
    MacroTestbench,
    ParameterSpec,
    Probe,
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.tolerance import ConstantBoxFunction


def _two_return_config(macro):
    description = TestConfigurationDescription(
        name="dc-both", macro_type=macro.macro_type,
        title="DC output + supply current (p=2)",
        control_nodes=("iin",), observe_nodes=("vout", "vdd"),
        stimulus_template="dc(base) at iin",
        parameters=("base",),
        return_values=(
            ReturnValueSpec("delta_vout", "voltage", "dV(Vout)"),
            ReturnValueSpec("delta_idd", "current", "dI(Vdd)")))
    parameters = (BoundParameter(
        ParameterSpec("base", "A"), 0.0, 50e-6, 20e-6),)
    procedure = DCProcedure(macro.INPUT_SOURCE, "base",
                            (Probe("v", "vout"), Probe("i", "VDD")))
    box = ConstantBoxFunction([0.030, 12e-6])
    return TestConfiguration(description, parameters, procedure, box,
                             macro.equipment)


def bench_fig5_tolerance_box(benchmark, iv_macro, experiment_log):
    config = _two_return_config(iv_macro)
    bench_obj = MacroTestbench(iv_macro.circuit, [config],
                               iv_macro.options)
    executor = bench_obj.executor("dc-both")
    params = [20e-6]

    weak = BridgingFault(node_a="n1", node_b="n2", impact=2e6)
    hard = BridgingFault(node_a="n1", node_b="n2", impact=10e3)

    def evaluate():
        return (executor.boxes(params),
                executor.sensitivity(weak, params),
                executor.sensitivity(hard, params))

    boxes, report_weak, report_hard = benchmark.pedantic(
        evaluate, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        ["tolerance box half-width", f"{boxes[0]*1e3:.2f} mV",
         f"{boxes[1]*1e6:.3f} uA", "-"],
        ["R(T)_1: weak bridge (2 Mohm)",
         f"{report_weak.deviations[0]*1e3:+.3f} mV",
         f"{report_weak.deviations[1]*1e6:+.3f} uA",
         "inside box" if not report_weak.detected else "outside box"],
        ["R(T)_2: hard bridge (10 kohm)",
         f"{report_hard.deviations[0]*1e3:+.3f} mV",
         f"{report_hard.deviations[1]*1e6:+.3f} uA",
         "outside box" if report_hard.detected else "inside box"],
    ]
    print()
    print(render_table(
        ["point in measurement space", "delta Vout", "delta Idd",
         "verdict"], rows,
        title="Fig. 5: tolerance box in a p=2 measurement space "
              "(nominal at origin)"))
    print(f"\nS_f components weak: {np.round(report_weak.components, 3)}"
          f"  -> S = {report_weak.value:.3f}")
    print(f"S_f components hard: {np.round(report_hard.components, 3)}"
          f"  -> S = {report_hard.value:.3f}")

    assert not report_weak.detected, \
        "a near-open bridge must hide inside the tolerance box"
    assert report_hard.detected, \
        "a 10 kOhm bridge must escape the tolerance box"

    experiment_log([ExperimentRecord(
        experiment_id="Fig. 5",
        description="two-return-value tolerance box",
        paper="R(T)_1 may come from faulty or fault-free macro (inside "
              "box); R(T)_2 only from a faulty circuit (outside box)",
        measured=f"weak bridge S={report_weak.value:.3f} (inside), hard "
                 f"bridge S={report_hard.value:.3f} (outside)",
        agreement="matches")])
