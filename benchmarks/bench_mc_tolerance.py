"""Monte Carlo tolerance-screening bench — vectorized vs scalar path.

The vectorized Monte Carlo screen
(:func:`repro.tolerance.montecarlo.screen_dictionary_montecarlo`) serves
every (process sample x fault) pair of an overlay family from **one** LU
factorization of the nominal Jacobian; the scalar reference path
recompiles and re-solves one sample at a time.  This bench times both on
the IV-converter's 55-fault dictionary and asserts the acceptance
criteria of the vectorized path:

* >= 1000 process samples amortized over each (base, stimulus)
  factorization;
* >= 10x wall-clock speedup over the scalar per-sample loop
  (extrapolated from a two-point scalar measurement, so the scalar
  path's one-time anchor cost is charged fairly, not multiplied);
* **zero** detection-verdict mismatches between the two paths on a
  shared-box verification batch.

The record is appended to ``results/BENCH_engine.json``.  Running the
file directly with ``--smoke`` (as CI's headless quickstart check does)
exercises a miniature version — a 12-fault subset, two dozen samples,
no speedup floor — that still pins the zero-mismatch contract.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.reporting import render_table
from repro.tolerance import screen_dictionary_montecarlo

# Resolved locally (not via conftest) so the file also runs headless as
# a plain script in environments without pytest — CI's smoke step.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_RECORD_PATH = RESULTS_DIR / "BENCH_engine.json"


def fast_mode() -> bool:
    """True when REPRO_FAST=1 restricts the run to the smoke subset."""
    return os.environ.get("REPRO_FAST") == "1"

#: Acceptance floor on the vectorized-vs-scalar wall-clock speedup.
MIN_SPEEDUP = 10.0

#: Process samples of the timed vectorized run (the acceptance floor).
N_SAMPLES = 1000

#: Seed of every batch drawn by this bench.
SEED = 7

#: Shared-box verification batch (both paths, verdicts compared).
VERIFY_SAMPLES = 16

#: Scalar-path timing points; the marginal cost per sample comes from
#: the difference, so the anchors' one-time cost cancels.
SCALAR_LO, SCALAR_HI = 16, 48


def _emit_record(record: dict) -> None:
    """Append this run's record to results/BENCH_engine.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if BENCH_RECORD_PATH.exists():
        try:
            history = json.loads(BENCH_RECORD_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_RECORD_PATH.write_text(json.dumps(history, indent=1))


def _timed_screen(macro, configuration, faults, vector, *, n_samples,
                  vectorized, boxes=None):
    """One timed Monte Carlo screen run."""
    started = time.perf_counter()
    result = screen_dictionary_montecarlo(
        macro.circuit, configuration, faults, vector, macro.options,
        n_samples=n_samples, seed=SEED, boxes=boxes,
        vectorized=vectorized)
    return time.perf_counter() - started, result


def _run_bench(macro, *, n_samples, verify_samples, scalar_lo, scalar_hi,
               fault_limit=None, min_speedup=None, smoke=False):
    """Time both paths, verify verdict parity, emit + assert the record."""
    configuration = [c for c in macro.test_configurations(box_mode="fast")
                     if c.name == "dc-output"][0]
    faults = list(macro.fault_dictionary())
    if fault_limit is not None:
        faults = faults[:fault_limit]
    vector = list(configuration.parameters.seeds)

    # Timed vectorized run at the acceptance sample count.
    vec_s, vec = _timed_screen(macro, configuration, faults, vector,
                               n_samples=n_samples, vectorized=True)

    # Verdict parity: both paths on one batch, scoring against the
    # vectorized run's empirical boxes so a mismatch can only come from
    # the solvers, never from box derivation.
    _, vec_verify = _timed_screen(macro, configuration, faults, vector,
                                  n_samples=verify_samples, vectorized=True)
    lo_s, scalar_verify = _timed_screen(
        macro, configuration, faults, vector, n_samples=scalar_lo,
        vectorized=False, boxes=vec_verify.boxes)
    mismatches = [
        (e_vec.fault_id, s)
        for e_vec, e_sc in zip(vec_verify.estimates, scalar_verify.estimates)
        for s in range(verify_samples)
        if bool(e_vec.detected[s]) != bool(e_sc.detected[s])]

    # Scalar wall-clock extrapolation: marginal cost per sample from a
    # second, larger scalar run (one-time anchor cost cancels in the
    # difference and is charged exactly once in the estimate).
    hi_s, _ = _timed_screen(macro, configuration, faults, vector,
                            n_samples=scalar_hi, vectorized=False,
                            boxes=vec_verify.boxes)
    marginal = (hi_s - lo_s) / (scalar_hi - scalar_lo)
    scalar_est_s = lo_s + marginal * (n_samples - scalar_lo)
    speedup = scalar_est_s / max(vec_s, 1e-12)

    stats = vec.stats
    record = {
        "bench": "mc_tolerance",
        "unix_time": time.time(),
        "smoke": smoke,
        "circuit": macro.circuit.name,
        "configuration": configuration.name,
        "n_faults": len(faults),
        "n_samples": n_samples,
        "seed": SEED,
        "vectorized_s": vec_s,
        "samples_per_sec": n_samples / max(vec_s, 1e-12),
        "fault_samples_per_sec":
            n_samples * len(faults) / max(vec_s, 1e-12),
        "factorizations": stats.factorizations,
        "samples_per_factorization": n_samples,
        "columns_screened": stats.columns_screened,
        "columns_confirmed": stats.columns_confirmed,
        "columns_failed": stats.columns_failed,
        "margin_confirms": stats.margin_confirms,
        "scalar_solves": stats.scalar_solves,
        "scalar_lo": {"n_samples": scalar_lo, "seconds": lo_s},
        "scalar_hi": {"n_samples": scalar_hi, "seconds": hi_s},
        "scalar_marginal_s_per_sample": marginal,
        "scalar_est_s": scalar_est_s,
        "speedup": speedup,
        "verify_samples": verify_samples,
        "verdict_mismatches": len(mismatches),
    }
    _emit_record(record)

    title = "Vectorized Monte Carlo tolerance screening"
    if smoke:
        title += " (smoke subset)"
    print()
    print(render_table(
        ["faults", "samples", "vec s", "samples/s", "scalar est s",
         "speedup", "factorizations", "failed cols", "mismatches"],
        [[len(faults), n_samples, f"{vec_s:.1f}",
          f"{n_samples / max(vec_s, 1e-12):.0f}",
          f"{scalar_est_s:.1f}", f"{speedup:.1f}x",
          stats.factorizations, stats.columns_failed, len(mismatches)]],
        title=title))
    print(f"record appended to {BENCH_RECORD_PATH}")

    # Acceptance criteria of the vectorized Monte Carlo path.
    assert not mismatches, \
        f"vectorized/scalar verdict mismatches: {mismatches[:10]}"
    if min_speedup is not None:
        assert n_samples >= 1000, \
            "acceptance demands >= 1000 samples per factorization"
        assert speedup >= min_speedup, \
            (f"vectorized speedup {speedup:.2f}x below "
             f"{min_speedup}x floor")
    return record


def bench_mc_tolerance(iv_macro):
    """Vectorized MC screen vs the scalar per-sample reference loop."""
    if fast_mode():
        _run_bench(iv_macro, n_samples=24, verify_samples=8,
                   scalar_lo=8, scalar_hi=24, fault_limit=12, smoke=True)
        return
    _run_bench(iv_macro, n_samples=N_SAMPLES,
               verify_samples=VERIFY_SAMPLES, scalar_lo=SCALAR_LO,
               scalar_hi=SCALAR_HI, min_speedup=MIN_SPEEDUP)


def main(argv=None) -> int:
    """Script entry point (CI runs ``--smoke`` headless)."""
    import argparse

    from repro.macros import IVConverterMacro

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="miniature run: 12 faults, two dozen "
                             "samples, no speedup floor")
    args = parser.parse_args(argv)
    macro = IVConverterMacro()
    if args.smoke:
        _run_bench(macro, n_samples=24, verify_samples=8,
                   scalar_lo=8, scalar_hi=24, fault_limit=12, smoke=True)
    else:
        _run_bench(macro, n_samples=N_SAMPLES,
                   verify_samples=VERIFY_SAMPLES, scalar_lo=SCALAR_LO,
                   scalar_hi=SCALAR_HI, min_speedup=MIN_SPEEDUP)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
