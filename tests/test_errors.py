"""Tests of the exception hierarchy contract."""

import pytest

from repro.errors import (
    AnalysisError,
    CompactionError,
    ConvergenceError,
    FaultModelError,
    NetlistError,
    OptimizationError,
    ParseError,
    ReproError,
    SingularMatrixError,
    TestGenerationError,
    ToleranceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        NetlistError, ParseError, AnalysisError, ConvergenceError,
        SingularMatrixError, FaultModelError, ToleranceError,
        OptimizationError, TestGenerationError, CompactionError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_is_netlist_error(self):
        assert issubclass(ParseError, NetlistError)

    def test_convergence_and_singular_are_analysis_errors(self):
        assert issubclass(ConvergenceError, AnalysisError)
        assert issubclass(SingularMatrixError, AnalysisError)

    def test_one_except_clause_fences_the_library(self):
        with pytest.raises(ReproError):
            raise CompactionError("boom")


class TestParseErrorLocation:
    def test_carries_line_info(self):
        err = ParseError("bad card", line_no=7, line="R1 a")
        assert err.line_no == 7
        assert "line 7" in str(err)
        assert "R1 a" in str(err)

    def test_location_optional(self):
        err = ParseError("bad card")
        assert err.line_no is None
        assert str(err) == "bad card"
