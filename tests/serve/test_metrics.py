"""Tests for serving counters and reporters (repro.serve.metrics)."""

import json

from repro.serve.metrics import (
    LATENCY_WINDOW,
    ServeStats,
    render_json,
    render_text,
    stats_to_dict,
)


def loaded_stats():
    stats = ServeStats(requests=10, errors=1, batches=4,
                       faults_requested=60, verdicts_served=55,
                       cache_hits=30, cache_misses=25)
    stats.batch_sizes.extend([5, 10, 15])
    stats.latencies.extend([0.001 * (i + 1) for i in range(100)])
    return stats


class TestDerivedFigures:
    def test_coalesce_ratio(self):
        assert loaded_stats().coalesce_ratio == 0.6
        assert ServeStats().coalesce_ratio == 0.0
        # More batches than requests (degenerate) clamps at zero.
        assert ServeStats(requests=1, batches=3).coalesce_ratio == 0.0

    def test_cache_hit_rate(self):
        assert loaded_stats().cache_hit_rate == 30 / 55
        assert ServeStats().cache_hit_rate == 0.0

    def test_mean_batch_size(self):
        assert loaded_stats().mean_batch_size == 10.0
        assert ServeStats().mean_batch_size == 0.0

    def test_latency_quantiles_nearest_rank(self):
        stats = loaded_stats()
        assert stats.p50_latency == 0.001 * 51
        assert stats.p95_latency == 0.001 * 96
        assert ServeStats().p50_latency == 0.0

    def test_quantile_single_sample(self):
        stats = ServeStats()
        stats.latencies.append(0.25)
        assert stats.p50_latency == 0.25
        assert stats.p95_latency == 0.25

    def test_sliding_windows_bounded(self):
        stats = ServeStats()
        for i in range(LATENCY_WINDOW + 100):
            stats.latencies.append(float(i))
            stats.batch_sizes.append(i)
        assert len(stats.latencies) == LATENCY_WINDOW
        assert len(stats.batch_sizes) == LATENCY_WINDOW


class TestTimer:
    def test_observe_latency_nonnegative(self):
        stats = ServeStats()
        elapsed = stats.observe_latency(stats.timer())
        assert elapsed >= 0.0
        assert list(stats.latencies) == [elapsed]


class TestReporters:
    def test_stats_to_dict_keys(self):
        payload = stats_to_dict(loaded_stats())
        assert list(payload) == [
            "requests", "errors", "batches", "faults_requested",
            "verdicts_served", "cache_hits", "cache_misses",
            "cache_hit_rate", "coalesce_ratio", "mean_batch_size",
            "p50_latency_s", "p95_latency_s"]
        assert payload["requests"] == 10
        assert payload["coalesce_ratio"] == 0.6

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(loaded_stats()))
        assert payload == stats_to_dict(loaded_stats())

    def test_render_text(self):
        text = render_text(loaded_stats(), title="serving")
        assert text.splitlines()[0] == "serving"
        assert "requests: 10 (1 error(s)), verdicts: 55" in text
        assert "coalesce ratio 0.60" in text
        assert "cache: 30 hit(s) / 25 miss(es)" in text
        assert "p50 51.00 ms" in text

    def test_render_text_without_title(self):
        text = render_text(ServeStats())
        assert not text.startswith(" ")
        assert "requests: 0" in text
