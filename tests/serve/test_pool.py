"""Tests for the warm engine pool (repro.serve.pool).

Entries must build lazily, evict LRU under capacity pressure, and keep
the per-entry resolution machinery (fault index, netlist digest) exact —
the digest feeds every verdict-cache key for that entry.
"""

import pytest

from repro.errors import ServeError
from repro.hashing import netlist_digest
from repro.serve.pool import EnginePool
from repro.testgen.execution import TestExecutor


@pytest.fixture()
def pool():
    return EnginePool(capacity=2)


class TestLaziness:
    def test_empty_until_touched(self, pool):
        assert len(pool) == 0
        assert pool.stats.constructions == 0

    def test_first_touch_builds(self, pool):
        entry = pool.entry("rc-ladder", "dc-out")
        assert len(pool) == 1
        assert pool.stats.constructions == 1
        assert pool.stats.hits == 0
        assert isinstance(entry.executor, TestExecutor)

    def test_second_touch_is_warm(self, pool):
        first = pool.entry("rc-ladder", "dc-out")
        second = pool.entry("rc-ladder", "dc-out")
        assert second is first
        assert pool.stats.constructions == 1
        assert pool.stats.hits == 1


class TestEviction:
    def test_lru_eviction_under_capacity_pressure(self):
        pool = EnginePool(capacity=1)
        pool.entry("rc-ladder", "dc-out")
        pool.entry("rc-ladder", "step-mean")
        assert len(pool) == 1
        assert pool.stats.evictions == 1
        assert pool.keys == (("rc-ladder", "step-mean"),)

    def test_touch_refreshes_recency(self, pool):
        pool.entry("rc-ladder", "dc-out")
        pool.entry("rc-ladder", "step-mean")
        pool.entry("rc-ladder", "dc-out")  # refresh: step-mean is LRU
        pool.entry("iv-converter", "dc-output")
        assert ("rc-ladder", "dc-out") in pool.keys
        assert ("rc-ladder", "step-mean") not in pool.keys

    def test_rebuild_after_eviction(self):
        pool = EnginePool(capacity=1)
        first = pool.entry("rc-ladder", "dc-out")
        pool.entry("rc-ladder", "step-mean")
        again = pool.entry("rc-ladder", "dc-out")
        assert again is not first
        # Same identity content though: digest and dictionary agree.
        assert again.netlist == first.netlist
        assert [f.fault_id for f in again.faults] == \
            [f.fault_id for f in first.faults]

    def test_bad_capacity(self):
        with pytest.raises(ServeError, match="capacity"):
            EnginePool(capacity=0)


class TestResolution:
    def test_unknown_macro(self, pool):
        with pytest.raises(ServeError, match="unknown macro"):
            pool.entry("no-such-macro", "dc-out")
        with pytest.raises(ServeError, match="available"):
            pool.entry("no-such-macro", "dc-out")

    def test_unknown_configuration(self, pool):
        with pytest.raises(ServeError, match="no configuration"):
            pool.entry("rc-ladder", "no-such-config")

    def test_failed_build_not_pooled(self, pool):
        with pytest.raises(ServeError):
            pool.entry("rc-ladder", "no-such-config")
        assert len(pool) == 0

    def test_netlist_digest_matches_circuit(self, pool, rc_macro):
        entry = pool.entry("rc-ladder", "dc-out")
        assert entry.netlist == \
            netlist_digest(rc_macro.circuit.to_netlist())

    def test_fault_dictionary_order(self, pool, rc_macro):
        entry = pool.entry("rc-ladder", "dc-out")
        expected = [f.fault_id for f in rc_macro.fault_dictionary()]
        assert [f.fault_id for f in entry.faults] == expected

    def test_resolve_none_is_whole_dictionary(self, pool):
        entry = pool.entry("rc-ladder", "dc-out")
        assert entry.resolve_faults(None) == entry.faults

    def test_resolve_subset_preserves_request_order(self, pool):
        entry = pool.entry("rc-ladder", "dc-out")
        ids = [f.fault_id for f in entry.faults]
        picked = (ids[3], ids[0], ids[5])
        resolved = entry.resolve_faults(picked)
        assert tuple(f.fault_id for f in resolved) == picked

    def test_resolve_unknown_id(self, pool):
        entry = pool.entry("rc-ladder", "dc-out")
        with pytest.raises(ServeError, match="unknown fault id"):
            entry.resolve_faults(("nope",))


class TestSummary:
    def test_engine_summary_shape(self, pool):
        pool.entry("rc-ladder", "dc-out")
        summary = pool.engine_summary()
        assert set(summary) == {"rc-ladder/dc-out"}
        row = summary["rc-ladder/dc-out"]
        assert set(row) == {"requests_served", "verdicts_served",
                            "compilations", "factorizations",
                            "factorization_reuses",
                            "screened_simulations"}
        assert row["requests_served"] == 0

    def test_summary_tracks_traffic(self, pool):
        entry = pool.entry("rc-ladder", "dc-out")
        entry.requests_served += 3
        entry.verdicts_served += 18
        row = pool.engine_summary()["rc-ladder/dc-out"]
        assert row["requests_served"] == 3
        assert row["verdicts_served"] == 18
