"""Tests for the content-addressed verdict cache (repro.serve.cache).

Pins the two properties serving leans on: LRU eviction is purely a
capacity matter (never a correctness one), and the JSON-lines spill
round-trips every float bitwise so a cache survives restarts without
changing a single verdict.
"""

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve.cache import CacheStats, VerdictCache, VerdictRecord
from repro.testgen.sensitivity import SensitivityReport

# Awkward floats on purpose: signed zero, subnormal-adjacent, shortest
# repr with many digits, and a value that differs from 0.3 only bitwise.
VALUES = (0.1 + 0.2, -0.0, 1e-300, 2 / 3, -1.0000000000000002)


def make_record(fault_id="R1:short", value=-0.25):
    return VerdictRecord(
        fault_id=fault_id,
        value=value,
        components=(0.1 + 0.2, 0.5),
        deviations=(-1e-300, 2 / 3),
        boxes=(0.05, 0.07),
        params=(1.25,))


class TestVerdictRecord:
    def test_detected_threshold(self):
        assert make_record(value=-1e-300).detected
        assert not make_record(value=0.0).detected
        assert not make_record(value=0.25).detected

    def test_report_round_trip_bitwise(self):
        report = SensitivityReport(
            value=float(VALUES[0]),
            components=np.array(VALUES),
            deviations=np.array(VALUES[::-1]),
            boxes=np.array([0.05, 0.07, 0.1, 0.2, 0.3]),
            params=np.array([1.0, 2.5]))
        record = VerdictRecord.from_report("f", report)
        rebuilt = record.to_report()
        assert rebuilt.value == report.value
        for name in ("components", "deviations", "boxes", "params"):
            assert np.array_equal(getattr(rebuilt, name),
                                  getattr(report, name))

    def test_dict_round_trip(self):
        record = make_record()
        assert VerdictRecord.from_dict(record.to_dict()) == record

    def test_json_round_trip_bitwise(self):
        # The spill path in one line: dump, load, compare bitwise.
        record = make_record(value=VALUES[0])
        wire = json.loads(json.dumps(record.to_dict()))
        assert VerdictRecord.from_dict(wire) == record

    @pytest.mark.parametrize("payload", [
        {},
        {"fault_id": "f"},
        {"fault_id": "f", "value": "not-a-float", "components": [],
         "deviations": [], "boxes": [], "params": []},
        {"fault_id": "f", "value": 1.0, "components": None,
         "deviations": [], "boxes": [], "params": []},
    ])
    def test_malformed_payload(self, payload):
        with pytest.raises(ServeError, match="malformed verdict record"):
            VerdictRecord.from_dict(payload)


class TestLRU:
    def test_put_get(self):
        cache = VerdictCache(capacity=4)
        record = make_record()
        cache.put("k1", record)
        assert cache.get("k1") is record
        assert len(cache) == 1
        assert "k1" in cache

    def test_miss(self):
        cache = VerdictCache(capacity=4)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    def test_eviction_under_capacity_pressure(self):
        cache = VerdictCache(capacity=3)
        for i in range(5):
            cache.put(f"k{i}", make_record(fault_id=f"f{i}"))
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        # Oldest two evicted, newest three kept.
        assert cache.get("k0") is None
        assert cache.get("k1") is None
        for i in (2, 3, 4):
            assert cache.get(f"k{i}") is not None

    def test_get_refreshes_recency(self):
        cache = VerdictCache(capacity=2)
        cache.put("a", make_record(fault_id="a"))
        cache.put("b", make_record(fault_id="b"))
        cache.get("a")  # now "b" is the LRU victim
        cache.put("c", make_record(fault_id="c"))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_overwrite_same_key_does_not_grow(self):
        cache = VerdictCache(capacity=2)
        cache.put("a", make_record(value=1.0))
        cache.put("a", make_record(value=2.0))
        assert len(cache) == 1
        assert cache.get("a").value == 2.0
        assert cache.stats.evictions == 0

    def test_stats_counters(self):
        cache = VerdictCache(capacity=8)
        cache.put("a", make_record())
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.stores == 1
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_bad_capacity(self):
        with pytest.raises(ServeError, match="capacity"):
            VerdictCache(capacity=0)


class TestSpill:
    def test_round_trip_bitwise(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        first = VerdictCache(capacity=16, spill_path=spill)
        records = {f"k{i}": make_record(fault_id=f"f{i}", value=v)
                   for i, v in enumerate(VALUES)}
        for key, record in records.items():
            first.put(key, record)
        assert first.stats.spill_writes == len(records)

        second = VerdictCache(capacity=16, spill_path=spill)
        assert second.stats.spill_loads == len(records)
        for key, record in records.items():
            assert second.get(key) == record  # bitwise float equality

    def test_duplicate_put_journals_once(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        cache = VerdictCache(capacity=16, spill_path=spill)
        cache.put("k", make_record())
        cache.put("k", make_record())
        assert cache.stats.spill_writes == 1
        assert len(spill.read_text().strip().splitlines()) == 1

    def test_newest_line_wins(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        lines = [
            json.dumps({"key": "k", "record":
                        make_record(value=1.0).to_dict()}),
            json.dumps({"key": "k", "record":
                        make_record(value=-2.0).to_dict()}),
        ]
        spill.write_text("\n".join(lines) + "\n")
        cache = VerdictCache(capacity=16, spill_path=spill)
        assert len(cache) == 1
        assert cache.get("k").value == -2.0

    def test_replay_respects_capacity(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        first = VerdictCache(capacity=16, spill_path=spill)
        for i in range(6):
            first.put(f"k{i}", make_record(fault_id=f"f{i}"))
        small = VerdictCache(capacity=2, spill_path=spill)
        assert len(small) == 2
        assert small.stats.evictions == 4
        assert small.get("k5") is not None  # newest survive

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        good = json.dumps({"key": "k", "record": make_record().to_dict()})
        spill.write_text(good + "\nnot json at all\n")
        with pytest.raises(ServeError, match="line 2"):
            VerdictCache(capacity=16, spill_path=spill)

    def test_missing_record_field_raises(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        spill.write_text(json.dumps({"key": "k"}) + "\n")
        with pytest.raises(ServeError, match="corrupt verdict spill"):
            VerdictCache(capacity=16, spill_path=spill)

    def test_blank_lines_skipped(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        good = json.dumps({"key": "k", "record": make_record().to_dict()})
        spill.write_text("\n" + good + "\n\n")
        cache = VerdictCache(capacity=16, spill_path=spill)
        assert len(cache) == 1

    def test_no_spill_file_until_first_store(self, tmp_path):
        spill = tmp_path / "verdicts.jsonl"
        cache = VerdictCache(capacity=16, spill_path=spill)
        assert not spill.exists()
        cache.put("k", make_record())
        assert spill.exists()


class TestCacheStats:
    def test_merged(self):
        a = CacheStats(hits=1, misses=2, stores=3, evictions=4,
                       spill_writes=5, spill_loads=6)
        b = CacheStats(hits=10, misses=20, stores=30, evictions=40,
                       spill_writes=50, spill_loads=60)
        merged = a.merged(b)
        assert merged == CacheStats(hits=11, misses=22, stores=33,
                                    evictions=44, spill_writes=55,
                                    spill_loads=66)
        # Inputs untouched.
        assert a.hits == 1 and b.hits == 10
