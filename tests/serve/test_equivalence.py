"""Serving equivalence suite: served verdicts == cold executor, bitwise.

The ISSUE's correctness contract, pinned over the full 55-fault
IV-converter dictionary: every verdict that leaves the serving stack —
whether it came out of a batched family solve, a coalesced multi-client
flush, a warm verdict cache, or a cache replayed from disk — is bitwise
identical to what a brand-new :class:`TestExecutor` produces on its
first ``screen_faults`` call.  Pooling, batching, coalescing and caching
may only ever change wall-clock time.

Also covers a non-screening procedure (per-fault fallback path) on a
dictionary subset, so the contract is pinned for both engine paths.
"""

import asyncio

import pytest

from repro.analysis import DEFAULT_OPTIONS
from repro.serve.cache import VerdictCache
from repro.serve.frontdoor import BatchingFrontDoor, ServingClient
from repro.serve.pool import EnginePool
from repro.testgen.execution import TestExecutor

MACRO = "iv-converter"
SCREENING_CONFIG = "dc-output"
FALLBACK_CONFIG = "step-max"
FALLBACK_SUBSET = 6  # per-fault Newton solves: keep the subset small


def serve(coro):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=300.0)
    return asyncio.run(guarded())


def assert_record_matches(record, report):
    assert record.value == float(report.value)
    assert record.components == tuple(float(c) for c in report.components)
    assert record.deviations == tuple(float(d) for d in report.deviations)
    assert record.boxes == tuple(float(b) for b in report.boxes)
    assert record.params == tuple(float(p) for p in report.params)
    assert record.detected == report.detected


@pytest.fixture(scope="module")
def iv_faults(iv_macro):
    faults = tuple(iv_macro.fault_dictionary())
    assert len(faults) == 55  # the paper's full dictionary
    return faults


@pytest.fixture(scope="module")
def iv_configs(iv_macro):
    return {c.name: c for c in iv_macro.test_configurations()}


@pytest.fixture(scope="module")
def cold_screening(iv_macro, iv_configs, iv_faults):
    """Cold reference: fresh executor, first screen, all 55 faults."""
    config = iv_configs[SCREENING_CONFIG]
    vector = config.parameters.clip(list(config.seed_test().values))
    executor = TestExecutor(iv_macro.circuit, config, DEFAULT_OPTIONS)
    reports = executor.screen_faults(list(iv_faults), list(vector))
    return {f.fault_id: r for f, r in zip(iv_faults, reports)}


@pytest.fixture(scope="module")
def cold_fallback(iv_macro, iv_configs, iv_faults):
    """Cold reference on the non-screening (per-fault) path."""
    config = iv_configs[FALLBACK_CONFIG]
    assert not config.procedure.supports_screening
    subset = iv_faults[:FALLBACK_SUBSET]
    vector = config.parameters.clip(list(config.seed_test().values))
    executor = TestExecutor(iv_macro.circuit, config, DEFAULT_OPTIONS)
    reports = executor.screen_faults(list(subset), list(vector))
    return {f.fault_id: r for f, r in zip(subset, reports)}


def fresh_frontdoor(spill_path=None, window=0.05):
    return BatchingFrontDoor(
        EnginePool(capacity=4),
        VerdictCache(capacity=4096, spill_path=spill_path),
        window=window)


class TestFullDictionary:
    def test_cache_miss_path_bitwise(self, cold_screening, iv_faults):
        """One batched request, cold stack: the cache-miss/batched path."""
        door = fresh_frontdoor()
        try:
            response = serve(ServingClient(door).screen(
                MACRO, SCREENING_CONFIG))
            assert len(response.verdicts) == len(iv_faults)
            assert all(not v.cached for v in response.verdicts)
            for verdict in response.verdicts:
                assert_record_matches(
                    verdict.record, cold_screening[verdict.record.fault_id])
        finally:
            door.close()

    def test_cache_hit_path_bitwise(self, cold_screening, iv_faults):
        """Repeat request served entirely from cache, still bitwise."""
        door = fresh_frontdoor()
        try:
            client = ServingClient(door)
            serve(client.screen(MACRO, SCREENING_CONFIG))
            engine_stats = door.pool.entry(
                MACRO, SCREENING_CONFIG).executor.engine.stats
            screens_before = engine_stats.screened_simulations
            response = serve(client.screen(MACRO, SCREENING_CONFIG))
            assert all(v.cached for v in response.verdicts)
            assert engine_stats.screened_simulations == screens_before
            for verdict in response.verdicts:
                assert_record_matches(
                    verdict.record, cold_screening[verdict.record.fault_id])
        finally:
            door.close()

    def test_coalesced_path_bitwise(self, cold_screening, iv_faults, rng):
        """Concurrent shuffled clients covering all 55 faults."""
        ids = [f.fault_id for f in iv_faults]
        # Five overlapping shuffled subsets whose union is the full
        # dictionary (client 0 takes everything, shuffled).
        subsets = [tuple(ids[i] for i in rng.permutation(len(ids)))]
        for _ in range(4):
            size = int(rng.integers(5, len(ids) + 1))
            subsets.append(tuple(
                ids[i] for i in rng.permutation(len(ids))[:size]))
        door = fresh_frontdoor()
        try:
            client = ServingClient(door)

            async def run_all():
                return await asyncio.gather(*[
                    client.screen(MACRO, SCREENING_CONFIG,
                                  fault_ids=subset)
                    for subset in subsets])

            responses = serve(run_all())
            for subset, response in zip(subsets, responses):
                assert tuple(v.record.fault_id
                             for v in response.verdicts) == subset
                for verdict in response.verdicts:
                    assert_record_matches(
                        verdict.record,
                        cold_screening[verdict.record.fault_id])
            stats = door.stats
            assert stats.requests == len(subsets)
            assert stats.batches == 1  # fully coalesced
            assert stats.coalesce_ratio > 0.0
            assert stats.cache_misses == len(ids)
            assert stats.cache_hits == \
                sum(len(s) for s in subsets) - len(ids)
        finally:
            door.close()

    def test_spill_restart_bitwise(self, cold_screening, iv_faults,
                                   tmp_path):
        """A cache replayed from disk serves the same bits, engine idle."""
        spill = tmp_path / "verdicts.jsonl"
        first = fresh_frontdoor(spill_path=spill)
        try:
            serve(ServingClient(first).screen(MACRO, SCREENING_CONFIG))
        finally:
            first.close()
        assert spill.exists()

        second = fresh_frontdoor(spill_path=spill)
        try:
            assert second.cache.stats.spill_loads == len(iv_faults)
            response = serve(ServingClient(second).screen(
                MACRO, SCREENING_CONFIG))
            assert all(v.cached for v in response.verdicts)
            engine_stats = second.pool.entry(
                MACRO, SCREENING_CONFIG).executor.engine.stats
            assert engine_stats.screened_simulations == 0
            for verdict in response.verdicts:
                assert_record_matches(
                    verdict.record, cold_screening[verdict.record.fault_id])
        finally:
            second.close()


class TestFallbackProcedure:
    def test_non_screening_config_bitwise(self, cold_fallback, iv_faults):
        """Per-fault fallback procedures honor the same contract."""
        subset = tuple(f.fault_id for f in iv_faults[:FALLBACK_SUBSET])
        door = fresh_frontdoor()
        try:
            response = serve(ServingClient(door).screen(
                MACRO, FALLBACK_CONFIG, fault_ids=subset))
            assert tuple(v.record.fault_id
                         for v in response.verdicts) == subset
            for verdict in response.verdicts:
                assert_record_matches(
                    verdict.record, cold_fallback[verdict.record.fault_id])
        finally:
            door.close()
