"""Tests for the stdlib HTTP endpoint (repro.serve.server).

Exercises the wire protocol end to end over a real loopback socket:
``POST /screen`` served verdicts, ``GET /stats`` counters, ``/healthz``
liveness, and every HTTP-level rejection (bad method, path, body).
"""

import asyncio
import json

import pytest

from repro.serve.cache import VerdictCache
from repro.serve.frontdoor import BatchingFrontDoor
from repro.serve.pool import EnginePool
from repro.serve.server import ATPGServer

MACRO = "rc-ladder"
CONFIG = "dc-out"


async def http(port, method, path, body=None, raw=None):
    """One HTTP/1.1 exchange against the loopback server."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    if raw is not None:
        request = raw
    else:
        payload = b""
        head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            head += (f"Content-Type: application/json\r\n"
                     f"Content-Length: {len(payload)}\r\n")
        request = head.encode("ascii") + b"\r\n" + payload
    writer.write(request)
    await writer.drain()
    writer.write_eof()  # half-close: lets the server see truncated bodies
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(body)


def run_scenario(scenario):
    """Start a server on a free port, run *scenario*, tear down."""
    async def main():
        door = BatchingFrontDoor(EnginePool(capacity=2),
                                 VerdictCache(capacity=256), window=0.01)
        server = ATPGServer(door, port=0)
        await server.start()
        try:
            return await asyncio.wait_for(scenario(server), timeout=60.0)
        finally:
            await server.stop()
    return asyncio.run(main())


class TestLifecycle:
    def test_port_zero_binds_free_port(self):
        async def scenario(server):
            return server.port
        port = run_scenario(scenario)
        assert port > 0

    def test_healthz(self):
        async def scenario(server):
            return await http(server.port, "GET", "/healthz")
        status, payload = run_scenario(scenario)
        assert status == 200
        assert payload == {"ok": True}


class TestScreenEndpoint:
    def test_full_dictionary(self, rc_macro):
        async def scenario(server):
            return await http(server.port, "POST", "/screen",
                              body={"macro": MACRO,
                                    "configuration": CONFIG})
        status, payload = run_scenario(scenario)
        assert status == 200
        assert payload["macro"] == MACRO
        assert payload["configuration"] == CONFIG
        faults = list(rc_macro.fault_dictionary())
        assert len(payload["verdicts"]) == len(faults)
        assert [v["fault_id"] for v in payload["verdicts"]] == \
            [f.fault_id for f in faults]
        for verdict in payload["verdicts"]:
            assert set(verdict) >= {"fault_id", "value", "components",
                                    "deviations", "boxes", "params",
                                    "detected", "cached", "key"}
            assert verdict["detected"] == (verdict["value"] < 0.0)
        assert payload["n_detected"] == \
            sum(v["detected"] for v in payload["verdicts"])

    def test_fault_subset_and_cached_flag(self, rc_macro):
        fid = next(iter(rc_macro.fault_dictionary())).fault_id

        async def scenario(server):
            first = await http(server.port, "POST", "/screen",
                               body={"macro": MACRO,
                                     "configuration": CONFIG,
                                     "fault_ids": [fid]})
            second = await http(server.port, "POST", "/screen",
                                body={"macro": MACRO,
                                      "configuration": CONFIG,
                                      "fault_ids": [fid]})
            return first, second

        (s1, p1), (s2, p2) = run_scenario(scenario)
        assert s1 == s2 == 200
        v1, v2 = p1["verdicts"][0], p2["verdicts"][0]
        assert not v1["cached"]
        assert v2["cached"]
        # Bitwise across the wire: JSON floats round-trip exactly.
        assert v1["value"] == v2["value"]
        assert v1["components"] == v2["components"]
        assert v1["key"] == v2["key"]

    def test_unknown_macro_is_400(self):
        async def scenario(server):
            return await http(server.port, "POST", "/screen",
                              body={"macro": "no-such",
                                    "configuration": CONFIG})
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "unknown macro" in payload["error"]

    def test_unknown_request_field_is_400(self):
        async def scenario(server):
            return await http(server.port, "POST", "/screen",
                              body={"macro": MACRO,
                                    "configuration": CONFIG,
                                    "bogus": 1})
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "unknown request field" in payload["error"]

    def test_bad_json_is_400(self):
        async def scenario(server):
            raw = (b"POST /screen HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: 9\r\n\r\nnot json!")
            return await http(server.port, None, None, raw=raw)
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "bad JSON body" in payload["error"]

    def test_missing_body_is_400(self):
        async def scenario(server):
            raw = b"POST /screen HTTP/1.1\r\nHost: t\r\n\r\n"
            return await http(server.port, None, None, raw=raw)
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "JSON body" in payload["error"]

    def test_truncated_body_is_400(self):
        async def scenario(server):
            raw = (b"POST /screen HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: 100\r\n\r\n{\"short\"")
            return await http(server.port, None, None, raw=raw)
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "truncated" in payload["error"]


class TestStatsEndpoint:
    def test_sections_and_counters(self):
        async def scenario(server):
            await http(server.port, "POST", "/screen",
                       body={"macro": MACRO, "configuration": CONFIG})
            return await http(server.port, "GET", "/stats")

        status, payload = run_scenario(scenario)
        assert status == 200
        assert set(payload) == {"serve", "cache", "pool"}
        assert payload["serve"]["requests"] == 1
        assert payload["serve"]["verdicts_served"] > 0
        assert payload["cache"]["stores"] == \
            payload["serve"]["cache_misses"]
        assert payload["pool"]["entries"] == 1
        assert payload["pool"]["constructions"] == 1
        engines = payload["pool"]["engines"]
        assert f"{MACRO}/{CONFIG}" in engines
        assert engines[f"{MACRO}/{CONFIG}"]["requests_served"] == 1


class TestHTTPErrors:
    def test_unknown_path_is_404(self):
        async def scenario(server):
            return await http(server.port, "GET", "/nope")
        status, payload = run_scenario(scenario)
        assert status == 404
        assert "no such endpoint" in payload["error"]

    @pytest.mark.parametrize("method,path", [
        ("POST", "/healthz"),
        ("POST", "/stats"),
        ("GET", "/screen"),
    ])
    def test_wrong_method_is_405(self, method, path):
        async def scenario(server):
            return await http(server.port, method, path,
                              body={} if method == "POST" else None)
        status, _ = run_scenario(scenario)
        assert status == 405

    def test_malformed_request_line_is_400(self):
        async def scenario(server):
            return await http(server.port, None, None,
                              raw=b"GARBAGE\r\n\r\n")
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "malformed request line" in payload["error"]

    def test_bad_content_length_is_400(self):
        async def scenario(server):
            raw = (b"POST /screen HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: banana\r\n\r\n")
            return await http(server.port, None, None, raw=raw)
        status, payload = run_scenario(scenario)
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_oversized_body_is_413(self):
        async def scenario(server):
            raw = (b"POST /screen HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: 99999999\r\n\r\n")
            return await http(server.port, None, None, raw=raw)
        status, payload = run_scenario(scenario)
        assert status == 413
        assert "too large" in payload["error"]
