"""Tests for the asyncio batching front door (repro.serve.frontdoor).

The load-bearing property: N concurrent clients with shuffled,
overlapping fault subsets all receive verdicts bitwise identical to a
cold :class:`TestExecutor` run, while the stats totals stay exact
(requests, batches, single-flight cache accounting).  Everything runs on
the fast RC-ladder macro; the 55-fault IV-converter equivalence lives in
``test_equivalence.py``.
"""

import asyncio

import numpy as np
import pytest

from repro.analysis import DEFAULT_OPTIONS
from repro.errors import ServeError
from repro.serve.cache import VerdictCache
from repro.serve.frontdoor import (
    BatchingFrontDoor,
    ScreenRequest,
    ServingClient,
)
from repro.serve.pool import EnginePool
from repro.testgen.execution import TestExecutor

MACRO = "rc-ladder"
CONFIG = "dc-out"


@pytest.fixture(scope="module")
def dc_out_config(rc_macro):
    return {c.name: c for c in rc_macro.test_configurations()}[CONFIG]


@pytest.fixture(scope="module")
def rc_faults(rc_macro):
    return tuple(rc_macro.fault_dictionary())


@pytest.fixture(scope="module")
def seed_vector(dc_out_config):
    clipped = dc_out_config.parameters.clip(
        list(dc_out_config.seed_test().values))
    return tuple(float(v) for v in clipped)


@pytest.fixture(scope="module")
def cold_reports(rc_macro, dc_out_config, rc_faults, seed_vector):
    """Reference verdicts: a brand-new executor's first screen."""
    executor = TestExecutor(rc_macro.circuit, dc_out_config,
                            DEFAULT_OPTIONS)
    reports = executor.screen_faults(list(rc_faults), list(seed_vector))
    return {f.fault_id: r for f, r in zip(rc_faults, reports)}


@pytest.fixture()
def frontdoor():
    door = BatchingFrontDoor(EnginePool(capacity=4),
                             VerdictCache(capacity=256), window=0.02)
    yield door
    door.close()


def serve(coro):
    """Run one serving scenario with a hang guard."""
    async def guarded():
        return await asyncio.wait_for(coro, timeout=60.0)
    return asyncio.run(guarded())


def assert_record_matches(record, report):
    """Bitwise verdict equality against a cold sensitivity report."""
    assert record.value == float(report.value)
    assert record.components == tuple(float(c) for c in report.components)
    assert record.deviations == tuple(float(d) for d in report.deviations)
    assert record.boxes == tuple(float(b) for b in report.boxes)
    assert record.params == tuple(float(p) for p in report.params)
    assert record.detected == report.detected


class TestScreenRequest:
    def test_from_dict_minimal(self):
        request = ScreenRequest.from_dict(
            {"macro": MACRO, "configuration": CONFIG})
        assert request == ScreenRequest(macro=MACRO, configuration=CONFIG)

    def test_from_dict_full(self):
        request = ScreenRequest.from_dict(
            {"macro": MACRO, "configuration": CONFIG,
             "fault_ids": ["a", "b"], "vector": [1, 2.5]})
        assert request.fault_ids == ("a", "b")
        assert request.vector == (1.0, 2.5)

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError, match="unknown request field"):
            ScreenRequest.from_dict(
                {"macro": MACRO, "configuration": CONFIG, "faults": []})

    @pytest.mark.parametrize("payload", [
        {"configuration": CONFIG},
        {"macro": MACRO},
    ])
    def test_missing_field_rejected(self, payload):
        with pytest.raises(ServeError, match="needs field"):
            ScreenRequest.from_dict(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            ScreenRequest.from_dict(["not", "a", "dict"])

    def test_bad_vector_rejected(self):
        with pytest.raises(ServeError, match="bad vector"):
            ScreenRequest.from_dict(
                {"macro": MACRO, "configuration": CONFIG,
                 "vector": ["not-a-number"]})


class TestConstruction:
    def test_bad_window(self):
        with pytest.raises(ServeError, match="window"):
            BatchingFrontDoor(EnginePool(), VerdictCache(), window=-0.1)

    def test_bad_max_batch(self):
        with pytest.raises(ServeError, match="max_batch"):
            BatchingFrontDoor(EnginePool(), VerdictCache(), max_batch=0)

    def test_close_idempotent(self, frontdoor):
        frontdoor.close()
        frontdoor.close()


class TestSingleRequest:
    def test_full_dictionary_response(self, frontdoor, rc_faults,
                                      seed_vector, cold_reports):
        client = ServingClient(frontdoor)
        response = serve(client.screen(MACRO, CONFIG))
        assert response.macro == MACRO
        assert response.configuration == CONFIG
        assert response.vector == seed_vector
        assert len(response.verdicts) == len(rc_faults)
        # Dictionary order, nothing cached on a cold stack.
        assert [v.record.fault_id for v in response.verdicts] == \
            [f.fault_id for f in rc_faults]
        assert all(not v.cached for v in response.verdicts)
        for verdict in response.verdicts:
            assert_record_matches(verdict.record,
                                  cold_reports[verdict.record.fault_id])

    def test_boxes_match_cold_executor(self, frontdoor, rc_macro,
                                       dc_out_config, seed_vector):
        response = serve(ServingClient(frontdoor).screen(MACRO, CONFIG))
        executor = TestExecutor(rc_macro.circuit, dc_out_config,
                                DEFAULT_OPTIONS)
        cold = executor.boxes(list(seed_vector))
        assert response.boxes == tuple(float(b) for b in cold)

    def test_n_detected_consistent(self, frontdoor, cold_reports):
        response = serve(ServingClient(frontdoor).screen(MACRO, CONFIG))
        expected = sum(1 for r in cold_reports.values() if r.detected)
        assert response.n_detected == expected

    def test_stats_after_one_request(self, frontdoor, rc_faults):
        serve(ServingClient(frontdoor).screen(MACRO, CONFIG))
        stats = frontdoor.stats
        assert stats.requests == 1
        assert stats.errors == 0
        assert stats.batches == 1
        assert stats.faults_requested == len(rc_faults)
        assert stats.verdicts_served == len(rc_faults)
        assert stats.cache_misses == len(rc_faults)
        assert stats.cache_hits == 0
        assert stats.coalesce_ratio == 0.0
        assert list(stats.batch_sizes) == [len(rc_faults)]
        assert len(stats.latencies) == 1

    def test_subset_preserves_request_order(self, frontdoor, rc_faults,
                                            cold_reports):
        ids = [f.fault_id for f in rc_faults]
        picked = (ids[4], ids[1], ids[3])
        response = serve(ServingClient(frontdoor).screen(
            MACRO, CONFIG, fault_ids=picked))
        assert tuple(v.record.fault_id for v in response.verdicts) == picked
        for verdict in response.verdicts:
            assert_record_matches(verdict.record,
                                  cold_reports[verdict.record.fault_id])

    def test_out_of_bounds_vector_clipped(self, frontdoor, dc_out_config):
        parameters = dc_out_config.parameters
        wild = [1e12] * len(parameters.names)
        response = serve(ServingClient(frontdoor).screen(
            MACRO, CONFIG, vector=wild))
        expected = tuple(float(v) for v in parameters.clip(wild))
        assert response.vector == expected


class TestCoalescing:
    def test_concurrent_clients_bitwise_identical(self, frontdoor,
                                                  rc_faults, cold_reports,
                                                  rng):
        """N clients, shuffled overlapping subsets, one coalesced batch."""
        ids = [f.fault_id for f in rc_faults]
        subsets = []
        for k in range(6):
            size = int(rng.integers(2, len(ids) + 1))
            subsets.append(tuple(
                ids[i] for i in rng.permutation(len(ids))[:size]))
        client = ServingClient(frontdoor)

        async def run_all():
            return await asyncio.gather(*[
                client.screen(MACRO, CONFIG, fault_ids=subset)
                for subset in subsets])

        responses = serve(run_all())
        requested = 0
        for subset, response in zip(subsets, responses):
            assert tuple(v.record.fault_id
                         for v in response.verdicts) == subset
            requested += len(subset)
            for verdict in response.verdicts:
                assert_record_matches(
                    verdict.record, cold_reports[verdict.record.fault_id])

        stats = frontdoor.stats
        assert stats.requests == 6
        assert stats.batches == 1  # all six folded into one family solve
        assert stats.coalesce_ratio == pytest.approx(1 - 1 / 6)
        assert stats.faults_requested == requested
        assert stats.verdicts_served == requested
        # Single-flight: each unique fault computed once, the rest hits.
        unique = len(set().union(*map(set, subsets)))
        assert stats.cache_misses == unique
        assert stats.cache_hits == requested - unique
        assert list(stats.batch_sizes) == [unique]

    def test_single_flight_same_fault(self, frontdoor, rc_faults):
        fid = rc_faults[0].fault_id
        client = ServingClient(frontdoor)

        async def run_both():
            return await asyncio.gather(
                client.screen(MACRO, CONFIG, fault_ids=[fid]),
                client.screen(MACRO, CONFIG, fault_ids=[fid]))

        first, second = serve(run_both())
        assert first.verdicts[0].record == second.verdicts[0].record
        assert frontdoor.stats.cache_misses == 1
        assert frontdoor.stats.cache_hits == 1
        assert frontdoor.stats.batches == 1

    def test_different_vectors_do_not_coalesce(self, frontdoor,
                                               dc_out_config):
        lower = float(dc_out_config.parameters.bounds[0][0])
        client = ServingClient(frontdoor)

        async def run_both():
            return await asyncio.gather(
                client.screen(MACRO, CONFIG),
                client.screen(MACRO, CONFIG, vector=[lower]))

        serve(run_both())
        assert frontdoor.stats.batches == 2

    def test_max_batch_flushes_early(self, rc_faults):
        # A window this long would time the test out — early flush at
        # max_batch unique faults must fire instead.
        door = BatchingFrontDoor(EnginePool(capacity=2),
                                 VerdictCache(capacity=256),
                                 window=30.0, max_batch=len(rc_faults))
        try:
            response = serve(ServingClient(door).screen(MACRO, CONFIG))
            assert len(response.verdicts) == len(rc_faults)
            assert door.stats.batches == 1
        finally:
            door.close()

    def test_window_zero_flushes_immediately(self, rc_faults):
        door = BatchingFrontDoor(EnginePool(capacity=2),
                                 VerdictCache(capacity=256), window=0.0)
        try:
            client = ServingClient(door)

            async def run_sequential():
                await client.screen(MACRO, CONFIG)
                await client.screen(MACRO, CONFIG)

            serve(run_sequential())
            assert door.stats.requests == 2
            assert door.stats.batches == 2
        finally:
            door.close()


class TestCacheInteraction:
    def test_repeat_request_fully_cached(self, frontdoor, cold_reports):
        client = ServingClient(frontdoor)
        first = serve(client.screen(MACRO, CONFIG))
        engine_stats = frontdoor.pool.entry(MACRO, CONFIG).executor \
            .engine.stats
        screens_before = engine_stats.screened_simulations
        second = serve(client.screen(MACRO, CONFIG))
        assert all(v.cached for v in second.verdicts)
        assert engine_stats.screened_simulations == screens_before
        for cold, warm in zip(first.verdicts, second.verdicts):
            assert cold.record == warm.record  # bitwise
            assert cold.key == warm.key
            assert_record_matches(warm.record,
                                  cold_reports[warm.record.fault_id])

    def test_verdict_keys_unique_per_fault(self, frontdoor):
        response = serve(ServingClient(frontdoor).screen(MACRO, CONFIG))
        keys = [v.key for v in response.verdicts]
        assert len(set(keys)) == len(keys)


class TestErrors:
    def test_unknown_macro(self, frontdoor):
        with pytest.raises(ServeError, match="unknown macro"):
            serve(ServingClient(frontdoor).screen("no-such", CONFIG))
        assert frontdoor.stats.errors == 1
        assert frontdoor.stats.requests == 1
        assert frontdoor.stats.verdicts_served == 0

    def test_unknown_configuration(self, frontdoor):
        with pytest.raises(ServeError, match="no configuration"):
            serve(ServingClient(frontdoor).screen(MACRO, "no-such"))

    def test_unknown_fault_id(self, frontdoor):
        with pytest.raises(ServeError, match="unknown fault id"):
            serve(ServingClient(frontdoor).screen(
                MACRO, CONFIG, fault_ids=["ghost"]))

    def test_zero_faults(self, frontdoor):
        with pytest.raises(ServeError, match="zero faults"):
            serve(ServingClient(frontdoor).screen(
                MACRO, CONFIG, fault_ids=[]))

    def test_wrong_vector_length(self, frontdoor):
        with pytest.raises(ServeError, match="value"):
            serve(ServingClient(frontdoor).screen(
                MACRO, CONFIG, vector=[1.0, 2.0, 3.0]))

    def test_error_does_not_poison_later_requests(self, frontdoor,
                                                  rc_faults):
        client = ServingClient(frontdoor)

        async def scenario():
            with pytest.raises(ServeError):
                await client.screen("no-such", CONFIG)
            return await client.screen(MACRO, CONFIG)

        response = serve(scenario())
        assert len(response.verdicts) == len(rc_faults)
        assert frontdoor.stats.errors == 1
        assert frontdoor.stats.requests == 2


class TestServingClient:
    def test_stats_property(self, frontdoor):
        client = ServingClient(frontdoor)
        assert client.stats is frontdoor.stats

    def test_accepts_numpy_vector(self, frontdoor, seed_vector):
        response = serve(ServingClient(frontdoor).screen(
            MACRO, CONFIG, vector=np.asarray(seed_vector)))
        assert response.vector == seed_vector
