"""Tests for the shared content-address derivations (repro.hashing).

The compatibility contract matters most: :func:`repro.hashing.stable_index`
must reproduce the exact shard digests ``repro.testgen.sharding`` has
emitted since PR 5, and :func:`verdict_key` must separate every field it
hashes (two different verdict identities may never collide by field
concatenation).
"""

from hashlib import blake2b

import pytest

from repro.hashing import (
    FIELD_SEPARATOR,
    content_digest,
    float_token,
    floats_token,
    netlist_digest,
    stable_digest,
    stable_index,
    verdict_key,
)
from repro.testgen.sharding import shard_index


class TestStableDigest:
    def test_pinned_digest(self):
        # Pinned forever: a change here silently reshuffles shards and
        # invalidates every spilled verdict cache.
        assert stable_digest("R1:short").hex() == "b5710cd301861790"

    def test_digest_size(self):
        assert len(stable_digest("x")) == 8
        assert len(stable_digest("x", digest_size=16)) == 16

    def test_matches_raw_blake2b(self):
        for text in ("", "fault-0", "R3:open", "Ω-unicode"):
            expected = blake2b(text.encode("utf-8"), digest_size=8).digest()
            assert stable_digest(text) == expected


class TestStableIndex:
    def test_pinned_buckets(self):
        assert stable_index("R1:short", 4) == 0
        assert stable_index("R1:short", 7) == 5

    def test_matches_shard_index(self, iv_macro):
        """The sharding derivation and the shared helper never drift."""
        fault_ids = [f.fault_id for f in iv_macro.fault_dictionary()]
        for n in (1, 2, 3, 8, 55):
            for fid in fault_ids:
                assert stable_index(fid, n) == shard_index(fid, n)

    def test_reproduces_pr5_derivation(self):
        for fid in ("a", "R2:bridge:R3", "cap-open-17"):
            for n in (1, 2, 5, 16):
                raw = int.from_bytes(
                    blake2b(fid.encode("utf-8"), digest_size=8).digest(),
                    "big")
                assert stable_index(fid, n) == raw % n

    def test_bad_bucket_count(self):
        with pytest.raises(ValueError):
            stable_index("x", 0)
        with pytest.raises(ValueError):
            stable_index("x", -3)

    def test_range(self):
        for n in (1, 2, 9):
            assert 0 <= stable_index("anything", n) < n


class TestFloatTokens:
    def test_round_trip_bitwise(self):
        for v in (0.0, -0.0, 1.0, 0.1, 1e-300, 1e300, 2/3,
                  1.0000000000000002):
            assert float(float_token(v)) == v

    def test_negative_zero_distinct(self):
        assert float_token(0.0) != float_token(-0.0)

    def test_floats_token_join(self):
        assert floats_token((1.0, 0.5)) == "1.0,0.5"
        assert floats_token(()) == ""

    def test_bitwise_inequality_changes_token(self):
        # 0.1 + 0.2 != 0.3 bitwise, so their tokens must differ.
        assert float_token(0.1 + 0.2) != float_token(0.3)


class TestContentDigest:
    def test_pinned(self):
        assert content_digest(("verdict", "abc")) == \
            "f653f05a8a4ccd50697b3af875b98406"

    def test_field_boundaries_unambiguous(self):
        assert content_digest(("ab", "c")) != content_digest(("a", "bc"))
        assert content_digest(("ab",)) != content_digest(("a", "b"))

    def test_separator_is_unit_separator(self):
        assert FIELD_SEPARATOR == "\x1f"

    def test_digest_size(self):
        assert len(content_digest(("x",))) == 32  # 16 bytes hex


class TestVerdictKey:
    BASE = dict(netlist="n", configuration="c", fault_id="f",
                vector=(1.0, 0.5), boxes=(0.1,))

    def test_pinned(self):
        assert verdict_key(**self.BASE) == \
            "6613cf8565b95a79f4ed14801ff2ef2c"

    def test_deterministic(self):
        assert verdict_key(**self.BASE) == verdict_key(**self.BASE)

    @pytest.mark.parametrize("change", [
        dict(netlist="m"),
        dict(configuration="c2"),
        dict(fault_id="g"),
        dict(vector=(1.0, 0.5000000000000001)),
        dict(vector=(1.0,)),
        dict(boxes=(0.2,)),
        dict(boxes=()),
    ])
    def test_every_field_matters(self, change):
        assert verdict_key(**{**self.BASE, **change}) != \
            verdict_key(**self.BASE)

    def test_vector_box_boundary(self):
        # Moving a float between vector and boxes changes the key.
        a = verdict_key(netlist="n", configuration="c", fault_id="f",
                        vector=(1.0, 0.5), boxes=())
        b = verdict_key(netlist="n", configuration="c", fault_id="f",
                        vector=(1.0,), boxes=(0.5,))
        assert a != b


class TestNetlistDigest:
    def test_pinned(self):
        assert netlist_digest("R1 in out 1k") == \
            "ef8b6ee7993f16df31bae9eb3fb748ff"

    def test_domain_separated(self):
        # "netlist" prefix keeps netlist digests out of other key spaces.
        text = "R1 in out 1k"
        assert netlist_digest(text) != content_digest((text,))

    def test_real_circuit(self, rc_macro):
        netlist = rc_macro.circuit.to_netlist()
        assert netlist_digest(netlist) == netlist_digest(netlist)
        assert netlist_digest(netlist) != netlist_digest(netlist + "\n")
